//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace ships
//! this std-backed stand-in exposing the subset of the parking_lot API the
//! engine uses: `Mutex` and `RwLock` with non-poisoning guards and `const`
//! constructors. Poisoned locks are recovered transparently (parking_lot
//! has no poisoning at all, so this matches its semantics).

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive (std-backed, non-poisoning API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex (usable in statics).
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock (std-backed, non-poisoning API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock (usable in statics).
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards() {
        static M: Mutex<i32> = Mutex::new(1);
        *M.lock() += 1;
        assert_eq!(*M.lock(), 2);
        assert!(M.try_lock().is_some());
    }

    #[test]
    fn rwlock_guards() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}

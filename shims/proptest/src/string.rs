//! String generation from a small regex subset.
//!
//! Real proptest compiles full regexes; this shim supports the pattern
//! shapes the workspace tests actually use — sequences of literal
//! characters and character classes (`[a-z0-9_]`), each optionally
//! quantified with `{m,n}`, `{n}`, `?`, `+`, or `*`. Anything else panics
//! with a clear message rather than silently generating wrong data.

use crate::TestRng;

#[derive(Debug)]
enum Atom {
    Literal(char),
    /// Inclusive character ranges, e.g. `[a-z0-9]` → [(a,z),(0,9)].
    Class(Vec<(char, char)>),
}

fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars.next().unwrap_or_else(|| {
                        panic!("unterminated character class in pattern {pattern:?}")
                    });
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars
                            .next()
                            .filter(|&h| h != ']')
                            .unwrap_or_else(|| panic!("dangling '-' in pattern {pattern:?}"));
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            ),
            '(' | ')' | '|' | '.' | '^' | '$' => {
                panic!("regex construct {c:?} not supported by the proptest shim (pattern {pattern:?})")
            }
            other => Atom::Literal(other),
        };
        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.parse().expect("quantifier min"),
                        n.parse().expect("quantifier max"),
                    ),
                    None => {
                        let n = spec.parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            _ => (1, 1),
        };
        atoms.push((atom, min, max));
    }
    atoms
}

/// Generate one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (atom, min, max) in parse(pattern) {
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|&(lo, hi)| (hi as u64 - lo as u64) + 1)
                        .sum();
                    let mut pick = rng.below(total);
                    for &(lo, hi) in ranges {
                        let span = (hi as u64 - lo as u64) + 1;
                        if pick < span {
                            out.push(char::from_u32(lo as u32 + pick as u32).unwrap());
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercase_words() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let s = generate_from_pattern("[a-z]{1,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 12, "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn literals_and_classes_mix() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = generate_from_pattern("x[0-9]{3}y", &mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with('x') && s.ends_with('y'));
    }
}

//! Offline shim for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace ships a
//! deterministic re-implementation of the proptest API subset its tests
//! use: the `proptest!` macro, integer-range / tuple / `vec` / regex-string
//! strategies, `prop_map`/`boxed`, `any::<T>()`, `prop::sample::Index`,
//! and `TestRunner::deterministic()`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message; cases are seeded per `(test name, case index)`
//!   so every failure is reproducible by re-running the test.
//! * **No persistence.** `*.proptest-regressions` files are not consumed;
//!   regression inputs worth keeping are promoted to explicit `#[test]`
//!   functions (see `tests/compression_invariants.rs`).
//! * **Edge-value biasing** stands in for shrinking: `any::<iN>()` yields
//!   `MIN`/`MAX`/`0`/`±1` with elevated probability so sentinel and
//!   boundary branches are exercised every run.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod prelude;
pub mod sample;
pub mod string;
pub mod test_runner;

/// Alias module so `prop::sample::Index` resolves as it does in proptest.
pub mod prop {
    pub use crate::sample;
}

/// The deterministic generator threaded through strategies (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed via splitmix64 expansion.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A value generator. Unlike real proptest there is no shrink tree; a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| {
            self.generate(rng)
        }))
    }

    /// Produce a (shrink-free) value tree — proptest compatibility for
    /// callers that drive generation manually via a [`test_runner::TestRunner`].
    fn new_tree(
        &self,
        runner: &mut test_runner::TestRunner,
    ) -> Result<ValueTree<Self::Value>, &'static str> {
        Ok(ValueTree(self.generate(runner.rng())))
    }
}

/// A generated value pretending to be a shrink tree.
#[derive(Debug)]
pub struct ValueTree<T>(T);

impl<T: Clone> ValueTree<T> {
    /// The current (only) value of the tree.
    pub fn current(&self) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::boxed`].
#[derive(Clone)]
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<T>()`).
pub struct Any<T>(PhantomData<T>);

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // 1-in-8 edge values replace proptest's shrinking as the
                // mechanism that reaches boundary branches (sentinels,
                // overflow guards) reliably.
                if rng.below(8) == 0 {
                    match rng.below(5) {
                        0 => <$t>::MIN,
                        1 => <$t>::MAX,
                        2 => 0 as $t,
                        3 => 1 as $t,
                        _ => (0 as $t).wrapping_sub(1),
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (rng.below(span) as i128 + self.start as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                (rng.below(span) as i128 + start as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_from_pattern(self, rng)
    }
}

/// `assert!` under proptest's name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The test-definition macro: each contained `fn name(arg in strategy, ...)`
/// becomes a `#[test]` that runs `cases` generated inputs. Cases are seeded
/// from the test name and case index, so runs are deterministic and any
/// failure reproduces by re-running the same test binary.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut runner =
                    $crate::test_runner::TestRunner::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), runner.rng());)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = (0i64..30).generate(&mut rng);
            assert!((0..30).contains(&v));
            let (a, b) = ((-5i64..5), (1u64..4)).generate(&mut rng);
            assert!((-5..5).contains(&a) && (1..4).contains(&b));
        }
    }

    #[test]
    fn edge_bias_reaches_min() {
        let mut rng = TestRng::seed_from_u64(4);
        let saw_min = (0..2000).any(|_| i64::arbitrary(&mut rng) == i64::MIN);
        assert!(saw_min, "edge biasing must surface i64::MIN");
    }

    #[test]
    fn prop_map_and_boxed() {
        let s = (0i64..10).prop_map(|v| v * 2).boxed();
        let mut rng = TestRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(crate::test_runner::ProptestConfig::with_cases(8))]

        #[test]
        fn macro_roundtrip(v in 0i64..100, data in crate::collection::vec(0i64..5, 0..20)) {
            prop_assert!((0..100).contains(&v));
            prop_assert!(data.len() < 20);
            prop_assert!(data.iter().all(|d| (0..5).contains(d)));
        }
    }
}

//! The glob-import surface (`use proptest::prelude::*`).

pub use crate::prop;
pub use crate::test_runner::ProptestConfig;
pub use crate::{any, Arbitrary, BoxedStrategy, Strategy, ValueTree};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

//! Collection strategies (`vec`).

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Strategy for vectors with element strategy `S` and a length range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A vector of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range for vec strategy");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

//! Sampling helpers (`prop::sample::Index`).

use crate::{Arbitrary, TestRng};

/// An index into a collection of as-yet-unknown size: holds raw entropy
/// and maps it onto `[0, len)` when the length is known.
#[derive(Debug, Clone, Copy)]
pub struct Index(u64);

impl Index {
    /// Map onto a concrete collection length (which must be non-zero).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index(rng.next_u64())
    }
}

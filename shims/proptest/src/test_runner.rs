//! Test runner and configuration.

use crate::TestRng;

/// How many cases each property runs (proptest calls this `Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Drives generation for one case.
#[derive(Debug)]
pub struct TestRunner {
    rng: TestRng,
}

impl TestRunner {
    /// A runner with a fixed seed — same values every run.
    pub fn deterministic() -> TestRunner {
        TestRunner {
            rng: TestRng::seed_from_u64(0x7de_c0de),
        }
    }

    /// The runner for one case of one named property: seeded from
    /// `(name, case)` so failures reproduce.
    pub fn for_case(name: &str, case: u32) -> TestRunner {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner {
            rng: TestRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9)),
        }
    }

    /// The case's RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

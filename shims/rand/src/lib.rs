//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! The workload generators only need a deterministic, seedable PRNG with
//! `gen_range` / `gen_bool`. This shim provides `rngs::StdRng` backed by
//! xoshiro256** seeded via splitmix64 — statistically fine for synthetic
//! data, deterministic per seed, and wire-compatible with nothing (the
//! generators only promise determinism under a fixed seed, which holds).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types `gen_range` can sample. The blanket [`SampleRange`] impls below
/// mirror rand's structure so integer-literal ranges infer their type from
/// the call site (e.g. `date + rng.gen_range(1..=30)` samples an `i64`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[start, end]` (inclusive bounds).
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform draw from `[start, end)` (exclusive upper bound).
    fn sample_exclusive<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + start as i128;
                v as $t
            }
            fn sample_exclusive<R: Rng + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end as i128 - start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + start as i128;
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        // end is strictly greater than start, so end-1 style exclusive
        // sampling is expressed through the inclusive primitive by asking
        // the type to treat `end` as excluded.
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "empty range in gen_range");
        T::sample_inclusive(rng, start, end)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000), b.gen_range(0..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&v));
            let w = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}

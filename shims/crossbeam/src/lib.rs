//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{bounded, Sender, Receiver}` — a bounded
//! multi-producer multi-consumer channel built on `Mutex` + `Condvar` with
//! crossbeam's disconnection semantics: `recv` fails once every sender is
//! gone and the queue is drained; `send` fails once every receiver is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is drained
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// The sending half of a bounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Create a bounded MPMC channel of capacity `cap` (minimum 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue `value`. Fails when
        /// every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                if inner.queue.len() < inner.cap {
                    inner.queue.push_back(value);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                inner = self.0.not_full.wait(inner).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value is available. Fails when the queue is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.not_empty.wait(inner).unwrap();
            }
        }

        /// Non-blocking receive: `None` when the queue is currently empty.
        pub fn try_recv(&self) -> Option<T> {
            let mut inner = self.0.inner.lock().unwrap();
            let v = inner.queue.pop_front();
            if v.is_some() {
                self.0.not_full.notify_one();
            }
            v
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.inner.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.inner.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.0.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_out_fan_in() {
            let (tx, rx) = bounded::<u64>(4);
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut sum = 0;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            drop(rx);
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 999 * 1000 / 2);
        }

        #[test]
        fn send_fails_after_receivers_gone() {
            let (tx, rx) = bounded::<i32>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_drains_then_fails() {
            let (tx, rx) = bounded::<i32>(8);
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert!(rx.recv().is_err());
        }
    }
}

//! Offline shim for the `loom` crate.
//!
//! Real loom exhaustively explores thread interleavings by intercepting
//! every atomic/sync operation through its `loom::sync` types and
//! re-running the model body under a schedule enumerator. This shim keeps
//! the same surface — `loom::model(...)`, `loom::thread`, `loom::sync` —
//! but backs it with **bounded-iteration stress**: the body runs many
//! times with real OS threads on the real `std` primitives, so schedules
//! are sampled rather than enumerated.
//!
//! Tests written against this shim compile unchanged against real loom
//! (the re-exported std types are API-compatible), where they upgrade
//! from sampled to exhaustive exploration. Keep model bodies small and
//! assertion-dense: what loom proves, the shim only probes.

/// How many times [`model`] re-runs its body. Override with
/// `LOOM_SHIM_ITERS` (real loom ignores the variable, so CI can set it
/// unconditionally).
pub fn iterations() -> usize {
    std::env::var("LOOM_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Run `f` repeatedly, sampling thread interleavings. Signature matches
/// `loom::model` so callers swap between the shim and the real crate
/// without edits.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..iterations() {
        f();
    }
}

/// `loom::thread` — the std threading API, unmocked.
pub mod thread {
    pub use std::thread::*;
}

/// `loom::sync` — the std sync primitives, unmocked.
pub mod sync {
    pub use std::sync::*;
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_runs_and_spawns() {
        std::env::set_var("LOOM_SHIM_ITERS", "3");
        let hits = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let h2 = hits.clone();
        super::model(move || {
            let h = h2.clone();
            super::thread::spawn(move || {
                h.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            })
            .join()
            .unwrap();
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 3);
    }
}

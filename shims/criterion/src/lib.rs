//! Offline shim for the `criterion` crate.
//!
//! Implements the subset the workspace micro-benchmarks use —
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `iter` — with a plain warmup-then-measure protocol
//! (median of `sample_size` samples, one call per sample) printed as a
//! table. No statistical analysis, HTML reports, or comparison baselines;
//! the figure harnesses in `crates/bench` carry the paper's measurement
//! protocol themselves.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n── {name} ──");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_bench(&id.to_string(), 10, None, f);
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark's identifier: function name plus parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing sample size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, self.throughput, f);
        self
    }

    /// End the group (printing already happened per-benchmark).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; its `iter` does the timing.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`: a few warmup calls, then one timed call per sample.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..2 {
            black_box(f());
        }
        self.samples = (0..self.sample_size)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed()
            })
            .collect();
        self.samples.sort_unstable();
    }
}

fn run_bench(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:>10.1} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  {:>10.1} MB/s", n as f64 / median.as_secs_f64() / 1e6)
        }
        _ => String::new(),
    };
    println!("{label:<48} {:>12.3?}{rate}", median);
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        let mut ran = 0;
        g.bench_with_input(BenchmarkId::new("noop", 1), &7u64, |b, &x| {
            b.iter(|| x + 1);
            ran += 1;
        });
        g.finish();
        assert_eq!(ran, 1);
    }
}

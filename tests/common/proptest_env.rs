// Shared proptest case budget, one definition for every suite: the
// root-level integration tests pull it in through `mod common`, the
// per-crate suites `include!` this file directly (they are separate
// crates and cannot see a root `tests/` module).

/// Proptest case budget: `TDE_PROPTEST_CASES` overrides (CI pins it so
/// per-PR runs are fast and nightly runs are thorough); each suite
/// passes its own default.
#[allow(dead_code)]
pub fn proptest_cases(default: u32) -> u32 {
    std::env::var("TDE_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

//! Utilities shared by the workspace-level integration suites.

include!("proptest_env.rs");

//! Acceptance tests for the mutable delta store.
//!
//! The merge-on-read contract: any interleaving of appends, deletes and
//! compactions must answer queries exactly as a table rebuilt from
//! scratch out of the surviving logical rows would. And compaction must
//! restore the paged format's projection laziness — a 2-of-N column
//! query against a compacted extract loads only those columns'
//! segments.

use std::sync::Arc;
use tde::delta::{DeltaExtract, DeltaTable, ScanSource};
use tde::exec::expr::{AggFunc, CmpOp, Expr};
use tde::pager::save_v2;
use tde::storage::{ColumnBuilder, Database, EncodingPolicy, Table};
use tde::types::{DataType, Value};
use tde::Query;

/// One logical row of the test table: (id, qty, city).
type Row = (i64, Option<i64>, Option<&'static str>);

fn base_rows(n: i64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            (
                i,
                Some(i % 7),
                Some(["lyon", "oslo", "kyiv", "lima"][i as usize % 4]),
            )
        })
        .collect()
}

/// Build a read-optimized table from logical rows — both the seed of a
/// delta store and the from-scratch rebuild the differential compares
/// against.
fn build(rows: &[Row]) -> Arc<Table> {
    let mut id = ColumnBuilder::new("id", DataType::Integer, EncodingPolicy::default());
    let mut qty = ColumnBuilder::new("qty", DataType::Integer, EncodingPolicy::default());
    let mut city = ColumnBuilder::new("city", DataType::Str, EncodingPolicy::default());
    for &(i, q, c) in rows {
        id.append_i64(i);
        qty.append_value(&q.map_or(Value::Null, Value::Int));
        city.append_str(c);
    }
    Arc::new(Table::new(
        "orders",
        vec![
            id.finish().column,
            qty.finish().column,
            city.finish().column,
        ],
    ))
}

fn value_row(r: &Row) -> Vec<Value> {
    vec![
        Value::Int(r.0),
        r.1.map_or(Value::Null, Value::Int),
        r.2.map_or(Value::Null, |s| Value::Str(s.to_owned())),
    ]
}

#[test]
fn merged_view_matches_from_scratch_rebuild() {
    // The interleaving: appends with NULLs and heap-extending fresh
    // strings, deletes across base and delta rows, a mid-sequence
    // compaction, then more mutations on the rebuilt base.
    let mut model = base_rows(500);
    let mut dt = DeltaTable::from_eager(build(&model));

    let appends: Vec<Row> = vec![
        (500, Some(3), Some("quito")), // fresh string: heap overlay
        (501, None, Some("lyon")),     // NULL qty
        (502, Some(9), None),          // NULL city
        (503, Some(-4), Some("quito")),
    ];
    dt.append_rows(&appends.iter().map(value_row).collect::<Vec<_>>())
        .unwrap();
    model.extend(appends.iter().copied());

    // Delete base rows and one freshly appended row (id-space: base ids
    // then append slots).
    dt.delete(&[3, 250, 499, 501]).unwrap();
    for &gone in &[501usize, 499, 250, 3] {
        model.remove(gone);
    }

    let check = |dt: &DeltaTable, model: &[Row]| {
        let src = dt.snapshot().unwrap();
        let rebuilt = build(model);
        // Full scans are bit-identical, in base-then-append order.
        assert_eq!(
            Query::scan_delta(&src).rows(),
            Query::scan(&rebuilt).rows(),
            "merged scan diverged from rebuild"
        );
        // A pushed predicate agrees too.
        let pred = Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(4));
        assert_eq!(
            Query::scan_delta(&src).filter(pred.clone()).rows(),
            Query::scan(&rebuilt).filter(pred).rows(),
            "filtered merged scan diverged from rebuild"
        );
        // And a grouped rollup over the string column (canonicalized:
        // group order is an implementation detail).
        let rollup = |q: Query| {
            let mut rows = q
                .aggregate(vec![2], vec![(AggFunc::Sum, 1, "total")])
                .rows();
            rows.sort_by_key(|r| format!("{r:?}"));
            rows
        };
        assert_eq!(
            rollup(Query::scan_delta(&src)),
            rollup(Query::scan(&rebuilt)),
            "merged rollup diverged from rebuild"
        );
    };
    check(&dt, &model);

    // Compact mid-sequence: the rebuilt base must answer identically...
    dt.compact().unwrap();
    assert!(dt.is_clean());
    check(&dt, &model);

    // ...and further mutations keep the contract on the new base.
    let more: Vec<Row> = vec![(600, Some(1), Some("oslo")), (601, None, None)];
    dt.append_rows(&more.iter().map(value_row).collect::<Vec<_>>())
        .unwrap();
    model.extend(more.iter().copied());
    dt.delete(&[0]).unwrap();
    model.remove(0);
    check(&dt, &model);
}

/// A 12-column database for the projection-laziness test.
fn wide_db(rows: i64) -> Database {
    let mut columns = Vec::new();
    for c in 0..11 {
        let name = format!("c{c}");
        let mut b = ColumnBuilder::new(&name, DataType::Integer, EncodingPolicy::default());
        for i in 0..rows {
            b.append_i64((i * (c + 3)) % 1000);
        }
        columns.push(b.finish().column);
    }
    let mut s = ColumnBuilder::new("city", DataType::Str, EncodingPolicy::default());
    for i in 0..rows {
        s.append_str(Some(["lyon", "oslo", "kyiv", "lima"][i as usize % 4]));
    }
    columns.push(s.finish().column);
    let mut db = Database::new();
    db.add_table(Table::new("wide", columns));
    db
}

#[test]
fn compaction_restores_projection_laziness() {
    let dir = std::env::temp_dir().join(format!("tde-delta-accept-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("wide.tde2");
    save_v2(&wide_db(4000), &path).unwrap();

    // Mutate, compact, persist.
    let mut ex = DeltaExtract::open(&path).unwrap();
    {
        let dt = ex.delta_mut("wide").unwrap();
        let row: Vec<Value> = (0..11)
            .map(Value::Int)
            .chain([Value::Str("sofia".into())])
            .collect();
        dt.append_rows(&[row]).unwrap();
        dt.delete(&[17]).unwrap();
        assert!(matches!(ex.source("wide").unwrap(), ScanSource::Merged(_)));
    }
    ex.compact("wide").unwrap();
    assert!(matches!(ex.source("wide").unwrap(), ScanSource::Clean(_)));
    drop(ex);

    // Reopen cold and project 2 of 12 columns.
    let ex = DeltaExtract::open(&path).unwrap();
    assert!(ex.delta("wide").is_none(), "compaction left aux sections");
    let db = ex.database();
    let cold = db.cache_snapshot();
    assert_eq!(cold.misses, 0, "open must read only the directory");
    let ScanSource::Clean(t) = ex.source("wide").unwrap() else {
        panic!("compacted extract is not clean");
    };
    let rows = Query::scan_paged_columns(&t, &["city", "c7"])
        .aggregate(vec![0], vec![(AggFunc::Sum, 1, "s")])
        .rows();
    assert_eq!(rows.len(), 5, "four base cities plus the appended one");

    // Exactly three segments loaded: c7 stream, city stream, city heap.
    // The other ten columns never left the disk.
    let after = db.cache_snapshot();
    assert_eq!(
        after.misses, 3,
        "expected only the projected columns' segments: {after:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn persisted_delta_survives_reopen_with_nulls() {
    let dir = std::env::temp_dir().join(format!("tde-delta-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("orders.tde2");
    let mut db = Database::new();
    db.add_table((*build(&base_rows(100))).clone());
    save_v2(&db, &path).unwrap();

    let mut ex = DeltaExtract::open(&path).unwrap();
    {
        let dt = ex.delta_mut("orders").unwrap();
        dt.append_rows(&[
            vec![Value::Int(100), Value::Null, Value::Str("quito".into())],
            vec![Value::Int(101), Value::Int(5), Value::Null],
        ])
        .unwrap();
        dt.update(&[4], &[vec![Value::Int(4), Value::Int(99), Value::Null]])
            .unwrap();
    }
    let before = match ex.source("orders").unwrap() {
        ScanSource::Merged(src) => Query::scan_delta(&src).rows(),
        ScanSource::Clean(_) => panic!("live delta reported clean"),
    };
    ex.save().unwrap();
    drop(ex);

    let ex = DeltaExtract::open(&path).unwrap();
    let after = match ex.source("orders").unwrap() {
        ScanSource::Merged(src) => Query::scan_delta(&src).rows(),
        ScanSource::Clean(_) => panic!("restored delta reported clean"),
    };
    assert_eq!(before, after, "persistence changed query results");
    // NULLs round-tripped as NULLs, not as sentinels leaking into values.
    assert!(after
        .iter()
        .any(|r| r[0] == Value::Int(100) && r[1] == Value::Null));
    std::fs::remove_dir_all(&dir).ok();
}

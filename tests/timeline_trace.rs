//! Always-on query timeline tracing, end to end: every `Query` entry
//! point emits exactly one span, failed queries stay observable (failure
//! counter + error-tagged span + error-tagged trace), and a
//! morsel-parallel paged query produces a Chrome Trace Event Format
//! document that passes the strict validator with distinct worker
//! tracks, operator spans, and buffer-pool segment-load events.
//!
//! The timeline ring, the span sink, and the metrics registry are all
//! process-global, and the test harness runs tests on several threads —
//! so every test here serializes on one lock and matches its own work
//! by row count / query id, never by absolute ring contents.

use std::sync::{Arc, Mutex, OnceLock};

use tde::exec::expr::{AggFunc, CmpOp, Expr};
use tde::obs::{metrics, span, timeline};
use tde::pager::{save_v2, PagedDatabase, PoolConfig};
use tde::storage::{ColumnBuilder, Database, EncodingPolicy, Table};
use tde::types::DataType;
use tde::Query;

/// The timeline lanes, rings, and span sink are process globals:
/// serialize every test in this file.
fn trace_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// 400k rows: a 100-value sorted group key (RLE territory) plus a
/// high-entropy value column — the fig. 10 shape, big enough to split
/// into enough morsels that all four workers reliably claim work
/// before the queue drains (work-stealing can starve a late-spawning
/// worker on tiny inputs).
fn fig10_db() -> Database {
    let mut g = ColumnBuilder::new("g", DataType::Integer, EncodingPolicy::default());
    let mut v = ColumnBuilder::new("v", DataType::Integer, EncodingPolicy::default());
    for i in 0..400_000i64 {
        g.append_i64(i / 4_000);
        v.append_i64((i * 2_654_435_761) % 1_000_000);
    }
    let mut db = Database::new();
    db.add_table(Table::new(
        "fig10",
        vec![g.finish().column, v.finish().column],
    ));
    db
}

fn demo_table() -> Arc<Table> {
    let mut k = ColumnBuilder::new("k", DataType::Integer, EncodingPolicy::default());
    let mut v = ColumnBuilder::new("v", DataType::Integer, EncodingPolicy::default());
    for i in 0..20_000i64 {
        k.append_i64(i / 2_000);
        v.append_i64((i * 13) % 500);
    }
    Arc::new(Table::new(
        "demo",
        vec![k.finish().column, v.finish().column],
    ))
}

fn failed_queries_delta(
    before: &metrics::MetricsSnapshot,
    after: &metrics::MetricsSnapshot,
) -> u64 {
    after
        .counter_deltas(before)
        .iter()
        .filter(|(k, _)| k.starts_with("tde_queries_failed_total"))
        .map(|(_, v)| *v)
        .sum()
}

/// Satellite: every entry point — `rows` (via `run`), `try_run`,
/// `try_rows`, and `explain_analyze` — emits exactly one span.
#[test]
fn every_entry_point_emits_exactly_one_span() {
    let _guard = trace_lock().lock().unwrap();
    let t = demo_table();

    let run_one = |label: &str, f: &dyn Fn() -> usize| {
        let sink = span::MemorySink::new();
        let prev = span::set_span_sink(Some(sink.clone()));
        let rows = f();
        let spans = sink.spans();
        span::set_span_sink(prev);
        assert_eq!(
            spans.len(),
            1,
            "{label} must emit exactly one span, got {}",
            spans.len()
        );
        assert_eq!(spans[0].rows_out, rows as u64, "{label} span row count");
        assert!(spans[0].error.is_none(), "{label} succeeded");
        assert_eq!(spans[0].plan_digest.len(), 16, "{label} digest");
    };

    run_one("rows()", &|| Query::scan(&t).rows().len());
    run_one("try_rows()", &|| {
        Query::scan(&t)
            .filter(Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(5)))
            .try_rows()
            .unwrap()
            .len()
    });
    run_one("try_run()", &|| {
        let (_, blocks) = Query::scan(&t).try_run().unwrap();
        blocks.iter().map(|b| b.len).sum()
    });
    run_one("explain_analyze()", &|| {
        Query::scan(&t)
            .aggregate(vec![0], vec![(AggFunc::Sum, 1, "s")])
            .explain_analyze()
            .row_count as usize
    });
}

/// Satellite: a query that fails mid-execution must not vanish from
/// observability — it bumps `tde_queries_failed_total`, emits an
/// error-tagged span, and leaves an error-tagged trace in the ring.
#[test]
fn failed_queries_stay_observable() {
    let _guard = trace_lock().lock().unwrap();
    use tde::io::{FaultIo, FaultPlan};

    let dir = std::env::temp_dir().join(format!("tde_timeline_fail_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fail.tde2");
    save_v2(&fig10_db(), &path).unwrap();

    let io = FaultIo::new(FaultPlan::default());
    let db = PagedDatabase::open_with_io(&path, PoolConfig::default(), &io).unwrap();
    let t = db.table("fig10").unwrap();

    let prev_trace = timeline::set_enabled(true);
    let sink = span::MemorySink::new();
    let prev_sink = span::set_span_sink(Some(sink.clone()));
    let before = metrics::global().snapshot();

    // Every segment read from here on fails hard (no retry).
    io.arm_hard_read_failures(u64::MAX);
    let err = Query::scan_paged_columns(&t, &["g", "v"])
        .try_run()
        .expect_err("armed hard read failures must fail the query");
    assert!(
        err.to_string().contains("injected hard read failure"),
        "{err}"
    );
    io.arm_hard_read_failures(0);

    let after = metrics::global().snapshot();
    let spans = sink.spans();
    span::set_span_sink(prev_sink);
    timeline::set_enabled(prev_trace);

    if metrics::enabled() {
        assert!(
            failed_queries_delta(&before, &after) >= 1,
            "the failure must bump tde_queries_failed_total"
        );
    }
    assert_eq!(spans.len(), 1, "the failed query still emits one span");
    let s = &spans[0];
    assert!(
        s.error
            .as_deref()
            .is_some_and(|e| e.contains("injected hard read failure")),
        "span must carry the error, got {:?}",
        s.error
    );
    assert_eq!(s.rows_out, 0);
    let json = s.to_json();
    assert!(json.contains("\"error\":\""), "{json}");
    tde_stats::minijson::parse(&json).unwrap();

    let trace = timeline::find_trace(s.query_id).expect("failed query lands in the trace ring");
    assert_eq!(trace.plan_digest, s.plan_digest);
    assert!(trace
        .error
        .as_deref()
        .is_some_and(|e| e.contains("injected hard read failure")));
    let tef = tde_stats::tef::render_trace(&trace);
    tde_stats::tef::validate_tef(&tef).unwrap();
    assert!(tef.contains("injected hard read failure"));

    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance criterion: a morsel-parallel (degree 4) query over a
/// paged extract produces a validated TEF trace with ≥ 4 distinct
/// worker tracks of morsel spans plus buffer-pool segment-load events,
/// attributable to the query via its plan digest.
#[test]
fn parallel_paged_query_produces_a_validated_worker_trace() {
    let _guard = trace_lock().lock().unwrap();

    let dir = std::env::temp_dir().join(format!("tde_timeline_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig10.tde2");
    save_v2(&fig10_db(), &path).unwrap();

    // Fresh open: the pool is cold, so the query itself triggers the
    // segment loads we want on its timeline.
    let db = PagedDatabase::open(&path).unwrap();
    let t = db.table("fig10").unwrap();

    let prev_trace = timeline::set_enabled(true);
    let sink = span::MemorySink::new();
    let prev_sink = span::set_span_sink(Some(sink.clone()));

    let rows = Query::scan_paged_columns(&t, &["g", "v"])
        .filter(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(500_000)))
        .aggregate(vec![0], vec![(AggFunc::Count, 1, "n")])
        .with_parallelism(4)
        .rows();
    assert_eq!(rows.len(), 100, "one output row per group");

    let spans = sink.spans();
    span::set_span_sink(prev_sink);
    timeline::set_enabled(prev_trace);
    assert_eq!(spans.len(), 1);
    let s = &spans[0];

    let trace = timeline::find_trace(s.query_id).expect("trace retained in the ring");
    assert_eq!(
        trace.plan_digest, s.plan_digest,
        "the trace is attributable to the query via the plan digest"
    );
    assert_eq!(trace.rows_out, 100);
    assert!(trace.error.is_none());

    // ≥ 4 distinct workers actually executed morsels. Like the
    // morsel_pipeline bench's speedup floor, the full-degree assertion
    // only means something when the host can run 4 workers at once —
    // on fewer cores a late-spawning worker can lose its whole deque
    // partition to stealing before the OS first schedules it.
    let workers: std::collections::BTreeSet<u32> = trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            timeline::TimelineKind::Morsel { worker, .. } => Some(worker),
            _ => None,
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let floor = if cores >= 4 { 4 } else { 1 };
    assert!(
        workers.len() >= floor,
        "expected ≥ {floor} worker tracks on a {cores}-core host, got {workers:?}"
    );
    // The cold pool loaded segments during the query.
    let loads = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, timeline::TimelineKind::SegmentLoad { .. }))
        .count();
    assert!(loads >= 2, "both columns' segments load during the query");
    // Operator spans made it onto the timeline with wall durations.
    assert!(trace.events.iter().any(|e| matches!(
        &e.kind,
        timeline::TimelineKind::OperatorSpan { rows, .. } if *rows > 0
    )));

    // The TEF rendering passes the strict validator and shows the
    // worker tracks as distinct tids.
    let tef = tde_stats::tef::render_trace(&trace);
    let n_events = tde_stats::tef::validate_tef(&tef).expect("strict TEF validation");
    assert!(n_events > workers.len() + loads);
    for w in &workers {
        assert!(
            tef.contains(&format!("\"tid\":{}", 1000 + w)),
            "worker {w} track missing from TEF"
        );
        assert!(tef.contains(&format!("worker-{w}")));
    }
    assert!(tef.contains("\"name\":\"load stream\""));
    assert!(tef.contains(&format!("digest={}", s.plan_digest)));

    // The /spans summary and /trace/<id> endpoint payloads agree.
    let spans_doc = tde_stats::http::spans_json();
    let v = tde_stats::minijson::parse(&spans_doc).unwrap();
    let summaries = v.get("traces").unwrap().as_array().unwrap();
    assert!(summaries
        .iter()
        .any(|x| x.get("query_id").and_then(|q| q.as_u64()) == Some(s.query_id)));

    std::fs::remove_dir_all(&dir).ok();
}

/// Slow-query log: with a zero threshold every query is "slow" — it is
/// pinned in the slow ring and a structured record with the top-3
/// operators by self-time reaches the sink.
#[test]
fn slow_queries_are_pinned_and_logged() {
    let _guard = trace_lock().lock().unwrap();
    if timeline::slow_threshold_ns() != Some(0) {
        // The threshold is parsed from TDE_SLOW_QUERY_NS once per
        // process; this test only runs under the CI leg that sets it.
        return;
    }
    let prev_trace = timeline::set_enabled(true);
    let sink = span::MemorySink::new();
    let prev_sink = span::set_span_sink(Some(sink.clone()));

    let t = demo_table();
    let rows = Query::scan(&t)
        .filter(Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(2)))
        .aggregate(vec![0], vec![(AggFunc::Sum, 1, "s")])
        .rows();
    assert_eq!(rows.len(), 8);

    let spans = sink.spans();
    let slow = sink.slow_records();
    span::set_span_sink(prev_sink);
    timeline::set_enabled(prev_trace);

    assert_eq!(spans.len(), 1);
    let record = slow
        .iter()
        .rfind(|r| r.query_id == spans[0].query_id)
        .expect("slow record for the query");
    assert_eq!(record.plan_digest, spans[0].plan_digest);
    assert!(!record.top_ops.is_empty() && record.top_ops.len() <= 3);
    tde_stats::minijson::parse(&record.to_json()).unwrap();
    assert!(timeline::slow_traces()
        .iter()
        .any(|t| t.query_id == spans[0].query_id));
}

//! Crash-consistency torture harness for the fault-injectable I/O layer.
//!
//! Every save flavor — the eager v2 writer, the paged facade save, and
//! the delta-aux save — is replayed with an injected crash at *each*
//! mutating-operation boundary (create, every buffered write, fsync,
//! rename). After every simulated crash the file is reopened with a
//! clean backend and must fingerprint as exactly the old extract or
//! exactly the new one: never a hybrid, never a panic. A separate leg
//! verifies that scans under transient read faults succeed after bounded
//! retries and that the retry/fault counters in tde-obs move.
//!
//! Scale with `TDE_TORTURE_SEEDS` (default 2; nightly CI runs more).
//! On failure the assert message carries the seed and boundary index,
//! which replay the exact same fault schedule.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tde::delta::{DeltaConfig, DeltaExtract, ScanSource};
use tde::exec::merged_scan::MergedScan;
use tde::exec::{drain, Operator};
use tde::io::{FaultIo, FaultPlan, RealIo};
use tde::pager::{save_v2_with_aux_atomic_io, PagedDatabase, PoolConfig};
use tde::storage::{ColumnBuilder, Database, EncodingPolicy, Table};
use tde::types::{DataType, Value};
use tde::Extract;

fn torture_seeds() -> u64 {
    std::env::var("TDE_TORTURE_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tde_crash_torture_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A small two-table database whose contents depend on `variant`, so
/// distinct variants fingerprint differently.
fn db(variant: u64) -> Database {
    let v = variant as i64;
    let mut id = ColumnBuilder::new("id", DataType::Integer, EncodingPolicy::default());
    let mut qty = ColumnBuilder::new("qty", DataType::Integer, EncodingPolicy::default());
    let mut city = ColumnBuilder::new("city", DataType::Str, EncodingPolicy::default());
    for i in 0..800i64 {
        id.append_i64(i);
        qty.append_i64((i * 7 + v * 13) % 500);
        city.append_str(Some(
            ["lyon", "oslo", "kyiv", "lima"][((i + v) % 4) as usize],
        ));
    }
    let mut metric = ColumnBuilder::new("v", DataType::Integer, EncodingPolicy::default());
    for i in 0..300i64 {
        metric.append_i64(i * 3 + v);
    }
    let mut out = Database::new();
    out.add_table(Table::new(
        "orders",
        vec![
            id.finish().column,
            qty.finish().column,
            city.finish().column,
        ],
    ));
    out.add_table(Table::new("metrics", vec![metric.finish().column]));
    out
}

/// Canonical rendering of a fully-loaded paged file: every table, every
/// column, every value. Opening and loading go through a clean backend —
/// this is "what a recovering process would see".
fn fingerprint(path: &Path) -> String {
    let pdb = PagedDatabase::open_with_io(path, PoolConfig::default(), &RealIo)
        .unwrap_or_else(|e| panic!("recovered file failed to open: {e}"));
    let mut out = String::new();
    for name in pdb.table_names() {
        let table = pdb
            .table(name)
            .unwrap()
            .load_all()
            .unwrap_or_else(|e| panic!("recovered table {name:?} failed to load: {e}"));
        out.push_str(&format!("table {name}\n"));
        for c in &table.columns {
            out.push_str(&format!("  col {}:", c.name));
            for r in 0..c.len() {
                out.push_str(&format!(" {}", c.value(r)));
            }
            out.push('\n');
        }
    }
    out
}

/// Canonical rendering of an extract *including* its delta/tombstone aux
/// payloads: each table is materialized the way a query would scan it.
fn delta_fingerprint(path: &Path) -> String {
    let ex = DeltaExtract::open(path)
        .unwrap_or_else(|e| panic!("recovered delta extract failed to open: {e}"));
    let mut out = String::new();
    for name in ex.table_names() {
        out.push_str(&format!("table {name}\n"));
        match ex.source(&name).unwrap() {
            ScanSource::Clean(pt) => {
                let table = pt.load_all().unwrap();
                for c in &table.columns {
                    out.push_str(&format!("  col {}:", c.name));
                    for r in 0..c.len() {
                        out.push_str(&format!(" {}", c.value(r)));
                    }
                    out.push('\n');
                }
            }
            ScanSource::Merged(src) => {
                let scan = MergedScan::all(Arc::clone(&src), false);
                let schema = scan.schema().clone();
                for b in drain(Box::new(scan)) {
                    for r in 0..b.len {
                        out.push_str("  row");
                        for c in 0..b.columns.len() {
                            out.push_str(&format!(
                                " {}",
                                schema.fields[c].value_of(b.columns[c][r])
                            ));
                        }
                        out.push('\n');
                    }
                }
            }
        }
    }
    out
}

/// Sweep `crash_at_op` over every boundary of one save flavor.
///
/// * `save_old` / `save_new` write the two states through a given
///   backend; `print` fingerprints whatever is on disk with a clean one.
/// * For each boundary k the file is reset to the old state, the save of
///   the new state is crashed at k, and the recovered file must equal
///   exactly one of the two fingerprints.
fn crash_sweep(
    flavor: &str,
    seed: u64,
    path: &Path,
    save_old: &dyn Fn(&dyn tde::io::StorageIo) -> std::io::Result<()>,
    save_new: &dyn Fn(&FaultIo) -> std::io::Result<()>,
    print: &dyn Fn(&Path) -> String,
) {
    save_old(&RealIo).unwrap();
    let old_bytes = std::fs::read(path).unwrap();
    let old_print = print(path);

    // Fault-free counting pass: how many boundaries does this save have?
    let counter = FaultIo::counting();
    save_new(&counter).unwrap_or_else(|e| panic!("[{flavor} seed={seed}] counting save: {e}"));
    let boundaries = counter.ops_observed();
    assert!(
        boundaries >= 4,
        "[{flavor} seed={seed}] implausibly few boundaries: {boundaries}"
    );
    let new_print = print(path);
    assert_ne!(
        old_print, new_print,
        "[{flavor} seed={seed}] states must be distinguishable"
    );

    let (mut saw_old, mut saw_new) = (false, false);
    // k == boundaries: the crash never fires and the save must succeed —
    // the sweep's "new" witness.
    for k in 0..=boundaries {
        std::fs::write(path, &old_bytes).unwrap();
        let fault = FaultIo::new(FaultPlan {
            seed,
            crash_at_op: Some(k),
            ..Default::default()
        });
        let result = save_new(&fault);
        if k < boundaries {
            assert!(
                result.is_err(),
                "[{flavor} seed={seed} k={k}] crashed save must report failure"
            );
            assert!(
                fault.crashed(),
                "[{flavor} seed={seed} k={k}] crash must fire"
            );
        } else {
            result.unwrap_or_else(|e| panic!("[{flavor} seed={seed} k={k}] clean save: {e}"));
        }
        let recovered = print(path);
        if recovered == old_print {
            saw_old = true;
        } else if recovered == new_print {
            saw_new = true;
        } else {
            panic!("[{flavor} seed={seed} k={k}] recovered file is a hybrid:\n{recovered}");
        }
    }
    assert!(
        saw_old,
        "[{flavor} seed={seed}] no crash left the old state"
    );
    assert!(
        saw_new,
        "[{flavor} seed={seed}] no pass produced the new state"
    );
}

#[test]
fn eager_v2_save_is_crash_atomic() {
    for seed in 0..torture_seeds() {
        let path = temp_path(&format!("eager_{seed}.tde2"));
        let (old_db, new_db) = (db(2 * seed), db(2 * seed + 1));
        crash_sweep(
            "eager-v2",
            seed,
            &path,
            &|io| save_v2_with_aux_atomic_io(&old_db, &HashMap::new(), &path, io),
            &|io| save_v2_with_aux_atomic_io(&new_db, &HashMap::new(), &path, io),
            &fingerprint,
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn paged_facade_save_is_crash_atomic() {
    for seed in 0..torture_seeds() {
        let path = temp_path(&format!("paged_{seed}.tde2"));
        let mut old_ex = Extract::new();
        for t in db(2 * seed).tables {
            old_ex.add_table(t);
        }
        let mut new_ex = Extract::new();
        for t in db(2 * seed + 1).tables {
            new_ex.add_table(t);
        }
        crash_sweep(
            "paged",
            seed,
            &path,
            &|io| old_ex.save_paged_with_io(&path, io),
            &|io| new_ex.save_paged_with_io(&path, io),
            &fingerprint,
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn delta_aux_save_is_crash_atomic() {
    for seed in 0..torture_seeds() {
        let path = temp_path(&format!("delta_{seed}.tde2"));
        let base = db(2 * seed);
        // The new state is the old one plus buffered mutations persisted
        // as aux payloads: the save rewrites base segments *and* appends
        // delta/tombstone sections, so every boundary class is swept.
        let mutate_and_save = |io: &FaultIo| -> std::io::Result<()> {
            let mut ex =
                DeltaExtract::open_with_io(&path, DeltaConfig::default(), Arc::new(io.clone()))?;
            let dt = ex.delta_mut("orders")?;
            dt.append_rows(&[
                vec![
                    Value::Int(9000 + seed as i64),
                    Value::Int(77),
                    Value::Str("nara".into()),
                ],
                vec![Value::Int(9001), Value::Int(78), Value::Str("bern".into())],
            ])?;
            dt.delete(&[3, 11])?;
            ex.save()
        };
        crash_sweep(
            "delta-aux",
            seed,
            &path,
            &|io| save_v2_with_aux_atomic_io(&base, &HashMap::new(), &path, io),
            &mutate_and_save,
            &delta_fingerprint,
        );
        std::fs::remove_file(&path).ok();
    }
}

/// Count every `tde_io_retries_total` sample (all `op` labels).
fn retries_total(snap: &tde::obs::metrics::MetricsSnapshot) -> u64 {
    snap.samples
        .iter()
        .filter(|s| s.name == "tde_io_retries_total")
        .map(|s| match s.value {
            tde::obs::metrics::SampleValue::Counter(c) => c,
            _ => 0,
        })
        .sum()
}

#[test]
fn scans_survive_transient_faults_with_retry_counters() {
    let path = temp_path("transient.tde2");
    save_v2_with_aux_atomic_io(&db(5), &HashMap::new(), &path, &RealIo).unwrap();

    let expected = {
        let pdb = PagedDatabase::open_with_io(&path, PoolConfig::default(), &RealIo).unwrap();
        tde::Query::scan_paged(&pdb.table("orders").unwrap()).rows()
    };

    let before = tde::obs::metrics::global().snapshot();
    let fault = FaultIo::new(FaultPlan {
        transient_read_period: Some(2),
        short_read_period: Some(3),
        ..Default::default()
    });
    let pdb = PagedDatabase::open_with_io(&path, PoolConfig::default(), &fault).unwrap();
    let rows = tde::Query::scan_paged(&pdb.table("orders").unwrap())
        .try_rows()
        .expect("transient faults must be absorbed by bounded retry");
    assert_eq!(rows, expected, "faulted scan changed results");
    let stats = fault.stats();
    assert!(stats.transient_read_errors > 0, "{stats:?}");
    assert!(stats.short_reads > 0, "{stats:?}");
    if tde::obs::metrics::enabled() {
        let after = tde::obs::metrics::global().snapshot();
        assert!(
            retries_total(&after) > retries_total(&before),
            "tde_io_retries_total must move under transient faults"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_segment_surfaces_as_typed_query_error() {
    let path = temp_path("typed_err.tde2");
    save_v2_with_aux_atomic_io(&db(9), &HashMap::new(), &path, &RealIo).unwrap();
    // The first column segment starts at the first block boundary; flip
    // one byte inside it. The demand load must fail with a checksum
    // mismatch through the whole query stack — no panic, no wrong rows.
    let mut bytes = std::fs::read(&path).unwrap();
    let at = tde::pager::BLOCK_ALIGN as usize + 8;
    bytes[at] ^= 0x20;
    std::fs::write(&path, &bytes).unwrap();

    let pdb = PagedDatabase::open(&path).unwrap();
    let err = tde::Query::scan_paged(&pdb.table("orders").unwrap())
        .try_rows()
        .expect_err("corrupt segment must fail the query");
    let details = tde::io::checksum_mismatch_details(&err)
        .unwrap_or_else(|| panic!("expected checksum mismatch, got: {err}"));
    assert_eq!(details.segment, "stream");
    std::fs::remove_file(&path).ok();
}

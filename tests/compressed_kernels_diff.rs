//! Differential oracle for the compressed-domain predicate kernels.
//!
//! Every (encoding × compression × predicate-shape) combination is run
//! through three paths that must agree row-for-row:
//!
//! 1. the kernel path — `TableScan::with_pushed(pred, false)`, where the
//!    per-encoding kernels (§3.1) answer in the compressed domain;
//! 2. the forced fallback — `TableScan::with_pushed(pred, true)`, the
//!    same scan pinned to decode-then-eval;
//! 3. the reference — a `Filter` operator above an unpushed scan.
//!
//! Tables carry a row-id rider column so a kernel that skips blocks on
//! the predicate column but misaligns the other cursors is caught by
//! the row ids, not just the predicate values. The same checks run at
//! the query level (optimizer pushdown on vs off) and against paged v2
//! storage.

mod common;

use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;
use tde::encodings::EncodedStream;
use tde::exec::expr::CmpOp;
use tde::exec::filter::Filter;
use tde::exec::scan::TableScan;
use tde::exec::{BoxOp, Expr};
use tde::pager::save_v2;
use tde::plan::strategic::OptimizerOptions;
use tde::storage::{Column, ColumnBuilder, Compression, Database, EncodingPolicy, Table};
use tde::types::sentinel::NULL_I64;
use tde::types::{DataType, Width};
use tde::Query;

const BLOCK: usize = tde::encodings::BLOCK_SIZE;

// ---------------------------------------------------------------------
// Table construction
// ---------------------------------------------------------------------

fn stream_of(data: &[i64], mut s: EncodedStream) -> EncodedStream {
    for chunk in data.chunks(BLOCK) {
        s.append_block(chunk).expect("values fit the encoding");
    }
    s
}

/// Predicate column plus a raw row-id rider, so row alignment across
/// skipped blocks is observable.
fn table_with_rider(col: Column) -> Arc<Table> {
    let n = col.len();
    let rid: Vec<i64> = (0..n as i64).collect();
    let rid = stream_of(&rid, EncodedStream::new_raw(Width::W8, true));
    Arc::new(Table::new(
        "t",
        vec![col, Column::scalar("rid", DataType::Integer, rid)],
    ))
}

fn plain_table(data: &[i64], s: EncodedStream) -> Arc<Table> {
    table_with_rider(Column::scalar("v", DataType::Integer, stream_of(data, s)))
}

// ---------------------------------------------------------------------
// The three paths
// ---------------------------------------------------------------------

fn rows_of(mut op: BoxOp) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    while let Some(b) = op.next_block() {
        for r in 0..b.len {
            out.push(b.columns.iter().map(|c| c[r]).collect());
        }
    }
    out
}

fn scan(t: &Arc<Table>, expand: bool) -> TableScan {
    let names: Vec<&str> = t.columns.iter().map(|c| c.name.as_str()).collect();
    TableScan::project(Arc::clone(t), &names, expand)
}

/// Assert kernel == forced fallback == Filter for one predicate.
fn assert_paths_agree(t: &Arc<Table>, expand: bool, name: &str, pred: &Expr) {
    let reference = rows_of(Box::new(Filter::new(
        Box::new(scan(t, expand)),
        pred.clone(),
    )));
    let forced = rows_of(Box::new(scan(t, expand).with_pushed(pred.clone(), true)));
    assert_eq!(forced, reference, "forced fallback differs: {name}");
    let kernel = rows_of(Box::new(scan(t, expand).with_pushed(pred.clone(), false)));
    assert_eq!(kernel, reference, "kernel path differs: {name}");
}

/// Every predicate shape the pushdown compiler accepts, parameterized
/// by two literals.
fn shapes(a: i64, b: i64) -> Vec<(String, Expr)> {
    let col = || Expr::col(0);
    let cmp = |op, lit: i64| Expr::cmp(op, col(), Expr::int(lit));
    let (lo, hi) = (a.min(b), a.max(b));
    let mut out = vec![
        ("eq".into(), cmp(CmpOp::Eq, a)),
        ("ne".into(), cmp(CmpOp::Ne, a)),
        ("lt".into(), cmp(CmpOp::Lt, a)),
        ("le".into(), cmp(CmpOp::Le, a)),
        ("gt".into(), cmp(CmpOp::Gt, a)),
        ("ge".into(), cmp(CmpOp::Ge, a)),
        (
            "between".into(),
            Expr::And(Box::new(cmp(CmpOp::Ge, lo)), Box::new(cmp(CmpOp::Le, hi))),
        ),
        (
            "or-eq".into(),
            Expr::Or(Box::new(cmp(CmpOp::Eq, a)), Box::new(cmp(CmpOp::Eq, b))),
        ),
        ("not-eq".into(), Expr::Not(Box::new(cmp(CmpOp::Eq, a)))),
        ("is-null".into(), Expr::IsNull(Box::new(col()))),
        (
            "not-null".into(),
            Expr::Not(Box::new(Expr::IsNull(Box::new(col())))),
        ),
        (
            "gt-and-not-null".into(),
            Expr::And(
                Box::new(cmp(CmpOp::Gt, a)),
                Box::new(Expr::Not(Box::new(Expr::IsNull(Box::new(col()))))),
            ),
        ),
        // Reversed literal/column order exercises CmpOp::flip.
        (
            "flipped-lt".into(),
            Expr::cmp(CmpOp::Lt, Expr::int(a), col()),
        ),
    ];
    for (n, _) in &mut out {
        *n = format!("{n} (a={a}, b={b})");
    }
    out
}

fn check_all_shapes(t: &Arc<Table>, expand: bool, a: i64, b: i64) {
    for (name, pred) in shapes(a, b) {
        assert_paths_agree(t, expand, &name, &pred);
    }
}

// ---------------------------------------------------------------------
// Property tests, one per encoding family
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::proptest_cases(32)))]

    #[test]
    fn raw_stream_agrees(
        data in vec(-75i64..60, 0..3000),
        a in -60i64..60,
        b in -60i64..60,
    ) {
        // Values below the data range stand in for stored NULLs.
        let data: Vec<i64> = data.iter().map(|&v| if v < -60 { NULL_I64 } else { v }).collect();
        let t = plain_table(&data, EncodedStream::new_raw(Width::W8, true));
        check_all_shapes(&t, false, a, b);
    }

    #[test]
    fn rle_stream_agrees(
        runs in vec((-48i64..40, 1u64..260), 0..40),
        a in -40i64..40,
        b in -40i64..40,
    ) {
        let mut data = Vec::new();
        for &(v, c) in &runs {
            let v = if v < -40 { NULL_I64 } else { v };
            data.extend(std::iter::repeat_n(v, c as usize));
        }
        let t = plain_table(
            &data,
            EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W8),
        );
        check_all_shapes(&t, false, a, b);
    }

    #[test]
    fn dict_encoded_stream_agrees(
        picks in vec(0usize..12, 0..3000),
        a in -40i64..40,
        b in -40i64..40,
    ) {
        // ≤16 distinct values incl the NULL sentinel → fits 4 dict bits.
        let palette: [i64; 12] = [-33, -17, -5, -1, 0, 1, 4, 9, 21, 36, NULL_I64, -40];
        let data: Vec<i64> = picks.iter().map(|&i| palette[i]).collect();
        let t = plain_table(&data, EncodedStream::new_dict(Width::W8, true, 4));
        check_all_shapes(&t, false, a, b);
    }

    #[test]
    fn frame_of_reference_stream_agrees(
        offsets in vec(0i64..64, 0..3000),
        frame in -100i64..100,
        a in -100i64..170, b in -100i64..170,
    ) {
        let data: Vec<i64> = offsets.iter().map(|o| frame + o).collect();
        let t = plain_table(&data, EncodedStream::new_frame(Width::W8, true, frame, 6));
        check_all_shapes(&t, false, a, b);
    }

    #[test]
    fn delta_stream_agrees(
        steps in vec(0i64..4, 0..3000),
        start in -50i64..50,
        min_delta in -1i64..3,
        a in -60i64..6100, b in -60i64..6100,
    ) {
        // min_delta ≥ 0 proves sortedness (kernel binary search);
        // min_delta < 0 must decline to the fallback.
        let mut v = start;
        let mut data = Vec::with_capacity(steps.len());
        for &s in &steps {
            data.push(v);
            v += min_delta + s;
        }
        let t = plain_table(
            &data,
            EncodedStream::new_delta(Width::W8, true, min_delta, 2),
        );
        check_all_shapes(&t, false, a, b);
    }

    #[test]
    fn affine_stream_agrees(
        n in 0usize..3000,
        base in -1000i64..1000,
        delta in -7i64..8,
        a in -1000i64..1000, b in -1000i64..1000,
    ) {
        let data: Vec<i64> = (0..n as i64).map(|i| base + i * delta).collect();
        let t = plain_table(&data, EncodedStream::new_affine(Width::W8, true, base, delta));
        check_all_shapes(&t, false, a, b);
    }

    #[test]
    fn array_compressed_column_agrees(
        codes in vec(0i64..8, 0..3000),
        a in -50i64..50, b in -50i64..50,
    ) {
        // Dictionary-domain kernel: predicate evaluated over 8 entries,
        // then a code-set test on the packed indexes.
        let dictionary = vec![-45, -12, -1, 0, 3, 17, 29, NULL_I64];
        let col = Column {
            name: "v".into(),
            dtype: DataType::Integer,
            data: stream_of(&codes, EncodedStream::new_dict(Width::W8, false, 3)),
            compression: Compression::Array {
                dictionary,
                sorted: false,
            },
            metadata: tde::encodings::ColumnMetadata::unknown(),
        };
        let t = table_with_rider(col);
        check_all_shapes(&t, true, a, b);
    }

    #[test]
    fn built_column_with_metadata_agrees(
        data in vec(-350i64..300, 0..4000),
        a in -320i64..320, b in -320i64..320,
    ) {
        let data: Vec<i64> = data.iter().map(|&v| if v < -300 { NULL_I64 } else { v }).collect();
        // ColumnBuilder picks the encoding dynamically and extracts
        // min/max metadata, exercising the metadata-minmax gate in
        // front of whichever kernel the chosen encoding has.
        let mut builder = ColumnBuilder::new("v", DataType::Integer, EncodingPolicy::default());
        builder.append_raw(&data);
        let t = table_with_rider(builder.finish().column);
        check_all_shapes(&t, false, a, b);
    }

    #[test]
    fn string_heap_column_falls_back_consistently(
        picks in vec(0usize..5, 0..2000),
        a in -10i64..10, b in -10i64..10,
    ) {
        // Heap tokens have string semantics the value set cannot carry:
        // the kernel must decline, and all paths must still agree. The
        // integer predicates target the rider (col 1 → remapped col 0
        // tests stay on the string col via IsNull only).
        let words = ["alpha", "beta", "gamma", "delta", "epsilon"];
        let mut s = ColumnBuilder::new("v", DataType::Str, EncodingPolicy::default());
        for &p in &picks {
            s.append_str(Some(words[p]));
        }
        let t = table_with_rider(s.finish().column);
        // String-column predicates: only NULL tests compile; everything
        // else must take the identical fallback.
        for (name, pred) in [
            ("is-null", Expr::IsNull(Box::new(Expr::col(0)))),
            (
                "not-null",
                Expr::Not(Box::new(Expr::IsNull(Box::new(Expr::col(0))))),
            ),
            (
                "str-eq",
                Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::Lit(tde::types::Value::Str("beta".into()))),
            ),
        ] {
            assert_paths_agree(&t, false, name, &pred);
        }
        // Rider predicates around a string column keep alignment.
        for (name, pred) in shapes(a, b) {
            let pred = pred.remap_columns(&|_| 1);
            assert_paths_agree(&t, false, &name, &pred);
        }
    }

    #[test]
    fn query_level_pushdown_agrees(
        runs in vec((-36i64..30, 1u64..200), 0..30),
        a in -30i64..30, b in -30i64..30,
    ) {
        let mut data = Vec::new();
        for &(v, c) in &runs {
            let v = if v < -30 { NULL_I64 } else { v };
            data.extend(std::iter::repeat_n(v, c as usize));
        }
        let t = plain_table(
            &data,
            EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W8),
        );
        let kernel_only = OptimizerOptions {
            invisible_joins: false,
            index_tables: false,
            ordered_retrieval: false,
            kernel_pushdown: true,
            parallelism: 1,
        };
        let none = OptimizerOptions {
            kernel_pushdown: false,
            ..kernel_only
        };
        for (name, pred) in shapes(a, b) {
            let run = |opts| {
                Query::scan(&t)
                    .filter(pred.clone())
                    .with_optimizer(opts)
                    .rows()
            };
            assert_eq!(run(kernel_only), run(none), "query rows differ: {name}");
            // And through the aggregation pipeline (RunAggregate hook).
            let agg = |opts| {
                Query::scan_columns(&t, &["v"])
                    .filter(pred.clone())
                    .aggregate(
                        vec![],
                        vec![
                            (tde::exec::expr::AggFunc::Count, 0, "n"),
                            (tde::exec::expr::AggFunc::Sum, 0, "s"),
                            (tde::exec::expr::AggFunc::Min, 0, "lo"),
                            (tde::exec::expr::AggFunc::Max, 0, "hi"),
                        ],
                    )
                    .with_optimizer(opts)
                    .rows()
            };
            assert_eq!(agg(kernel_only), agg(none), "aggregate rows differ: {name}");
        }
    }

    #[test]
    fn paged_storage_pushdown_agrees(
        data in vec(-62i64..50, 1..3000),
        a in -50i64..50, b in -50i64..50,
        case in 0u32..1_000_000,
    ) {
        let data: Vec<i64> = data.iter().map(|&v| if v < -50 { NULL_I64 } else { v }).collect();
        let t = plain_table(&data, EncodedStream::new_raw(Width::W8, true));
        let mut db = Database::new();
        db.add_table((*t).clone());
        let path = std::env::temp_dir().join(format!(
            "tde_kernels_diff_{}_{case}.tde2",
            std::process::id()
        ));
        save_v2(&db, &path).unwrap();
        let paged = tde::pager::PagedDatabase::open(&path).unwrap();
        let pt = paged.table("t").unwrap();
        for (name, pred) in shapes(a, b) {
            let reference = rows_of(Box::new(Filter::new(
                Box::new(TableScan::paged_all(&pt, false).unwrap()),
                pred.clone(),
            )));
            let kernel = rows_of(Box::new(
                TableScan::paged_all(&pt, false)
                    .unwrap()
                    .with_pushed(pred.clone(), false),
            ));
            assert_eq!(kernel, reference, "paged kernel differs: {name}");
        }
        std::fs::remove_file(&path).ok();
    }
}

// ---------------------------------------------------------------------
// Pinned regressions: counterexamples the oracle found, kept as
// explicit cases (the proptest shim reads the sibling
// `.proptest-regressions` file for bookkeeping, but these re-run the
// exact inputs directly).
// ---------------------------------------------------------------------

/// An RLE run straddling a block boundary with a partially-matching
/// run: the cursor must consume exactly one block's worth without
/// advancing past the run.
#[test]
fn pinned_rle_run_straddles_block_boundary() {
    let mut data = vec![7i64; BLOCK + 100];
    data.extend(std::iter::repeat_n(NULL_I64, 50));
    data.extend(std::iter::repeat_n(-3, BLOCK * 2 + 1));
    let t = plain_table(
        &data,
        EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W8),
    );
    check_all_shapes(&t, false, 7, -3);
}

/// Affine with negative delta: interval solving must flip bounds, and
/// the last-value overflow guard must hold at the extremes.
#[test]
fn pinned_affine_negative_delta_extremes() {
    let data: Vec<i64> = (0..2500).map(|i| 1000 - 7 * i).collect();
    let t = plain_table(&data, EncodedStream::new_affine(Width::W8, true, 1000, -7));
    check_all_shapes(&t, false, 1000 - 7 * 2499, 1000);
    check_all_shapes(&t, false, i64::MAX, i64::MIN + 1);
}

/// Empty table: every path must produce zero rows without panicking.
#[test]
fn pinned_empty_table() {
    let t = plain_table(&[], EncodedStream::new_raw(Width::W8, true));
    check_all_shapes(&t, false, 0, 1);
}

/// A dictionary whose entries *all* match (and all miss): the all-true /
/// all-false shortcuts must preserve the rider column.
#[test]
fn pinned_dict_domain_all_and_none() {
    let codes: Vec<i64> = (0..2000).map(|i| i % 4).collect();
    let col = Column {
        name: "v".into(),
        dtype: DataType::Integer,
        data: stream_of(&codes, EncodedStream::new_dict(Width::W8, false, 2)),
        compression: Compression::Array {
            dictionary: vec![10, 20, 30, 40],
            sorted: true,
        },
        metadata: tde::encodings::ColumnMetadata::unknown(),
    };
    let t = table_with_rider(col);
    assert_paths_agree(
        &t,
        true,
        "all-match",
        &Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(0)),
    );
    assert_paths_agree(
        &t,
        true,
        "none-match",
        &Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(100)),
    );
}

/// NULL literal comparisons: `v = NULL` is false for every row under
/// the engine's sentinel semantics, including rows storing the
/// sentinel; `NOT (v = NULL)` is therefore true for every row.
#[test]
fn pinned_null_literal_comparisons() {
    let data = vec![1, NULL_I64, 3, NULL_I64, 5];
    let t = plain_table(&data, EncodedStream::new_raw(Width::W8, true));
    for pred in [
        Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::Lit(tde::types::Value::Null)),
        Expr::Not(Box::new(Expr::cmp(
            CmpOp::Eq,
            Expr::col(0),
            Expr::Lit(tde::types::Value::Null),
        ))),
    ] {
        assert_paths_agree(&t, false, "null-literal", &pred);
    }
}

/// Sorted delta stream where the probe falls between stored values:
/// the binary-search bounds must not be off by one.
#[test]
fn pinned_delta_probe_between_values() {
    let data: Vec<i64> = (0..3000).map(|i| i * 3).collect();
    let t = plain_table(&data, EncodedStream::new_delta(Width::W8, true, 0, 2));
    check_all_shapes(&t, false, 4, 8996);
    check_all_shapes(&t, false, -1, 9000);
}

//! Tier-1 replay of the pinned fuzz corpus.
//!
//! Every `.case` file under `tests/fuzz_corpus/` is a shrunk repro of a
//! bug the tde-fuzz sweep found (the header comment in each file names
//! the bug and the fix). Replaying a case runs the *full* oracle stack —
//! differential (optimizer on/off, kernel vs fallback, paged-v2 vs
//! eager-v1, parallel vs serial), metamorphic (TLP partitioning,
//! re-encoding invariance) and metadata-invariant — so a regression in
//! any of the fixed code paths fails here without needing the nightly
//! sweep. Add new files by copying the `.case` a failing sweep writes to
//! its corpus dir; never edit a pinned case to make it pass.

use tde_fuzz::{run_case_catching, CaseSpec};

#[test]
fn corpus_replays_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fuzz_corpus");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/fuzz_corpus missing")
        .map(|e| e.expect("readdir").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("case"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 6,
        "corpus thinned out: only {} case file(s)",
        paths.len()
    );
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("read case");
        let spec = CaseSpec::parse(&text)
            .unwrap_or_else(|e| panic!("{}: parse error: {e}", path.display()));
        spec.validate()
            .unwrap_or_else(|e| panic!("{}: invalid case: {e}", path.display()));
        let report = run_case_catching(&spec);
        assert!(
            report.clean(),
            "{}: pinned repro regressed:\n{:#?}",
            path.display(),
            report.discrepancies
        );
    }
}

#[test]
fn corpus_cases_round_trip_through_the_text_format() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fuzz_corpus");
    for entry in std::fs::read_dir(dir).expect("tests/fuzz_corpus missing") {
        let path = entry.expect("readdir").path();
        if path.extension().and_then(|e| e.to_str()) != Some("case") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read case");
        let spec = CaseSpec::parse(&text).expect("parse");
        let reparsed = CaseSpec::parse(&spec.to_text()).expect("reparse");
        assert_eq!(
            spec.to_text(),
            reparsed.to_text(),
            "{}: serialization not a fixpoint",
            path.display()
        );
    }
}

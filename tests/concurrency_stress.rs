//! Concurrency stress tests: many threads hammering the two shared,
//! stateful subsystems at once.
//!
//! 1. A paged extract behind a deliberately tiny buffer pool, so every
//!    scan fights for cache slots and forces evictions mid-query. The
//!    extract is immutable, so every thread must see byte-identical
//!    results no matter how the pool thrashes — and a quiesced rerun
//!    must reproduce them again.
//! 2. A live [`DeltaTable`] mutated by a writer while a background
//!    [`Compactor`] re-encodes it and reader threads scan snapshots at
//!    mixed morsel-parallel degrees. Each snapshot is immutable, so
//!    serial and parallel runs over it must agree exactly, and a row
//!    conservation invariant (`initial + appended - deleted`) must
//!    survive any interleaving of mutations and compactions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tde::delta::{Compactor, CompactorConfig, DeltaTable};
use tde::exec::block::{Block, Schema};
use tde::exec::expr::{AggFunc, CmpOp, Expr};
use tde::pager::{save_v2, PagedDatabase, PagedTable, PoolConfig};
use tde::storage::{ColumnBuilder, Database, EncodingPolicy, Table};
use tde::types::{DataType, Value};
use tde::Query;

const CITIES: [&str; 8] = [
    "lyon", "oslo", "kyiv", "lima", "turin", "quito", "perth", "osaka",
];

/// High-entropy integer stream: defeats RLE so the paged file is large
/// relative to the pool budget and scans genuinely churn the cache.
fn noisy(i: i64) -> i64 {
    (i.wrapping_mul(2654435761) ^ (i << 7)) % 1_000_003
}

fn orders_table(rows: i64) -> Table {
    let mut id = ColumnBuilder::new("id", DataType::Integer, EncodingPolicy::default());
    let mut qty = ColumnBuilder::new("qty", DataType::Integer, EncodingPolicy::default());
    let mut city = ColumnBuilder::new("city", DataType::Str, EncodingPolicy::default());
    for i in 0..rows {
        id.append_i64(i);
        qty.append_i64(noisy(i));
        city.append_str(Some(CITIES[i as usize % CITIES.len()]));
    }
    Table::new(
        "orders",
        vec![
            id.finish().column,
            qty.finish().column,
            city.finish().column,
        ],
    )
}

/// A wide, incompressible extract: 24 noisy integer columns plus one
/// string column. Wide matters — eviction only fires when a segment
/// *insert* finds the shard over budget, so the workload needs many
/// more segments than fit, with different queries pulling different
/// subsets so there is always something unpinned to evict.
fn wide_db(rows: i64) -> Database {
    let mut columns = Vec::new();
    for c in 0..24i64 {
        let name = format!("c{c}");
        let mut b = ColumnBuilder::new(&name, DataType::Integer, EncodingPolicy::default());
        for i in 0..rows {
            b.append_i64(noisy(i * 29 + c));
        }
        columns.push(b.finish().column);
    }
    let mut s = ColumnBuilder::new("city", DataType::Str, EncodingPolicy::default());
    for i in 0..rows {
        s.append_str(Some(CITIES[i as usize % CITIES.len()]));
    }
    columns.push(s.finish().column);
    let mut db = Database::new();
    db.add_table(Table::new("wide", columns));
    db
}

/// Canonical form of a query result for exact comparison across runs:
/// the schema's full debug rendering (so metadata claims count too)
/// plus every block's rows and lengths.
fn fingerprint(schema: &Schema, blocks: &[Block]) -> String {
    let mut s = format!("{schema:?}");
    for b in blocks {
        s.push_str(&format!("|len={} cols={:?}", b.len, b.columns));
    }
    s
}

// ---------------------------------------------------------------------
// 1. Paged extract under pool eviction pressure.
// ---------------------------------------------------------------------

/// The mixed query set every thread cycles through. Each variant pulls
/// a different column subset, so concurrent threads keep displacing
/// each other's segments. The extract is immutable, so fingerprints
/// are constant regardless of cache state or morsel scheduling.
fn paged_queries(t: &PagedTable, variant: usize) -> String {
    let (schema, blocks) = match variant % 4 {
        0 => Query::scan_paged_columns(t, &["city", "c0", "c1"])
            .filter(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(500_000)))
            .aggregate(
                vec![0],
                vec![(AggFunc::Count, 1, "n"), (AggFunc::Max, 2, "top")],
            )
            .with_parallelism(4)
            .run(),
        1 => Query::scan_paged_columns(t, &["c5", "c6"])
            .filter(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(400_000)))
            .aggregate(vec![], vec![(AggFunc::Sum, 0, "s"), (AggFunc::Max, 1, "m")])
            .with_parallelism(2)
            .run(),
        2 => Query::scan_paged_columns(t, &["c10", "c11", "c12"])
            .filter(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(40_000)))
            .run(),
        _ => Query::scan_paged_columns(t, &["city", "c17"])
            .aggregate(vec![0], vec![(AggFunc::Sum, 1, "total")])
            .run(),
    };
    fingerprint(&schema, &blocks)
}

#[test]
fn paged_pool_stays_consistent_under_concurrent_eviction_pressure() {
    let dir = std::env::temp_dir().join("tde_concurrency_stress");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pressure.tde2");
    save_v2(&wide_db(20_000), &path).unwrap();

    // A budget a small fraction of the extract's segment footprint:
    // concurrent scans continually evict each other's columns.
    let budget = 192 * 1024;
    let db = PagedDatabase::open_with(
        &path,
        PoolConfig {
            budget_bytes: budget,
            shards: 2,
        },
    )
    .unwrap();

    let expected: Vec<String> = (0..4)
        .map(|v| paged_queries(&db.table("wide").unwrap(), v))
        .collect();

    std::thread::scope(|s| {
        for worker in 0..4usize {
            let db = &db;
            let expected = &expected;
            s.spawn(move || {
                let t = db.table("wide").unwrap();
                // Workers start at different offsets so distinct column
                // subsets are always in flight together.
                for iter in 0..10 {
                    let variant = (worker + iter) % 4;
                    assert_eq!(
                        paged_queries(&t, variant),
                        expected[variant],
                        "worker {worker} iteration {iter}: variant {variant} \
                         drifted under eviction pressure"
                    );
                }
            });
        }
    });

    // Quiesced rerun: same answers once the stampede is over.
    for (v, want) in expected.iter().enumerate() {
        assert_eq!(&paged_queries(&db.table("wide").unwrap(), v), want);
    }

    // Pool accounting stayed coherent through the thrash. Note there is
    // deliberately no hard `bytes_cached <= budget` cap: the sweep
    // tolerates over-budget occupancy while entries are pinned, and it
    // only runs on insert — so the *conservation identity* is the
    // contract, not the cap.
    let snap = db.cache_snapshot();
    assert_eq!(snap.budget_bytes, budget);
    assert!(snap.hits > 0, "repeat scans never hit the pool: {snap:?}");
    assert!(snap.misses > 0, "cold reads never missed: {snap:?}");
    assert!(
        snap.evictions > 0 && snap.bytes_evicted > 0,
        "a {budget}-byte budget must evict under this workload: {snap:?}"
    );
    assert!(
        snap.evictions <= snap.misses,
        "every eviction needs a prior insert: {snap:?}"
    );
    assert_eq!(
        snap.bytes_cached,
        snap.bytes_read - snap.bytes_evicted,
        "resident bytes must equal loaded minus evicted: {snap:?}"
    );
    std::fs::remove_file(&path).ok();
}

/// A failing segment load must not poison its buffer-pool slot. Loads
/// run under the shard lock (the pool's single-flight discipline) and
/// insert only on success — so with `n` hard read failures armed, the
/// first `n` serialized loads fail, every later load (and every retry by
/// a thread that just saw the failure) succeeds with correct bytes, and
/// nothing corrupt or empty is ever cached.
#[test]
fn failed_segment_load_does_not_poison_the_pool_slot() {
    use tde::io::{FaultIo, FaultPlan};

    let dir = std::env::temp_dir().join("tde_concurrency_stress");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("poison.tde2");
    let eager = orders_table(5_000);
    let mut db = Database::new();
    db.add_table(eager.clone());
    save_v2(&db, &path).unwrap();

    let io = FaultIo::new(FaultPlan::default());
    let paged = PagedDatabase::open_with_io(&path, PoolConfig::default(), &io).unwrap();

    const ARMED: u64 = 3;
    const THREADS: usize = 8;
    io.arm_hard_read_failures(ARMED);

    // Storm: every thread demand-loads the same cold column, retrying on
    // failure. The shard lock serializes the loads and a failed load
    // inserts nothing, so each armed fault fails exactly one attempt —
    // ARMED failures total, distributed over the threads however the
    // races land — and every thread eventually succeeds against an
    // empty (not poisoned) slot.
    let failures = AtomicU64::new(0);
    std::thread::scope(|s| {
        for worker in 0..THREADS {
            let paged = &paged;
            let failures = &failures;
            s.spawn(move || {
                let t = paged.table("orders").unwrap();
                let col = loop {
                    match t.column("qty") {
                        Ok(c) => break c,
                        Err(e) => {
                            assert!(
                                e.to_string().contains("injected hard read failure"),
                                "worker {worker}: unexpected load error: {e}"
                            );
                            let seen = failures.fetch_add(1, Ordering::SeqCst) + 1;
                            assert!(
                                seen <= ARMED,
                                "worker {worker}: {seen} failures from {ARMED} armed faults"
                            );
                        }
                    }
                };
                for row in (0..5_000).step_by(617) {
                    assert_eq!(
                        col.value(row),
                        Value::Int(noisy(row as i64)),
                        "worker {worker}: cached column served wrong bytes at row {row}"
                    );
                }
            });
        }
    });
    assert_eq!(
        failures.load(Ordering::SeqCst),
        ARMED,
        "each armed fault must fail exactly one load"
    );
    assert_eq!(io.stats().hard_read_errors, ARMED);

    // The pool recovered with the real segment: a full query over the
    // same handle matches the eager table, and the failed loads left no
    // phantom entries — resident bytes still reconcile with the counters.
    let sum: i64 = (0..5_000).map(noisy).sum();
    let rows = Query::scan_paged_columns(&paged.table("orders").unwrap(), &["qty"])
        .aggregate(vec![], vec![(AggFunc::Sum, 0, "s")])
        .rows();
    assert_eq!(rows, vec![vec![Value::Int(sum)]]);
    let snap = paged.cache_snapshot();
    assert_eq!(
        snap.bytes_cached,
        snap.bytes_read - snap.bytes_evicted,
        "failed loads corrupted pool accounting: {snap:?}"
    );
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------
// 2. Live delta store + background compactor + parallel readers.
// ---------------------------------------------------------------------

fn delta_row(key: i64) -> Vec<Value> {
    vec![
        Value::Int(key),
        Value::Int(noisy(key) % 100),
        Value::Str(CITIES[key as usize % CITIES.len()].to_owned()),
    ]
}

#[test]
fn live_delta_under_background_compaction_answers_consistently() {
    const BASE_ROWS: i64 = 4_000;
    let base = Arc::new(orders_table(BASE_ROWS));
    let dt = Arc::new(parking_lot::Mutex::new(DeltaTable::from_eager(base)));

    // Aggressive thresholds + fast polling: compactions race the
    // mutations and snapshots instead of waiting politely for the end.
    let compactor = Compactor::spawn(
        dt.clone(),
        CompactorConfig {
            max_delta_rows: 512,
            max_tombstones: 256,
            max_delta_bytes: 1 << 20,
            poll: Duration::from_millis(2),
        },
    );

    let appended = Arc::new(AtomicU64::new(0));
    let deleted = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Writer: batches of appends with interleaved deletes. Delete
        // targets are bounded by merged_rows, which is always a valid
        // id bound no matter how compaction has re-packed the store.
        {
            let dt = dt.clone();
            let appended = appended.clone();
            let deleted = deleted.clone();
            s.spawn(move || {
                for round in 0..200i64 {
                    let mut g = dt.lock();
                    let batch: Vec<Vec<Value>> = (0..8)
                        .map(|j| delta_row(BASE_ROWS + round * 8 + j))
                        .collect();
                    g.append_rows(&batch).unwrap();
                    appended.fetch_add(batch.len() as u64, Ordering::Relaxed);
                    if round % 3 == 0 {
                        let upper = g.merged_rows();
                        let ids: Vec<u64> = (0..2)
                            .map(|k| (noisy(round * 31 + k) as u64) % upper)
                            .collect();
                        deleted.fetch_add(g.delete(&ids).unwrap(), Ordering::Relaxed);
                    }
                    drop(g);
                    std::thread::yield_now();
                }
            });
        }

        // Readers: snapshot the store mid-flight and check that each
        // (immutable) snapshot answers identically at every morsel
        // degree, and that its full-scan cardinality matches the row
        // count the store claimed at snapshot time.
        for reader in 0..3usize {
            let dt = dt.clone();
            s.spawn(move || {
                for iter in 0..40 {
                    let (src, claimed_rows) = {
                        let g = dt.lock();
                        (g.snapshot().unwrap(), g.merged_rows())
                    };
                    let query = || {
                        Query::scan_delta(&src)
                            .filter(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(10)))
                            .aggregate(
                                vec![2],
                                vec![(AggFunc::Count, 0, "n"), (AggFunc::Sum, 1, "total")],
                            )
                    };
                    let (schema, blocks) = query().run();
                    for degree in [2usize, 4] {
                        let (ps, pb) = query().with_parallelism(degree).run();
                        assert_eq!(
                            fingerprint(&schema, &blocks),
                            fingerprint(&ps, &pb),
                            "reader {reader} iteration {iter}: degree-{degree} run \
                             diverged from serial on the same snapshot"
                        );
                    }
                    let full: u64 = Query::scan_delta(&src)
                        .aggregate(vec![], vec![(AggFunc::Count, 0, "n")])
                        .rows()
                        .iter()
                        .map(|r| match r[0] {
                            Value::Int(n) => n as u64,
                            ref v => panic!("count returned {v:?}"),
                        })
                        .sum();
                    assert_eq!(
                        full, claimed_rows,
                        "reader {reader} iteration {iter}: snapshot cardinality drifted"
                    );
                }
            });
        }
    });

    compactor.stop();

    // Conservation: whatever the interleaving of appends, deletes and
    // compactions, the logical row count is exact.
    let mut g = dt.lock();
    assert_eq!(
        g.merged_rows(),
        BASE_ROWS as u64 + appended.load(Ordering::Relaxed) - deleted.load(Ordering::Relaxed),
        "row conservation violated across concurrent compactions"
    );

    // Quiesced rerun: the final answer survives one more (manual)
    // compaction. Canonicalized rows, not fingerprints — re-encoding is
    // free to tighten metadata claims and re-token the dictionary, and
    // the group emission order is an implementation detail.
    let quiesced = |g: &DeltaTable| {
        let src = g.snapshot().unwrap();
        let mut rows = Query::scan_delta(&src)
            .filter(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(10)))
            .aggregate(vec![2], vec![(AggFunc::Sum, 1, "total")])
            .with_parallelism(4)
            .rows();
        rows.sort_by_key(|r| format!("{r:?}"));
        rows
    };
    let before = quiesced(&g);
    g.compact().unwrap();
    assert!(g.is_clean(), "manual compact left residue");
    assert_eq!(
        quiesced(&g),
        before,
        "compaction changed the quiesced answer"
    );
}

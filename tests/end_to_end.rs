//! End-to-end integration: generate → import → save → load → query, across
//! the crates. These tests exercise the same paths as the paper's
//! evaluation pipeline, at test scale.

use std::sync::Arc;
use tde::datagen::tpch::{write_table, TpchTable};
use tde::exec::expr::{AggFunc, CmpOp, Expr};
use tde::plan::strategic::OptimizerOptions;
use tde::textscan::{import_file, ImportOptions};
use tde::types::Value;
use tde::{Extract, Query};

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join("tde_integration").join(name);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn import_tpch(table: TpchTable, sf: f64, dir: &std::path::Path) -> tde::textscan::ImportResult {
    let path = write_table(dir, table, sf, 42).unwrap();
    let schema = table
        .schema()
        .into_iter()
        .map(|(n, t)| (n.to_owned(), t))
        .collect();
    import_file(
        &path,
        &ImportOptions {
            schema: Some(schema),
            has_header: Some(false),
            table_name: table.name().to_owned(),
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn tpch_lineitem_import_roundtrip() {
    let dir = tmp("lineitem");
    let path = write_table(&dir, TpchTable::Lineitem, 0.002, 42).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let result = import_tpch(TpchTable::Lineitem, 0.002, &dir);
    let table = &result.table;
    assert_eq!(table.row_count() as usize, text.lines().count());
    assert_eq!(result.parse_errors, 0);

    // Spot-check parsed values against the raw text.
    for (row, line) in text.lines().enumerate().step_by(197) {
        let fields: Vec<&str> = line.trim_end_matches('|').split('|').collect();
        assert_eq!(
            table.column("l_orderkey").unwrap().value(row as u64),
            Value::Int(fields[0].parse().unwrap()),
            "row {row}"
        );
        assert_eq!(
            table.column("l_shipmode").unwrap().value(row as u64),
            Value::Str(fields[14].to_owned())
        );
        assert_eq!(
            table
                .column("l_shipdate")
                .unwrap()
                .value(row as u64)
                .to_string(),
            fields[10]
        );
        let price: f64 = fields[5].parse().unwrap();
        match table.column("l_extendedprice").unwrap().value(row as u64) {
            Value::Real(v) => assert!((v - price).abs() < 1e-6),
            other => panic!("expected real, got {other}"),
        }
    }
}

#[test]
fn tpch_q1_style_aggregate_matches_reference() {
    // A pricing-summary-style query computed by the engine and by a naive
    // reference over the parsed values.
    let dir = tmp("q1");
    let result = import_tpch(TpchTable::Lineitem, 0.002, &dir);
    let table = Arc::new(result.table);
    let flag = table.column_index("l_returnflag").unwrap();
    let qty = table.column_index("l_quantity").unwrap();

    let mut rows = Query::scan(&table)
        .aggregate(
            vec![flag],
            vec![(AggFunc::Count, qty, "n"), (AggFunc::Sum, qty, "sum_qty")],
        )
        .rows();
    rows.sort_by_key(|r| r[0].to_string());

    // Reference computation.
    use std::collections::BTreeMap;
    let mut reference: BTreeMap<String, (i64, i64)> = BTreeMap::new();
    for row in 0..table.row_count() {
        let f = table.columns[flag].value(row).to_string();
        let q = table.columns[qty].value(row).as_i64().unwrap();
        let e = reference.entry(f).or_default();
        e.0 += 1;
        e.1 += q;
    }
    assert_eq!(rows.len(), reference.len());
    for row in &rows {
        let (n, sum) = reference[&row[0].to_string()];
        assert_eq!(row[1], Value::Int(n), "count for {}", row[0]);
        assert_eq!(row[2], Value::Int(sum), "sum for {}", row[0]);
    }
}

#[test]
fn extract_save_load_preserves_all_tables() {
    let dir = tmp("extract");
    let mut extract = Extract::new();
    for table in [TpchTable::Region, TpchTable::Nation, TpchTable::Supplier] {
        let r = import_tpch(table, 0.01, &dir);
        extract.add_table(r.table);
    }
    let file = dir.join("tiny.tde");
    extract.save(&file).unwrap();
    let loaded = Extract::load(&file).unwrap();
    assert_eq!(loaded.tables().len(), 3);
    let nation = loaded.table("nation").unwrap();
    assert_eq!(nation.row_count(), 25);
    assert_eq!(
        nation.column("n_name").unwrap().value(0),
        Value::Str("ALGERIA".into())
    );
    // Metadata round-trips: nation keys are dense and unique.
    let key = nation.column("n_nationkey").unwrap();
    assert!(key.metadata.dense.is_true());
    assert!(key.metadata.unique.is_true());
}

#[test]
fn foreign_key_join_through_engine() {
    // orders ⋈ customer on custkey, via the Join operator with tactical
    // choice: customer keys are dense 1..n, so this must be a fetch join.
    use tde::exec::join::{Join, JoinKind};
    use tde::exec::scan::TableScan;
    use tde::exec::tactical::JoinChoice;
    use tde::exec::Operator;

    let dir = tmp("fkjoin");
    let customer = Arc::new(import_tpch(TpchTable::Customer, 0.002, &dir).table);
    let orders = Arc::new(import_tpch(TpchTable::Orders, 0.002, &dir).table);
    let c_key = customer.column_index("c_custkey").unwrap();
    let c_seg = customer.column_index("c_mktsegment").unwrap();
    let o_cust = orders.column_index("o_custkey").unwrap();

    let cust_schema = TableScan::new(customer.clone()).schema().clone();
    let join = Join::new(
        Box::new(TableScan::new(orders.clone())),
        &customer,
        &cust_schema,
        o_cust,
        c_key,
        &[c_seg],
        JoinKind::Inner,
    );
    assert!(
        matches!(join.choice, JoinChoice::Fetch { .. }),
        "{:?}",
        join.choice
    );
    let schema = join.schema().clone();
    let mut op: tde::exec::BoxOp = Box::new(join);
    let mut total = 0u64;
    let seg_col = schema.len() - 1;
    while let Some(b) = op.next_block() {
        total += b.len as u64;
        // Every joined segment value is one of the five TPC-H segments.
        for r in 0..b.len {
            let v = schema.fields[seg_col]
                .value_of(b.columns[seg_col][r])
                .to_string();
            assert!(
                [
                    "AUTOMOBILE",
                    "BUILDING",
                    "FURNITURE",
                    "MACHINERY",
                    "HOUSEHOLD"
                ]
                .contains(&v.as_str()),
                "{v}"
            );
        }
    }
    assert_eq!(total, orders.row_count());
}

#[test]
fn optimizer_plans_agree_on_flights() {
    // A date filter over the flights extract, with and without the
    // strategic rewrites, must return identical results.
    let dir = tmp("flights_agree");
    let csv = dir.join("flights.csv");
    tde::datagen::flights::write_file(&csv, 30_000, 11).unwrap();
    let mut result = import_file(
        &csv,
        &ImportOptions {
            table_name: "flights".into(),
            ..Default::default()
        },
    )
    .unwrap();
    tde::design::optimize_physical_design(&mut result.table, Default::default());
    let flights = Arc::new(result.table);

    let cutoff = Expr::Lit(Value::date(2003, 1, 1));
    let build = |opts: OptimizerOptions| {
        Query::scan_columns(&flights, &["flight_date", "distance"])
            .filter(Expr::cmp(CmpOp::Ge, Expr::col(0), cutoff.clone()))
            .aggregate(
                vec![],
                vec![(AggFunc::Count, 1, "n"), (AggFunc::Sum, 1, "dist")],
            )
            .with_optimizer(opts)
            .rows()
    };
    let clever = build(OptimizerOptions::default());
    let naive = build(OptimizerOptions {
        invisible_joins: false,
        index_tables: false,
        ordered_retrieval: false,
        kernel_pushdown: false,
        parallelism: 1,
    });
    assert_eq!(clever, naive);
    assert!(matches!(clever[0][0], Value::Int(n) if n > 0));
}

#[test]
fn string_predicate_pushdown_agrees() {
    // Equality on a small-domain string column: pushed to the dictionary
    // (semi-join) vs evaluated row-at-a-time.
    let dir = tmp("string_pushdown");
    let customer = Arc::new(import_tpch(TpchTable::Customer, 0.002, &dir).table);
    let seg = customer.column_index("c_mktsegment").unwrap();
    let build = |opts: OptimizerOptions| {
        Query::scan_columns(&customer, &["c_mktsegment", "c_custkey"])
            .filter(Expr::cmp(
                CmpOp::Eq,
                Expr::col(0),
                Expr::Lit(Value::Str("BUILDING".into())),
            ))
            .with_optimizer(opts)
            .rows()
            .len()
    };
    let _ = seg;
    let clever = build(OptimizerOptions::default());
    let naive = build(OptimizerOptions {
        invisible_joins: false,
        index_tables: false,
        ordered_retrieval: false,
        kernel_pushdown: false,
        parallelism: 1,
    });
    assert_eq!(clever, naive);
    assert!(clever > 0);
}

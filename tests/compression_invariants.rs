//! Cross-crate property tests: whatever the import pipeline, optimizer and
//! storage layers do to a column, the values it yields must never change,
//! and the paper's structural invariants must hold.

mod common;

use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;
use tde::exec::expr::{AggFunc, CmpOp, Expr};
use tde::plan::strategic::OptimizerOptions;
use tde::storage::{ColumnBuilder, Database, EncodingPolicy, Table};
use tde::types::{DataType, Value};
use tde::Query;

fn int_table(data: &[i64]) -> Arc<Table> {
    let mut b = ColumnBuilder::new("v", DataType::Integer, EncodingPolicy::default());
    b.append_raw(data);
    let mut idx = ColumnBuilder::new("i", DataType::Integer, EncodingPolicy::default());
    for i in 0..data.len() as i64 {
        idx.append_i64(i);
    }
    Arc::new(Table::new(
        "t",
        vec![b.finish().column, idx.finish().column],
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(common::proptest_cases(32)))]

    #[test]
    fn built_column_roundtrips(data in vec(any::<i64>(), 1..3000)) {
        let t = int_table(&data);
        for (row, &v) in data.iter().enumerate() {
            let got = t.columns[0].value(row as u64);
            if v == i64::MIN {
                prop_assert_eq!(got, Value::Null); // sentinel
            } else {
                prop_assert_eq!(got, Value::Int(v));
            }
        }
    }

    #[test]
    fn filter_matches_reference(data in vec(-100i64..100, 1..4000), threshold in -100i64..100) {
        let t = int_table(&data);
        let rows = Query::scan(&t)
            .filter(Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(threshold)))
            .rows();
        let expect = data.iter().filter(|&&v| v > threshold).count();
        prop_assert_eq!(rows.len(), expect);
    }

    #[test]
    fn aggregate_matches_reference(data in vec(0i64..20, 1..4000)) {
        let t = int_table(&data);
        let mut rows = Query::scan(&t)
            .aggregate(vec![0], vec![(AggFunc::Count, 1, "n"), (AggFunc::Max, 1, "mx")])
            .rows();
        rows.sort_by_key(|r| r[0].as_i64());
        let mut expect: std::collections::BTreeMap<i64, (i64, i64)> = Default::default();
        for (i, &v) in data.iter().enumerate() {
            let e = expect.entry(v).or_insert((0, i64::MIN));
            e.0 += 1;
            e.1 = e.1.max(i as i64);
        }
        prop_assert_eq!(rows.len(), expect.len());
        for (row, (k, (n, mx))) in rows.iter().zip(expect) {
            prop_assert_eq!(row[0].as_i64(), Some(k));
            prop_assert_eq!(row[1].as_i64(), Some(n));
            prop_assert_eq!(row[2].as_i64(), Some(mx));
        }
    }

    #[test]
    fn optimizer_rewrites_never_change_results(
        runs in vec((0i64..50, 1u64..200), 1..40),
        threshold in 0i64..50,
    ) {
        // Run-length data: the IndexTable rewrite must agree with the
        // row-at-a-time control on arbitrary run structures.
        let mut data = Vec::new();
        for &(v, c) in &runs {
            data.extend(std::iter::repeat_n(v, c as usize));
        }
        let t = int_table(&data);
        let build = |opts: OptimizerOptions| {
            let mut rows = Query::scan(&t)
                .filter(Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(threshold)))
                .aggregate(vec![0], vec![(AggFunc::Count, 1, "n"), (AggFunc::Max, 1, "mx")])
                .with_optimizer(opts)
                .rows();
            rows.sort_by_key(|r| r[0].as_i64());
            rows
        };
        let clever = build(OptimizerOptions::default());
        let naive = build(OptimizerOptions {
            invisible_joins: false,
            index_tables: false,
            ordered_retrieval: false,
            kernel_pushdown: false,
            parallelism: 1,
        });
        prop_assert_eq!(clever, naive);
    }

    #[test]
    fn database_file_roundtrip(data in vec(-1000i64..1000, 1..2000), strings in vec(0usize..5, 1..2000)) {
        let n = data.len().min(strings.len());
        let mut v = ColumnBuilder::new("v", DataType::Integer, EncodingPolicy::default());
        let mut s = ColumnBuilder::new("s", DataType::Str, EncodingPolicy::default());
        let words = ["alpha", "beta", "gamma", "delta", "epsilon"];
        for i in 0..n {
            v.append_i64(data[i]);
            s.append_str(Some(words[strings[i]]));
        }
        let t = Table::new("t", vec![v.finish().column, s.finish().column]);
        let mut db = Database::new();
        db.add_table(t);
        let mut buf = Vec::new();
        db.write_to(&mut buf).unwrap();
        let db2 = Database::read_from(&mut buf.as_slice()).unwrap();
        let (t1, t2) = (db.table("t").unwrap(), db2.table("t").unwrap());
        for row in 0..n as u64 {
            prop_assert_eq!(t1.columns[0].value(row), t2.columns[0].value(row));
            prop_assert_eq!(t1.columns[1].value(row), t2.columns[1].value(row));
        }
    }

    #[test]
    fn physical_never_exceeds_logical_by_much(data in vec(any::<i64>(), 512..4000)) {
        // Worst case (incompressible) costs one partial block of overhead
        // plus headers; encodings must never blow a column up materially.
        let t = int_table(&data);
        let col = &t.columns[0];
        let slack = (tde::encodings::BLOCK_SIZE * 8 + 1024) as u64;
        prop_assert!(
            col.physical_size() <= col.logical_size() + slack,
            "physical {} vs logical {}",
            col.physical_size(),
            col.logical_size()
        );
    }

    #[test]
    fn narrowed_width_is_sound(data in vec(-300i64..300, 1..3000)) {
        // The width metadata must truly bound every stored value.
        let t = int_table(&data);
        let w = t.columns[0].metadata.width;
        let lo = -(1i128 << (w.bits() - 1));
        let hi = (1i128 << (w.bits() - 1)) - 1;
        for &v in &data {
            prop_assert!(i128::from(v) >= lo && i128::from(v) <= hi, "{v} outside {w}");
        }
    }
}

/// Triage of `compression_invariants.proptest-regressions` (seed
/// `cc 9b28…`, shrunk to `data = [-34, 287, 135]`): a mixed-sign column
/// whose width statistics straddle a signed/unsigned boundary once
/// tripped the round-trip property above. The offline proptest shim used
/// in this build does not read persistence files (no shrinking, no seed
/// replay), so the shrunk case is pinned here as an explicit test instead
/// of relying on the regression file being consumed.
#[test]
fn regression_built_column_roundtrips_mixed_signs() {
    let data = [-34i64, 287, 135];
    let t = int_table(&data);
    for (row, &v) in data.iter().enumerate() {
        assert_eq!(t.columns[0].value(row as u64), Value::Int(v));
    }
}

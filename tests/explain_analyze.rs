//! End-to-end EXPLAIN ANALYZE: a scan -> filter -> invisible join ->
//! aggregate query must come back with per-operator counters, at least
//! one tactical decision event, at least one dynamic-encoding event, and
//! per-table compression telemetry.
//!
//! Assertions are "contains" style on names this test controls: other
//! tests in this binary may run queries concurrently and their events
//! can interleave into an installed trace.

use std::sync::Arc;
use tde::encodings::{EncodedStream, BLOCK_SIZE};
use tde::exec::expr::{AggFunc, CmpOp, Expr};
use tde::obs::Event;
use tde::storage::{convert, Column, ColumnBuilder, Table};
use tde::types::{DataType, Width};
use tde::Query;

fn sales_table() -> Arc<Table> {
    // 2000 distinct days: a dense prefix, then gapped values so the
    // invisible join's dictionary materialization breaks its initial
    // affine encoding and re-encodes mid-load.
    let day_of = |i: i64| {
        if i < 1500 {
            9_000 + i
        } else {
            9_000 + i + (i - 1500) * 7
        }
    };
    let days: Vec<i64> = (0..20_000).map(|i| day_of(i % 2_000)).collect();
    let mut stream = EncodedStream::new_dict(Width::W8, true, 11);
    for c in days.chunks(BLOCK_SIZE) {
        stream.append_block(c).unwrap();
    }
    let mut day = Column::scalar("ea_day", DataType::Date, stream);
    convert::dict_encoding_to_compression(&mut day);
    let mut qty = ColumnBuilder::new("ea_qty", DataType::Integer, Default::default());
    for i in 0..20_000i64 {
        qty.append_i64(i % 31);
    }
    Arc::new(Table::new("ea_sales", vec![day, qty.finish().column]))
}

#[test]
fn report_has_operator_stats_decisions_and_telemetry() {
    let t = sales_table();
    let report = Query::scan(&t)
        .filter(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(9_100)))
        .aggregate(vec![0], vec![(AggFunc::Sum, 1, "total")])
        .explain_analyze();

    // The query itself still ran: 100 qualifying days.
    assert_eq!(report.row_count, 100);
    assert_eq!(report.blocks.iter().map(|b| b.len as u64).sum::<u64>(), 100);

    // Operator tree: aggregate over join over scan, each with counters.
    let tree = &report.operator_tree;
    assert!(tree.contains("Aggregate"), "{tree}");
    assert!(tree.contains("ExpandJoin ea_sales.ea_day"), "{tree}");
    assert!(tree.contains("Scan ea_sales [ea_day, ea_qty]"), "{tree}");
    let scan = report
        .operators
        .iter()
        .find(|n| n.label.starts_with("Scan ea_sales"))
        .expect("scan node present");
    assert_eq!(scan.rows, 20_000);
    assert!(scan.blocks > 1);
    assert!(scan.elapsed.as_nanos() > 0);
    let root = &report.operators[0];
    assert!(root.parent.is_none());
    assert_eq!(root.rows, 100);

    // At least one tactical decision and one dynamic-encoding event from
    // objects this test created.
    assert!(
        report.events.iter().any(|e| matches!(
            e,
            Event::Decision { point, reason, .. }
                if *point == "join" && reason.contains("token")
        )),
        "no join decision in {:?}",
        report.events
    );
    assert!(
        report
            .events
            .iter()
            .any(|e| matches!(e, Event::Reencode { .. } | Event::ColumnBuilt { .. })),
        "no dynamic-encoding event in {:?}",
        report.events
    );

    // Compression telemetry for the scanned table.
    let (name, rows, cols) = report
        .tables
        .iter()
        .find(|(n, _, _)| n == "ea_sales")
        .expect("telemetry for ea_sales");
    assert_eq!(name, "ea_sales");
    assert_eq!(*rows, 20_000);
    let day = cols.iter().find(|c| c.column == "ea_day").unwrap();
    assert_eq!(day.cardinality, Some(2_000));
    assert!(day.compression.starts_with("array["), "{}", day.compression);
    assert!(day.physical_bytes > 0 && day.logical_bytes > 0);

    // JSON is well-formed enough for the bench harness: key sections and
    // balanced braces.
    let json = report.to_json();
    for key in [
        "\"operators\":[",
        "\"events\":[",
        "\"tables\":[",
        "\"rows\":100",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes, "unbalanced JSON braces");
}

#[test]
fn untraced_execution_records_nothing() {
    let t = sales_table();
    // A plain run must not leave a recorder installed or panic in any
    // emit path.
    let rows = Query::scan(&t)
        .filter(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(9_050)))
        .rows();
    assert_eq!(rows.len(), 50 * 10); // 50 days x 10 rows each
    assert!(!tde::obs::is_enabled());
}

/// A dictionary-encoded integer column (no array compression, so the
/// invisible-join rule declines) with a selective predicate: the
/// kernel pushdown must pick the dictionary-domain kernel, skip rows
/// without decoding them, and say so in the telemetry.
#[test]
fn kernel_scan_telemetry_on_dict_eligible_predicate() {
    let vals: Vec<i64> = (0..20_000).map(|i| (i * 7) % 16).collect();
    let mut s = EncodedStream::new_dict(Width::W8, true, 4);
    for c in vals.chunks(BLOCK_SIZE) {
        s.append_block(c).unwrap();
    }
    let mut rid = ColumnBuilder::new("kd_rid", DataType::Integer, Default::default());
    for i in 0..20_000i64 {
        rid.append_i64(i);
    }
    let t = Arc::new(Table::new(
        "kd_t",
        vec![
            Column::scalar("kd_v", DataType::Integer, s),
            rid.finish().column,
        ],
    ));
    let report = Query::scan(&t)
        .filter(Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(3)))
        .explain_analyze();
    assert_eq!(
        report.row_count,
        vals.iter().filter(|&&v| v == 3).count() as u64
    );
    // The scan decided for the dictionary-domain kernel…
    assert!(
        report.events.iter().any(|e| matches!(
            e,
            Event::Decision { point, choice, reason }
                if *point == "kernel-pushdown"
                    && choice == "dict-domain"
                    && reason.contains("kd_v")
        )),
        "no dict-domain decision in {:?}",
        report.events
    );
    // …and the end-of-scan telemetry shows rows skipped in the
    // compressed domain.
    let hit = report.kernel_scans().into_iter().any(|e| {
        matches!(
            e,
            Event::KernelScan { column, kernel, rows_in, rows_skipped, .. }
                if column == "kd_v"
                    && kernel == "dict-domain"
                    && *rows_in == 20_000
                    && *rows_skipped > 0
        )
    });
    assert!(hit, "no kernel-scan telemetry in {:?}", report.events);
    // The physical plan labels the scan with the kernel it used.
    assert!(
        report.operator_tree.contains("where [kernel=dict-domain]"),
        "{}",
        report.operator_tree
    );
}

/// A frame-of-reference column whose envelope only partially overlaps
/// the predicate: no kernel can decide it, so the scan must record the
/// fallback decision and report zero skipped rows.
#[test]
fn kernel_scan_telemetry_on_ineligible_predicate_falls_back() {
    let vals: Vec<i64> = (0..8_000).map(|i| i % 64).collect();
    let mut s = EncodedStream::new_frame(Width::W8, true, 0, 6);
    for c in vals.chunks(BLOCK_SIZE) {
        s.append_block(c).unwrap();
    }
    let t = Arc::new(Table::new(
        "kf_t",
        vec![Column::scalar("kf_v", DataType::Integer, s)],
    ));
    let report = Query::scan(&t)
        .filter(Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(30)))
        .explain_analyze();
    assert_eq!(
        report.row_count,
        vals.iter().filter(|&&v| v > 30).count() as u64
    );
    assert!(
        report.events.iter().any(|e| matches!(
            e,
            Event::Decision { point, choice, reason }
                if *point == "kernel-pushdown"
                    && choice == "fallback"
                    && reason.contains("kf_v")
        )),
        "no fallback decision in {:?}",
        report.events
    );
    let fell_back = report.kernel_scans().into_iter().any(|e| {
        matches!(
            e,
            Event::KernelScan { column, kernel, rows_skipped, .. }
                if column == "kf_v" && kernel == "fallback" && *rows_skipped == 0
        )
    });
    assert!(fell_back, "no fallback kernel-scan in {:?}", report.events);
}

/// A grand total over a run-length column routes through RunAggregate
/// (per-run folding) and records the tactical decision.
#[test]
fn run_aggregate_decision_is_recorded() {
    let mut s = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W8);
    let data: Vec<i64> = (0..30_000).map(|i| i / 3_000).collect();
    for c in data.chunks(BLOCK_SIZE) {
        s.append_block(c).unwrap();
    }
    let t = Arc::new(Table::new(
        "kr_t",
        vec![Column::scalar("kr_v", DataType::Integer, s)],
    ));
    let report = Query::scan_columns(&t, &["kr_v"])
        .filter(Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(5)))
        .aggregate(
            vec![],
            vec![(AggFunc::Count, 0, "n"), (AggFunc::Sum, 0, "s")],
        )
        .with_optimizer(tde::plan::strategic::OptimizerOptions {
            invisible_joins: false,
            index_tables: false,
            ordered_retrieval: false,
            kernel_pushdown: true,
            parallelism: 1,
        })
        .explain_analyze();
    assert_eq!(report.row_count, 1);
    assert_eq!(report.blocks[0].columns[0][0], 15_000); // COUNT(v >= 5)
    assert!(
        report.events.iter().any(|e| matches!(
            e,
            Event::Decision { point, choice, .. }
                if *point == "aggregate" && choice == "rle-run-aggregate"
        )),
        "no run-aggregate decision in {:?}",
        report.events
    );
    assert!(
        report.operator_tree.contains("RunAggregate"),
        "{}",
        report.operator_tree
    );
}

//! Acceptance tests for the paged storage engine: a query projecting 2
//! of N columns from a v2 file loads only those columns' segments, and a
//! repeated scan under sufficient budget runs entirely from the buffer
//! pool.

use tde::exec::expr::{AggFunc, CmpOp, Expr};
use tde::pager::{save_v2, PagedDatabase, PoolConfig};
use tde::storage::{ColumnBuilder, Database, EncodingPolicy, Table};
use tde::types::DataType;
use tde::Query;

/// A 50-column table: 49 integer columns plus one string column.
fn wide_db(rows: i64) -> Database {
    let mut columns = Vec::new();
    for c in 0..49 {
        let name = format!("c{c}");
        let mut b = ColumnBuilder::new(&name, DataType::Integer, EncodingPolicy::default());
        for i in 0..rows {
            b.append_i64((i * (c + 3)) % 1000);
        }
        columns.push(b.finish().column);
    }
    let mut s = ColumnBuilder::new("city", DataType::Str, EncodingPolicy::default());
    for i in 0..rows {
        s.append_str(Some(["lyon", "oslo", "kyiv", "lima"][i as usize % 4]));
    }
    columns.push(s.finish().column);
    let mut db = Database::new();
    db.add_table(Table::new("wide", columns));
    db
}

fn save_wide(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tde_paged_acceptance");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    save_v2(&wide_db(5000), &path).unwrap();
    path
}

#[test]
fn projection_of_two_columns_loads_only_their_segments() {
    let path = save_wide("proj.tde2");
    let db = PagedDatabase::open(&path).unwrap();
    let t = db.table("wide").unwrap();
    assert_eq!(t.column_names().len(), 50);

    // Opening read only the directory: nothing cached yet.
    let cold = db.cache_snapshot();
    assert_eq!(cold.misses, 0);
    assert_eq!(cold.bytes_cached, 0);

    // Query 2 of 50 columns.
    let rows = Query::scan_paged_columns(&t, &["city", "c7"])
        .filter(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(500)))
        .rows();
    assert_eq!(rows.len(), 2500);

    // Exactly three segments loaded: c7 stream, city stream, city heap.
    // The other 48 columns never left the disk.
    let after = db.cache_snapshot();
    assert_eq!(
        after.misses, 3,
        "expected only the projected columns' segments: {after:?}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn repeated_scan_under_budget_is_all_hits() {
    let path = save_wide("warm.tde2");
    let db = PagedDatabase::open(&path).unwrap();
    let t = db.table("wide").unwrap();

    let agg = |t: &tde::pager::PagedTable| {
        Query::scan_paged_columns(t, &["city", "c3"])
            .aggregate(vec![0], vec![(AggFunc::Sum, 1, "s")])
            .rows()
    };
    let first = agg(&t);
    let cold = db.cache_snapshot();
    assert!(cold.misses > 0);

    let second = agg(&t);
    let warm = db.cache_snapshot();
    assert_eq!(first, second);
    assert_eq!(
        warm.misses, cold.misses,
        "second pass must be served entirely from the pool"
    );
    assert!(warm.hits > cold.hits);
    assert_eq!(warm.evictions, 0, "default budget fits two columns");
    std::fs::remove_file(&path).ok();
}

#[test]
fn tiny_budget_evicts_but_stays_correct() {
    let path = save_wide("tiny.tde2");
    let db = PagedDatabase::open_with(
        &path,
        PoolConfig {
            budget_bytes: 4096,
            shards: 2,
        },
    )
    .unwrap();
    let t = db.table("wide").unwrap();

    // Touch many columns under a budget far too small to hold them.
    for c in 0..20 {
        let name = format!("c{c}");
        let col = t.column(&name).unwrap();
        assert_eq!(col.name, name);
    }
    let snap = db.cache_snapshot();
    assert!(snap.evictions > 0, "tiny budget must evict: {snap:?}");

    // Values stay correct after eviction and reload.
    let rows = Query::scan_paged_columns(&t, &["c0"]).rows();
    assert_eq!(rows.len(), 5000);
    std::fs::remove_file(&path).ok();
}

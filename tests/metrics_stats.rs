//! Always-on metrics, end to end: run real queries through `Query`,
//! watch the global registry move, capture span records, and check that
//! both `tde-stats` export formats round-trip through strict parsers
//! (the text exposition through the Prometheus validator, the JSON
//! through `minijson`).
//!
//! Everything here observes *process-wide* state — the registry and the
//! span sink are global, and the test harness runs tests on several
//! threads — so assertions are `>=` on deltas and spans are matched by
//! plan digest or row count, never by absolute totals.

use std::sync::{Arc, Mutex, OnceLock};

use tde::exec::expr::{AggFunc, CmpOp, Expr};
use tde::obs::{metrics, span};
use tde::storage::{ColumnBuilder, EncodingPolicy, Table};
use tde::types::DataType;
use tde::Query;

/// `set_span_sink` swaps a process global; serialize the tests that use it.
fn sink_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// 20k rows: a sorted 10-value key (RLE territory) plus a payload.
fn demo_table() -> Arc<Table> {
    let mut k = ColumnBuilder::new("k", DataType::Integer, EncodingPolicy::default());
    let mut v = ColumnBuilder::new("v", DataType::Integer, EncodingPolicy::default());
    for i in 0..20_000i64 {
        k.append_i64(i / 2_000);
        v.append_i64((i * 13) % 500);
    }
    Arc::new(Table::new(
        "demo",
        vec![k.finish().column, v.finish().column],
    ))
}

fn histogram_count(snap: &metrics::MetricsSnapshot, name: &str) -> u64 {
    snap.samples
        .iter()
        .filter(|s| s.name == name)
        .map(|s| match &s.value {
            metrics::SampleValue::Histogram(h) => h.count,
            _ => 0,
        })
        .sum()
}

#[test]
fn queries_move_the_global_registry() {
    if !metrics::enabled() {
        return; // TDE_METRICS=0: the contract is "no samples", tested in tde-obs
    }
    let t = demo_table();
    let before = metrics::global().snapshot();

    let all = Query::scan(&t).rows();
    assert_eq!(all.len(), 20_000);
    let filtered = Query::scan(&t)
        .filter(Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(8)))
        .rows();
    assert_eq!(filtered.len(), 4_000);
    let grouped = Query::scan(&t)
        .aggregate(vec![0], vec![(AggFunc::Sum, 1, "total")])
        .rows();
    assert_eq!(grouped.len(), 10);

    let after = metrics::global().snapshot();
    let deltas = after.counter_deltas(&before);
    let delta = |name: &str| -> u64 {
        deltas
            .iter()
            .filter(|(k, _)| k.starts_with(name))
            .map(|(_, v)| *v)
            .sum()
    };

    assert!(delta("tde_queries_total") >= 3, "three queries ran");
    assert!(
        delta("tde_query_rows_total") >= 24_010,
        "row counter should cover all three result sets"
    );
    assert!(
        delta("tde_operator_blocks_total") >= 1,
        "metered operators should count blocks"
    );
    assert!(
        delta("tde_operator_rows_total") >= 20_000,
        "metered operators should count rows"
    );
    assert!(
        delta("tde_tactical_decisions_total") >= 1,
        "the aggregate strategy choice is a tactical decision"
    );
    // The latency histogram is a histogram, not a counter: check samples.
    assert!(
        histogram_count(&after, "tde_query_latency_ns")
            >= histogram_count(&before, "tde_query_latency_ns") + 3
    );
}

#[test]
fn kernel_pushdown_metrics_have_encoding_labels() {
    if !metrics::enabled() {
        return;
    }
    use tde::plan::strategic::OptimizerOptions;
    let t = demo_table();
    let before = metrics::global().snapshot();
    // Pin the optimizer off the index path: an Eq on a sorted key would
    // otherwise lower to IndexedScan and never exercise the kernels.
    let n = Query::scan(&t)
        .filter(Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(3)))
        .with_optimizer(OptimizerOptions {
            index_tables: false,
            ordered_retrieval: false,
            ..Default::default()
        })
        .rows()
        .len();
    assert_eq!(n, 2_000);
    let after = metrics::global().snapshot();
    let deltas = after.counter_deltas(&before);
    assert!(
        deltas
            .iter()
            .any(|(k, v)| k.starts_with("tde_kernel_pushdown_total") && *v > 0),
        "a pushed predicate should record a kernel pushdown; got {deltas:?}"
    );
    assert!(
        deltas
            .iter()
            .any(|(k, v)| k.starts_with("tde_kernel_rows_in_total") && *v > 0),
        "kernel scan row accounting missing; got {deltas:?}"
    );
}

#[test]
fn paged_scans_record_pool_and_segment_metrics() {
    if !metrics::enabled() {
        return;
    }
    use tde::pager::{save_v2, PagedDatabase};
    use tde::storage::Database;

    let dir = std::env::temp_dir().join(format!("tde_metrics_stats_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("demo.tde2");
    {
        let t = demo_table();
        let mut db = Database::new();
        db.add_table(Arc::try_unwrap(t).unwrap_or_else(|a| (*a).clone()));
        save_v2(&db, &path).unwrap();
    }

    let before = metrics::global().snapshot();
    let db = PagedDatabase::open(&path).unwrap();
    let t = db.table("demo").unwrap();
    let n = Query::scan_paged_columns(&t, &["k", "v"])
        .aggregate(vec![0], vec![(AggFunc::Sum, 1, "s")])
        .rows()
        .len();
    assert_eq!(n, 10);
    let after = metrics::global().snapshot();
    let deltas = after.counter_deltas(&before);
    let delta = |name: &str| -> u64 {
        deltas
            .iter()
            .filter(|(k, _)| k.starts_with(name))
            .map(|(_, v)| *v)
            .sum()
    };
    assert!(
        delta("tde_pool_misses_total") >= 2,
        "cold open loads segments"
    );
    assert!(delta("tde_pool_read_bytes_total") > 0);
    assert!(
        histogram_count(&after, "tde_segment_load_ns")
            > histogram_count(&before, "tde_segment_load_ns"),
        "segment loads should be timed"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spans_capture_phases_and_counter_deltas() {
    let _guard = sink_lock().lock().unwrap();
    let sink = span::MemorySink::new();
    let prev = span::set_span_sink(Some(sink.clone()));

    let t = demo_table();
    let rows = Query::scan(&t)
        .filter(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(2)))
        .rows();
    assert_eq!(rows.len(), 4_000);

    let spans = sink.spans();
    span::set_span_sink(prev);

    let ours: Vec<_> = spans.iter().filter(|s| s.rows_out == 4_000).collect();
    assert!(!ours.is_empty(), "the query should have emitted a span");
    let s = ours.last().unwrap();
    assert_eq!(s.plan_digest.len(), 16, "digest is 16 hex chars");
    assert!(s.plan_digest.chars().all(|c| c.is_ascii_hexdigit()));
    assert!(s.elapsed_ns > 0);
    let phase_names: Vec<&str> = s.phases.iter().map(|(n, _)| *n).collect();
    assert_eq!(phase_names, ["plan", "execute"]);
    assert!(
        s.phases.iter().map(|(_, ns)| ns).sum::<u64>() <= s.elapsed_ns,
        "phases partition the elapsed time"
    );
    if metrics::enabled() {
        assert!(
            s.counters
                .iter()
                .any(|(k, v)| k.starts_with("tde_queries_total") && *v >= 1),
            "span counters should include the query counter; got {:?}",
            s.counters
        );
    }
    // Identical query shape → identical digest.
    let sink2 = span::MemorySink::new();
    let prev = span::set_span_sink(Some(sink2.clone()));
    let _ = Query::scan(&t)
        .filter(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(2)))
        .rows();
    span::set_span_sink(prev);
    let again = sink2.spans();
    let repeat = again.iter().rfind(|x| x.rows_out == 4_000);
    assert_eq!(repeat.unwrap().plan_digest, s.plan_digest);

    // And the JSON rendering of every span parses.
    for sp in spans.iter().chain(again.iter()) {
        let parsed = tde_stats::minijson::parse(&sp.to_json()).expect("span JSON parses");
        assert_eq!(
            parsed.get("query_id").and_then(|v| v.as_u64()),
            Some(sp.query_id)
        );
    }
}

#[test]
fn span_json_lines_sink_writes_parseable_lines() {
    let _guard = sink_lock().lock().unwrap();
    let dir = std::env::temp_dir().join(format!("tde_span_lines_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("spans.jsonl");
    let sink = span::JsonLinesSink::append_to(&path).unwrap();
    let prev = span::set_span_sink(Some(sink));

    let t = demo_table();
    let _ = Query::scan(&t).rows();
    let _ = Query::scan(&t)
        .aggregate(vec![], vec![(AggFunc::Count, 0, "n")])
        .rows();
    span::set_span_sink(prev);

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert!(lines.len() >= 2, "two queries → at least two span lines");
    for line in lines {
        let v = tde_stats::minijson::parse(line).expect("each line is a JSON object");
        assert!(v.get("plan_digest").is_some());
        assert!(v.get("phases").is_some());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance criterion: both export formats must parse under
/// strict validators after real queries have populated the registry.
#[test]
fn exports_parse_as_prometheus_and_json() {
    let t = demo_table();
    let _ = Query::scan(&t)
        .filter(Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(5)))
        .aggregate(vec![0], vec![(AggFunc::Max, 1, "mx")])
        .rows();

    let text = tde_stats::prometheus_text();
    let scrape = tde_stats::prometheus::validate(&text).expect("text exposition validates");
    let json = tde_stats::json_text();
    let parsed = tde_stats::minijson::parse(&json).expect("JSON export parses");

    if metrics::enabled() {
        assert!(
            scrape.value("tde_queries_total", &[]).unwrap_or(0.0) >= 1.0,
            "scrape should carry the query counter"
        );
        let metrics_arr = parsed
            .get("metrics")
            .and_then(|v| v.as_array())
            .expect("json export has a metrics array");
        assert!(metrics_arr
            .iter()
            .any(|m| m.get("name").and_then(|n| n.as_str()) == Some("tde_queries_total")));
        // Both exports come from snapshots of the same registry; the
        // histogram family must appear in both.
        assert!(text.contains("tde_query_latency_ns_bucket"));
        assert!(metrics_arr
            .iter()
            .any(|m| m.get("name").and_then(|n| n.as_str()) == Some("tde_query_latency_ns")));
    } else {
        assert!(
            scrape.samples.is_empty(),
            "disabled registry exports nothing"
        );
    }
}

#[test]
fn explain_analyze_still_reports_while_metrics_run() {
    // The per-query `explain_analyze` path and the always-on registry
    // are independent observers; running one must not starve the other.
    let t = demo_table();
    let before = metrics::global().snapshot();
    let report = Query::scan(&t)
        .filter(Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(4)))
        .explain_analyze();
    assert!(report.row_count > 0);
    if metrics::enabled() {
        let after = metrics::global().snapshot();
        let d: u64 = after
            .counter_deltas(&before)
            .iter()
            .filter(|(k, _)| k.starts_with("tde_queries_total"))
            .map(|(_, v)| *v)
            .sum();
        assert!(d >= 1, "explain_analyze counts as a query");
    }
}

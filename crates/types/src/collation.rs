//! String collation.
//!
//! Unlike many column stores that only offer binary collation, the TDE must
//! implement locale-sensitive collations (paper §2.3.4), which makes string
//! comparison and hashing expensive — and makes *sorted heaps with directly
//! comparable tokens* so valuable (§3.4.3). We model two collations: plain
//! binary, and a case/whitespace-folding collation standing in for a real
//! locale. The folding collation is deliberately implemented as a per-call
//! key transformation so that its cost relative to integer token comparison
//! is realistic.

/// A string collation: an ordering plus a compatible hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Collation {
    /// Plain byte-wise comparison.
    #[default]
    Binary,
    /// A locale-like collation: case-insensitive, treating runs of
    /// whitespace as single spaces. Stands in for ICU-style collation.
    CaseFold,
}

impl Collation {
    /// Compare two strings under this collation.
    pub fn compare(self, a: &str, b: &str) -> std::cmp::Ordering {
        match self {
            Collation::Binary => a.as_bytes().cmp(b.as_bytes()),
            Collation::CaseFold => {
                let mut ia = FoldChars::new(a);
                let mut ib = FoldChars::new(b);
                loop {
                    match (ia.next(), ib.next()) {
                        (None, None) => return std::cmp::Ordering::Equal,
                        (None, Some(_)) => return std::cmp::Ordering::Less,
                        (Some(_), None) => return std::cmp::Ordering::Greater,
                        (Some(x), Some(y)) => match x.cmp(&y) {
                            std::cmp::Ordering::Equal => continue,
                            other => return other,
                        },
                    }
                }
            }
        }
    }

    /// Whether two strings are equal under this collation.
    pub fn equals(self, a: &str, b: &str) -> bool {
        self.compare(a, b) == std::cmp::Ordering::Equal
    }

    /// Hash a string consistently with [`Collation::compare`]: strings that
    /// compare equal hash equal. FNV-1a over the folded characters.
    pub fn hash(self, s: &str) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        match self {
            Collation::Binary => {
                for &b in s.as_bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(PRIME);
                }
            }
            Collation::CaseFold => {
                for c in FoldChars::new(s) {
                    let mut buf = [0u8; 4];
                    for &b in c.encode_utf8(&mut buf).as_bytes() {
                        h ^= u64::from(b);
                        h = h.wrapping_mul(PRIME);
                    }
                }
            }
        }
        h
    }
}

/// Iterator producing the folded character stream for [`Collation::CaseFold`]:
/// lowercased, with whitespace runs collapsed to single spaces and leading or
/// trailing whitespace dropped.
struct FoldChars<'a> {
    inner: std::str::Chars<'a>,
    pending: Option<char>,
    emitted_any: bool,
    space_pending: bool,
}

impl<'a> FoldChars<'a> {
    fn new(s: &'a str) -> Self {
        FoldChars {
            inner: s.chars(),
            pending: None,
            emitted_any: false,
            space_pending: false,
        }
    }
}

impl Iterator for FoldChars<'_> {
    type Item = char;

    fn next(&mut self) -> Option<char> {
        if let Some(c) = self.pending.take() {
            return Some(c);
        }
        loop {
            match self.inner.next() {
                None => return None,
                Some(c) if c.is_whitespace() => {
                    if self.emitted_any {
                        self.space_pending = true;
                    }
                }
                Some(c) => {
                    let mut lower = c.to_lowercase();
                    let first = lower.next().unwrap_or(c);
                    // Only single-char lowercase expansions get folded fully;
                    // multi-char expansions keep the first char (good enough
                    // for a locale stand-in, and total order is preserved).
                    self.pending = lower.next();
                    self.emitted_any = true;
                    if self.space_pending {
                        self.space_pending = false;
                        let old = self.pending.replace(first);
                        debug_assert!(old.is_none() || self.pending.is_some());
                        return Some(' ');
                    }
                    return Some(first);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn binary_orders_bytes() {
        assert_eq!(Collation::Binary.compare("abc", "abd"), Ordering::Less);
        assert_eq!(Collation::Binary.compare("B", "a"), Ordering::Less); // 'B' < 'a'
        assert!(Collation::Binary.equals("x", "x"));
        assert!(!Collation::Binary.equals("x", "X"));
    }

    #[test]
    fn casefold_ignores_case() {
        assert!(Collation::CaseFold.equals("Hello", "hELLO"));
        assert_eq!(Collation::CaseFold.compare("B", "a"), Ordering::Greater);
    }

    #[test]
    fn casefold_collapses_whitespace() {
        assert!(Collation::CaseFold.equals("a  b", "A b"));
        assert!(Collation::CaseFold.equals("  a b  ", "a B"));
        assert!(!Collation::CaseFold.equals("ab", "a b"));
    }

    #[test]
    fn hash_consistent_with_equality() {
        let pairs = [
            ("Hello World", "hello   world"),
            ("FOO", "foo"),
            ("", "   "),
        ];
        for (a, b) in pairs {
            assert!(Collation::CaseFold.equals(a, b), "{a:?} vs {b:?}");
            assert_eq!(Collation::CaseFold.hash(a), Collation::CaseFold.hash(b));
        }
    }

    #[test]
    fn hash_differs_for_different_strings() {
        assert_ne!(Collation::Binary.hash("abc"), Collation::Binary.hash("abd"));
        assert_ne!(
            Collation::CaseFold.hash("abc"),
            Collation::CaseFold.hash("abd")
        );
    }

    #[test]
    fn total_order_properties() {
        let words = ["", "a", "A b", "ab", "Zeta", "  zeta  ", "m n o"];
        for x in words {
            assert_eq!(Collation::CaseFold.compare(x, x), Ordering::Equal);
            for y in words {
                let xy = Collation::CaseFold.compare(x, y);
                let yx = Collation::CaseFold.compare(y, x);
                assert_eq!(xy, yx.reverse());
            }
        }
    }
}

//! Scalar values crossing the engine boundary (constants in expressions,
//! query results, dictionary entries).

use crate::datetime::{days_from_ymd, ymd_from_days, MICROS_PER_DAY};
use crate::sentinel::{is_null_real, null_real, NULL_I64};
use crate::DataType;

/// A single scalar value of one of Tableau's six logical types.
///
/// Inside columns, values live as raw widened integers/doubles; `Value` is
/// the boxed form used at the edges (expression constants, result rows,
/// import parsing).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL of any type.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// IEEE double.
    Real(f64),
    /// Date: days since 1970-01-01.
    Date(i64),
    /// Timestamp: microseconds since the epoch.
    Timestamp(i64),
    /// String.
    Str(String),
}

impl Value {
    /// The logical type, or `None` for NULL (NULL is typeless until bound
    /// to a column).
    pub fn data_type(&self) -> Option<DataType> {
        Some(match self {
            Value::Null => return None,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Integer,
            Value::Real(_) => DataType::Real,
            Value::Date(_) => DataType::Date,
            Value::Timestamp(_) => DataType::Timestamp,
            Value::Str(_) => DataType::Str,
        })
    }

    /// True for `Value::Null` and for the in-band sentinel encodings.
    pub fn is_null(&self) -> bool {
        match self {
            Value::Null => true,
            Value::Int(v) | Value::Date(v) | Value::Timestamp(v) => *v == NULL_I64,
            Value::Real(v) => is_null_real(*v),
            _ => false,
        }
    }

    /// The logical integral representation used in column storage, if this
    /// value has one (everything except `Real` and `Str`).
    pub fn as_i64(&self) -> Option<i64> {
        Some(match self {
            Value::Null => NULL_I64,
            Value::Bool(b) => i64::from(*b),
            Value::Int(v) | Value::Date(v) | Value::Timestamp(v) => *v,
            _ => return None,
        })
    }

    /// The floating-point representation, converting integers.
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self {
            Value::Null => null_real(),
            Value::Int(v) => *v as f64,
            Value::Real(v) => *v,
            _ => return None,
        })
    }

    /// Reconstruct a value of `dtype` from its stored integral form.
    pub fn from_i64(dtype: DataType, raw: i64) -> Value {
        if raw == NULL_I64 {
            return Value::Null;
        }
        match dtype {
            DataType::Bool => Value::Bool(raw != 0),
            DataType::Integer => Value::Int(raw),
            DataType::Date => Value::Date(raw),
            DataType::Timestamp => Value::Timestamp(raw),
            DataType::Real | DataType::Str => {
                panic!("from_i64 called for non-integral type {dtype}")
            }
        }
    }

    /// Convenience constructor for dates.
    pub fn date(y: i32, m: u32, d: u32) -> Value {
        Value::Date(days_from_ymd(y, m, d))
    }

    /// Convenience constructor for timestamps at midnight.
    pub fn timestamp_midnight(y: i32, m: u32, d: u32) -> Value {
        Value::Timestamp(days_from_ymd(y, m, d) * MICROS_PER_DAY)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => {
                if is_null_real(*v) {
                    f.write_str("NULL")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Date(d) => {
                if *d == NULL_I64 {
                    return f.write_str("NULL");
                }
                let (y, m, dd) = ymd_from_days(*d);
                write!(f, "{y:04}-{m:02}-{dd:02}")
            }
            Value::Timestamp(us) => {
                if *us == NULL_I64 {
                    return f.write_str("NULL");
                }
                let days = us.div_euclid(MICROS_PER_DAY);
                let rem = us.rem_euclid(MICROS_PER_DAY);
                let (y, m, dd) = ymd_from_days(days);
                let secs = rem / 1_000_000;
                let (h, mi, s) = (secs / 3600, (secs / 60) % 60, secs % 60);
                write!(f, "{y:04}-{m:02}-{dd:02} {h:02}:{mi:02}:{s:02}")
            }
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Real(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_detection() {
        assert!(Value::Null.is_null());
        assert!(Value::Int(NULL_I64).is_null());
        assert!(Value::Real(null_real()).is_null());
        assert!(!Value::Int(0).is_null());
        assert!(!Value::Real(f64::NAN).is_null()); // plain NaN is not NULL
    }

    #[test]
    fn i64_roundtrip() {
        for v in [Value::Bool(true), Value::Int(-5), Value::date(1995, 7, 14)] {
            let raw = v.as_i64().unwrap();
            let dt = v.data_type().unwrap();
            assert_eq!(Value::from_i64(dt, raw), v);
        }
        assert_eq!(Value::from_i64(DataType::Integer, NULL_I64), Value::Null);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::date(1998, 12, 1).to_string(), "1998-12-01");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(
            Value::timestamp_midnight(2001, 2, 3).to_string(),
            "2001-02-03 00:00:00"
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::Int(2).as_f64(), Some(2.0));
    }
}

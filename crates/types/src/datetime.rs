//! Calendar arithmetic for `Date` and `Timestamp` columns.
//!
//! Dates are stored as days since 1970-01-01 and timestamps as microseconds
//! since the epoch. The conversions use Howard Hinnant's branchless civil
//! calendar algorithms, which are exact over the full `i32` day range.
//!
//! Date roll-ups (e.g. truncating to month start, paper §8) and part
//! extraction (e.g. the expensive month calculation §3.4.3 pushes onto the
//! dictionary) live here so the expression library and the IndexTable
//! roll-up share one implementation.

/// Microseconds per day.
pub const MICROS_PER_DAY: i64 = 86_400_000_000;

/// Days since 1970-01-01 for a civil (proleptic Gregorian) date.
pub fn days_from_ymd(y: i32, m: u32, d: u32) -> i64 {
    debug_assert!((1..=12).contains(&m));
    debug_assert!((1..=31).contains(&d));
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // [0, 11], Mar = 0
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil (year, month, day) for a days-since-epoch value.
pub fn ymd_from_days(days: i64) -> (i32, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// Extract the year of a date (days since epoch).
#[inline]
pub fn year_of(days: i64) -> i64 {
    i64::from(ymd_from_days(days).0)
}

/// Extract the month (1–12) of a date (days since epoch).
#[inline]
pub fn month_of(days: i64) -> i64 {
    i64::from(ymd_from_days(days).1)
}

/// Extract the day of month (1–31) of a date (days since epoch).
#[inline]
pub fn day_of(days: i64) -> i64 {
    i64::from(ymd_from_days(days).2)
}

/// Roll a date down to the first day of its month — the order-preserving
/// roll-up calculation the paper proposes applying to an IndexTable (§8).
pub fn trunc_to_month(days: i64) -> i64 {
    let (y, m, _) = ymd_from_days(days);
    days_from_ymd(y, m, 1)
}

/// Roll a date down to the first day of its year.
pub fn trunc_to_year(days: i64) -> i64 {
    let (y, _, _) = ymd_from_days(days);
    days_from_ymd(y, 1, 1)
}

/// Roll a timestamp (micros since epoch) down to the start of its hour.
pub fn trunc_to_hour(micros: i64) -> i64 {
    micros.div_euclid(3_600_000_000) * 3_600_000_000
}

/// Roll a timestamp down to the start of its day.
pub fn trunc_to_day(micros: i64) -> i64 {
    micros.div_euclid(MICROS_PER_DAY) * MICROS_PER_DAY
}

/// Day of week, 0 = Monday … 6 = Sunday (ISO).
pub fn weekday(days: i64) -> u32 {
    (days + 3).rem_euclid(7) as u32
}

/// Number of days in a given month of a given year.
pub fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => unreachable!("invalid month {m}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_ymd(1970, 1, 1), 0);
        assert_eq!(ymd_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        assert_eq!(days_from_ymd(2000, 3, 1), 11_017);
        assert_eq!(days_from_ymd(1969, 12, 31), -1);
        assert_eq!(ymd_from_days(days_from_ymd(1992, 2, 29)), (1992, 2, 29));
        // TPC-H date range endpoints.
        assert_eq!(ymd_from_days(days_from_ymd(1992, 1, 1)), (1992, 1, 1));
        assert_eq!(ymd_from_days(days_from_ymd(1998, 12, 31)), (1998, 12, 31));
    }

    #[test]
    fn roundtrip_range() {
        // Exhaustive roundtrip over ~60 years around the epoch.
        for days in -11_000..11_000 {
            let (y, m, d) = ymd_from_days(days);
            assert_eq!(days_from_ymd(y, m, d), days, "day {days}");
            assert!((1..=12).contains(&m));
            assert!(d >= 1 && d <= days_in_month(y, m));
        }
    }

    #[test]
    fn month_extraction_and_truncation() {
        let d = days_from_ymd(1995, 7, 14);
        assert_eq!(year_of(d), 1995);
        assert_eq!(month_of(d), 7);
        assert_eq!(day_of(d), 14);
        assert_eq!(trunc_to_month(d), days_from_ymd(1995, 7, 1));
        assert_eq!(trunc_to_year(d), days_from_ymd(1995, 1, 1));
    }

    #[test]
    fn truncation_is_monotone() {
        // Order preservation is what makes roll-up safe on an IndexTable.
        let mut prev = i64::MIN;
        for days in 0..2000 {
            let t = trunc_to_month(days);
            assert!(t >= prev);
            assert!(t <= days);
            prev = t;
        }
    }

    #[test]
    fn timestamp_truncation() {
        let micros = 3 * MICROS_PER_DAY + 5 * 3_600_000_000 + 42;
        assert_eq!(trunc_to_day(micros), 3 * MICROS_PER_DAY);
        assert_eq!(
            trunc_to_hour(micros),
            3 * MICROS_PER_DAY + 5 * 3_600_000_000
        );
        // Negative timestamps truncate toward -inf, not toward zero.
        assert_eq!(trunc_to_day(-1), -MICROS_PER_DAY);
    }

    #[test]
    fn weekday_known() {
        assert_eq!(weekday(days_from_ymd(1970, 1, 1)), 3); // Thursday
        assert_eq!(weekday(days_from_ymd(2024, 1, 1)), 0); // Monday
    }
}

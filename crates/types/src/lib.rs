//! Core type system for the TDE reproduction.
//!
//! Tableau models data types loosely: only Boolean, integer, real, date,
//! timestamp and locale-sensitive string types exist (paper §2.3.4). The
//! engine is therefore free to choose any physical representation for a
//! column, which this crate captures with the separation between
//! [`DataType`] (logical) and [`Width`] (physical).
//!
//! NULL is represented with per-width *sentinel values* (paper §3.4.2),
//! which is what lets the metadata extractor derive nullability from the
//! minimum statistic of an encoded column.

pub mod collation;
pub mod datetime;
pub mod sentinel;
pub mod value;
pub mod width;

pub use collation::Collation;
pub use sentinel::{is_null_real, null_sentinel, NULL_REAL_BITS};
pub use value::Value;
pub use width::Width;

/// The logical data types Tableau exposes to the engine (paper §2.3.4).
///
/// The engine can pick any physical representation for each of these; e.g.
/// an `Integer` column may be stored in 1, 2, 4 or 8 bytes depending on its
/// observed domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean, stored as 0/1 with a sentinel for NULL.
    Bool,
    /// Signed integer; logical domain is `i64`.
    Integer,
    /// IEEE double; NULL is a dedicated NaN bit pattern.
    Real,
    /// Calendar date, stored as days since 1970-01-01.
    Date,
    /// Timestamp, stored as microseconds since 1970-01-01T00:00:00.
    Timestamp,
    /// Locale-collated string; column data holds heap tokens.
    Str,
}

impl DataType {
    /// Default physical width when a column of this type is first created,
    /// before any narrowing has been applied (paper §6.5: integers and
    /// tokens are parsed with a default width of 8 bytes).
    pub fn default_width(self) -> Width {
        match self {
            DataType::Bool => Width::W1,
            _ => Width::W8,
        }
    }

    /// Whether the logical values are integers under the hood (everything
    /// except `Real`), i.e. amenable to the integer bit-packing encodings.
    pub fn is_integral(self) -> bool {
        !matches!(self, DataType::Real)
    }

    /// Whether column data holds heap tokens rather than scalar values.
    pub fn is_string(self) -> bool {
        matches!(self, DataType::Str)
    }

    /// Short lowercase name used in plan explain output and file headers.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Bool => "bool",
            DataType::Integer => "int",
            DataType::Real => "real",
            DataType::Date => "date",
            DataType::Timestamp => "timestamp",
            DataType::Str => "str",
        }
    }

    /// Stable one-byte tag used by the single-file database format.
    pub fn tag(self) -> u8 {
        match self {
            DataType::Bool => 0,
            DataType::Integer => 1,
            DataType::Real => 2,
            DataType::Date => 3,
            DataType::Timestamp => 4,
            DataType::Str => 5,
        }
    }

    /// Inverse of [`DataType::tag`].
    pub fn from_tag(tag: u8) -> Option<DataType> {
        Some(match tag {
            0 => DataType::Bool,
            1 => DataType::Integer,
            2 => DataType::Real,
            3 => DataType::Date,
            4 => DataType::Timestamp,
            5 => DataType::Str,
            _ => return None,
        })
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        for dt in [
            DataType::Bool,
            DataType::Integer,
            DataType::Real,
            DataType::Date,
            DataType::Timestamp,
            DataType::Str,
        ] {
            assert_eq!(DataType::from_tag(dt.tag()), Some(dt));
        }
        assert_eq!(DataType::from_tag(17), None);
    }

    #[test]
    fn default_widths() {
        assert_eq!(DataType::Bool.default_width(), Width::W1);
        assert_eq!(DataType::Integer.default_width(), Width::W8);
        assert_eq!(DataType::Str.default_width(), Width::W8);
    }

    #[test]
    fn integral_classification() {
        assert!(DataType::Integer.is_integral());
        assert!(DataType::Date.is_integral());
        assert!(DataType::Str.is_integral()); // tokens are integers
        assert!(!DataType::Real.is_integral());
    }
}

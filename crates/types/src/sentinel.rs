//! Sentinel NULL representation.
//!
//! The TDE uses sentinel values for NULL (paper §3.4.2): the minimum
//! representable value of the column's physical width. This makes
//! nullability derivable from the encoding statistics — if the observed
//! minimum equals the sentinel, the column contains NULLs.

use crate::width::Width;

/// The sentinel for signed integral values of a given width, expressed in
/// the logical `i64` domain.
#[inline]
pub fn null_sentinel(width: Width) -> i64 {
    match width {
        Width::W1 => i8::MIN as i64,
        Width::W2 => i16::MIN as i64,
        Width::W4 => i32::MIN as i64,
        Width::W8 => i64::MIN,
    }
}

/// The logical (8-byte) sentinel, used everywhere inside the engine before
/// a column has been narrowed.
pub const NULL_I64: i64 = i64::MIN;

/// Token 0 is reserved in every string heap for the NULL string, so a token
/// of zero marks a NULL string value.
pub const NULL_TOKEN: u64 = 0;

/// NULL sentinel for `Real` columns: a quiet NaN with a payload that normal
/// computation never produces.
pub const NULL_REAL_BITS: u64 = 0x7FF8_0000_DEAD_BEEF;

/// The NULL real as an `f64`.
#[inline]
pub fn null_real() -> f64 {
    f64::from_bits(NULL_REAL_BITS)
}

/// Check whether an `f64` is the NULL sentinel (bit-exact, since ordinary
/// NaN comparisons cannot distinguish payloads).
#[inline]
pub fn is_null_real(v: f64) -> bool {
    v.to_bits() == NULL_REAL_BITS
}

/// Check whether a logical integral value is the 8-byte sentinel.
#[inline]
pub fn is_null_i64(v: i64) -> bool {
    v == NULL_I64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels_are_width_minima() {
        assert_eq!(null_sentinel(Width::W1), -128);
        assert_eq!(null_sentinel(Width::W2), -32768);
        assert_eq!(null_sentinel(Width::W4), i32::MIN as i64);
        assert_eq!(null_sentinel(Width::W8), i64::MIN);
    }

    #[test]
    fn null_real_is_nan_but_distinguishable() {
        let n = null_real();
        assert!(n.is_nan());
        assert!(is_null_real(n));
        assert!(!is_null_real(f64::NAN));
        assert!(!is_null_real(0.0));
    }

    #[test]
    fn null_i64_detection() {
        assert!(is_null_i64(NULL_I64));
        assert!(!is_null_i64(0));
        assert!(!is_null_i64(i64::MIN + 1));
    }
}

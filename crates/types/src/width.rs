//! Physical widths for fixed-width column data.
//!
//! Minimising data width is an explicit physical design goal of the TDE
//! (paper §2.3.4): 1–2 byte keys allow direct hashing with a 64K lookup
//! table, 3–4 byte keys admit a perfect hash, and anything wider needs
//! collision detection. Width is therefore a first-class concept that the
//! narrowing manipulations (§3.4.1) operate on.

/// Physical width of a fixed-width value, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// 1 byte.
    W1,
    /// 2 bytes.
    W2,
    /// 4 bytes.
    W4,
    /// 8 bytes.
    W8,
}

impl Width {
    /// Number of bytes.
    #[inline]
    pub fn bytes(self) -> usize {
        match self {
            Width::W1 => 1,
            Width::W2 => 2,
            Width::W4 => 4,
            Width::W8 => 8,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn bits(self) -> u32 {
        self.bytes() as u32 * 8
    }

    /// Construct from a byte count. Only 1, 2, 4 and 8 are valid.
    pub fn from_bytes(bytes: usize) -> Option<Width> {
        Some(match bytes {
            1 => Width::W1,
            2 => Width::W2,
            4 => Width::W4,
            8 => Width::W8,
            _ => return None,
        })
    }

    /// Smallest width whose *signed* range contains every value in
    /// `[min, max]`, leaving room for the sentinel (the sentinel is the
    /// minimum representable value of the width, so `min` must be strictly
    /// greater than it when `reserve_sentinel` is set).
    pub fn for_signed_range(min: i64, max: i64, reserve_sentinel: bool) -> Width {
        debug_assert!(min <= max);
        let slack = i64::from(reserve_sentinel);
        for w in [Width::W1, Width::W2, Width::W4] {
            let lo = -(1i64 << (w.bits() - 1)) + slack;
            let hi = (1i64 << (w.bits() - 1)) - 1;
            if min >= lo && max <= hi {
                return w;
            }
        }
        Width::W8
    }

    /// Smallest width whose *unsigned* range contains every value in
    /// `[0, max]`. Used for heap tokens and dictionary indexes, which are
    /// unsigned (paper §3.1: packed values are treated as unsigned).
    pub fn for_unsigned_max(max: u64) -> Width {
        if max <= u8::MAX as u64 {
            Width::W1
        } else if max <= u16::MAX as u64 {
            Width::W2
        } else if max <= u32::MAX as u64 {
            Width::W4
        } else {
            Width::W8
        }
    }

    /// The widths in ascending order, useful for histograms (Figs 8 & 9).
    pub const ALL: [Width; 4] = [Width::W1, Width::W2, Width::W4, Width::W8];
}

impl Default for Width {
    /// Columns start at the default width of 8 bytes (paper §6.5).
    fn default() -> Width {
        Width::W8
    }
}

impl std::fmt::Display for Width {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_and_bits() {
        assert_eq!(Width::W1.bytes(), 1);
        assert_eq!(Width::W8.bits(), 64);
        assert_eq!(Width::from_bytes(4), Some(Width::W4));
        assert_eq!(Width::from_bytes(3), None);
    }

    #[test]
    fn signed_range_without_sentinel() {
        assert_eq!(Width::for_signed_range(-128, 127, false), Width::W1);
        assert_eq!(Width::for_signed_range(-129, 0, false), Width::W2);
        assert_eq!(Width::for_signed_range(0, 128, false), Width::W2);
        assert_eq!(Width::for_signed_range(0, 1 << 20, false), Width::W4);
        assert_eq!(
            Width::for_signed_range(i64::MIN, i64::MAX, false),
            Width::W8
        );
    }

    #[test]
    fn signed_range_reserving_sentinel() {
        // -128 is the W1 sentinel, so a column containing it must widen.
        assert_eq!(Width::for_signed_range(-128, 0, true), Width::W2);
        assert_eq!(Width::for_signed_range(-127, 127, true), Width::W1);
    }

    #[test]
    fn unsigned_max() {
        assert_eq!(Width::for_unsigned_max(0), Width::W1);
        assert_eq!(Width::for_unsigned_max(255), Width::W1);
        assert_eq!(Width::for_unsigned_max(256), Width::W2);
        assert_eq!(Width::for_unsigned_max(u64::from(u32::MAX) + 1), Width::W8);
    }

    #[test]
    fn ordering() {
        assert!(Width::W1 < Width::W2);
        assert!(Width::W4 < Width::W8);
    }
}

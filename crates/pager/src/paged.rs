//! Opening and reading a v2 paged database.
//!
//! [`PagedDatabase::open`] reads only the footer and directory — column
//! segments stay on disk until a [`PagedTable::column`] call pulls them
//! through the buffer pool. A query projecting 2 of 50 columns therefore
//! reads 2 columns' segments, not 50; the pool serves repeated scans
//! from memory and its counters prove both properties.

use crate::format::{self, ColumnDir, Extent, TableDir, FOOTER_LEN};
use crate::pool::{BufferPool, CachedSegment, PoolConfig, SegmentKey};
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tde_encodings::EncodedStream;
use tde_io::{read_exact_at, IoFile, StorageIo};
use tde_obs::{CacheCounters, CacheSnapshot, Event};
use tde_storage::wire::{corrupt, validate_stream};
use tde_storage::{Column, Compression, StringHeap, Table};

#[derive(Debug)]
struct Inner {
    file: Box<dyn IoFile>,
    tables: Vec<TableDir>,
    pool: BufferPool,
    path: PathBuf,
}

impl Inner {
    /// Read one segment's bytes and verify them against the directory
    /// checksum before anything downstream decodes them. Transient read
    /// faults are absorbed by [`tde_io::read_exact_at`]'s bounded
    /// retries; a mismatch bumps `tde_segment_checksum_failures_total`
    /// and surfaces as a typed [`tde_io::ChecksumMismatch`] error.
    fn read_segment(&self, e: Extent, segment: &'static str) -> io::Result<Vec<u8>> {
        let mut buf = vec![0u8; e.len as usize];
        read_exact_at(&*self.file, &mut buf, e.offset, segment)?;
        let actual = tde_io::checksum(&buf);
        if actual != e.checksum {
            tde_obs::metrics::checksum_failure(segment);
            return Err(tde_io::checksum_mismatch(segment, e.checksum, actual));
        }
        Ok(buf)
    }
}

/// A database opened lazily from a v2 paged file.
#[derive(Debug, Clone)]
pub struct PagedDatabase {
    inner: Arc<Inner>,
}

/// Is the file at `path` a v2 paged database (by footer magic)?
pub fn is_v2(path: impl AsRef<Path>) -> io::Result<bool> {
    let mut f = File::open(path)?;
    let len = f.metadata()?.len();
    if len < format::HEADER_LEN + FOOTER_LEN {
        return Ok(false);
    }
    let mut magic = [0u8; 4];
    f.seek(SeekFrom::End(-4))?;
    f.read_exact(&mut magic)?;
    Ok(&magic == format::MAGIC)
}

impl PagedDatabase {
    /// Open with the default pool configuration.
    pub fn open(path: impl AsRef<Path>) -> io::Result<PagedDatabase> {
        PagedDatabase::open_with(path, PoolConfig::default())
    }

    /// Open with an explicit buffer-pool configuration. Reads the footer
    /// and directory only.
    pub fn open_with(path: impl AsRef<Path>, cfg: PoolConfig) -> io::Result<PagedDatabase> {
        PagedDatabase::open_with_io(path, cfg, &tde_io::RealIo)
    }

    /// Open through an explicit [`StorageIo`] backend — every read this
    /// database ever performs (open-time footer/directory, demand-loaded
    /// segments, aux payloads) goes through it.
    pub fn open_with_io(
        path: impl AsRef<Path>,
        cfg: PoolConfig,
        storage: &dyn StorageIo,
    ) -> io::Result<PagedDatabase> {
        let path = path.as_ref().to_path_buf();
        let f = storage.open(&path)?;
        let len = f.len()?;
        if len < format::HEADER_LEN + FOOTER_LEN {
            return Err(corrupt("file too small for a v2 paged database"));
        }
        let mut head = [0u8; 4];
        read_exact_at(&*f, &mut head, 0, "header")?;
        if &head == b"TDE1" {
            return Err(corrupt(
                "v1 eager file — open it with tde_storage::Database::load",
            ));
        }
        if &head != format::MAGIC {
            return Err(corrupt("bad magic"));
        }
        let mut footer = [0u8; FOOTER_LEN as usize];
        read_exact_at(&*f, &mut footer, len - FOOTER_LEN, "footer")?;
        let footer = format::read_footer(&footer, len)?;
        let mut dir = vec![0u8; footer.dir_len as usize];
        read_exact_at(&*f, &mut dir, footer.dir_offset, "directory")?;
        let actual = tde_io::checksum(&dir);
        if actual != footer.dir_checksum {
            tde_obs::metrics::checksum_failure("directory");
            return Err(tde_io::checksum_mismatch(
                "directory",
                footer.dir_checksum,
                actual,
            ));
        }
        let tables = format::read_directory(&dir, footer.dir_offset)?;
        Ok(PagedDatabase {
            inner: Arc::new(Inner {
                file: f,
                tables,
                pool: BufferPool::new(cfg),
                path,
            }),
        })
    }

    /// The file this database was opened from.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// Names of the tables in directory order.
    pub fn table_names(&self) -> Vec<&str> {
        self.inner.tables.iter().map(|t| t.name.as_str()).collect()
    }

    /// A lazy handle to a table.
    pub fn table(&self, name: &str) -> Option<PagedTable> {
        let idx = self.inner.tables.iter().position(|t| t.name == name)?;
        Some(PagedTable {
            inner: Arc::clone(&self.inner),
            idx,
        })
    }

    /// Shared cache counters (hits, misses, evictions, bytes).
    pub fn counters(&self) -> Arc<CacheCounters> {
        Arc::clone(self.inner.pool.counters())
    }

    /// Counters plus current occupancy and budget.
    pub fn cache_snapshot(&self) -> CacheSnapshot {
        self.inner.pool.snapshot()
    }
}

/// A lazy handle to one table of a [`PagedDatabase`]. Cloning is cheap;
/// clones share the file, directory and buffer pool.
#[derive(Debug, Clone)]
pub struct PagedTable {
    inner: Arc<Inner>,
    idx: usize,
}

impl PagedTable {
    fn dir(&self) -> &TableDir {
        &self.inner.tables[self.idx]
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.dir().name
    }

    /// Row count (from the directory; no segment I/O).
    pub fn row_count(&self) -> u64 {
        self.dir().rows
    }

    /// Column names in schema order (no segment I/O).
    pub fn column_names(&self) -> Vec<&str> {
        self.dir().columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Directory entry for a column, if present (no segment I/O).
    pub fn column_dir(&self, name: &str) -> Option<&ColumnDir> {
        self.dir().columns.iter().find(|c| c.name == name)
    }

    /// The buffer pool's shared counters (same pool as the database).
    pub fn counters(&self) -> Arc<CacheCounters> {
        Arc::clone(self.inner.pool.counters())
    }

    /// Counters plus current occupancy and budget.
    pub fn cache_snapshot(&self) -> CacheSnapshot {
        self.inner.pool.snapshot()
    }

    /// Does the directory carry a delta-store payload for this table?
    pub fn has_delta(&self) -> bool {
        self.dir().delta.is_some()
    }

    /// Does the directory carry a tombstone payload for this table?
    pub fn has_tombstone(&self) -> bool {
        self.dir().tombstone.is_some()
    }

    /// Raw delta-store payload bytes, if present. Read directly rather
    /// than through the buffer pool: the payload is opaque to the pager
    /// (its wire format belongs to `tde-delta`) and is consumed once at
    /// open time, not re-scanned.
    pub fn delta_bytes(&self) -> io::Result<Option<Vec<u8>>> {
        match self.dir().delta {
            Some(e) => self.inner.read_segment(e, "delta").map(Some),
            None => Ok(None),
        }
    }

    /// Raw tombstone payload bytes, if present (see [`PagedTable::delta_bytes`]).
    pub fn tombstone_bytes(&self) -> io::Result<Option<Vec<u8>>> {
        match self.dir().tombstone {
            Some(e) => self.inner.read_segment(e, "tombstone").map(Some),
            None => Ok(None),
        }
    }

    /// Resolve a column by name, demand-loading its segments through the
    /// buffer pool on first touch.
    pub fn column(&self, name: &str) -> io::Result<Arc<Column>> {
        let pos = self
            .dir()
            .columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no column {name:?} in table {:?}", self.dir().name),
                )
            })?;
        self.column_at(pos)
    }

    /// Resolve a column by schema position.
    pub fn column_at(&self, pos: usize) -> io::Result<Arc<Column>> {
        let table = self.dir();
        let cdir = table.columns.get(pos).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!("column index {pos} out of range in table {:?}", table.name),
            )
        })?;
        let key = SegmentKey::Column {
            table: self.idx as u32,
            col: pos as u32,
        };
        // Fast path: cached.
        if let Some(CachedSegment::Column(c)) = self.inner.pool.try_get(key) {
            return Ok(c);
        }
        // Miss path. A heap column's heap segment is resolved FIRST, as
        // its own pool entry: the column loader below runs under its
        // shard lock, and the shim mutex is not reentrant — touching the
        // pool from inside it could self-deadlock on the same shard.
        let heap = match cdir.heap {
            Some(extent) => Some(self.load_heap(&table.name, &cdir.name, extent)?),
            None => None,
        };
        let seg = self.inner.pool.get_or_load(key, || {
            self.load_column(&table.name, table.rows, cdir, heap)
        })?;
        match seg {
            CachedSegment::Column(c) => Ok(c),
            CachedSegment::Heap(_) => Err(corrupt("segment kind mismatch in pool")),
        }
    }

    /// Materialize the whole table eagerly (back-compat convenience).
    pub fn load_all(&self) -> io::Result<Table> {
        let columns = (0..self.dir().columns.len())
            .map(|i| self.column_at(i).map(|c| (*c).clone()))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Table::new(self.dir().name.clone(), columns))
    }

    fn load_heap(&self, table: &str, column: &str, extent: Extent) -> io::Result<Arc<StringHeap>> {
        let key = SegmentKey::Heap {
            offset: extent.offset,
        };
        if let Some(CachedSegment::Heap(h)) = self.inner.pool.try_get(key) {
            return Ok(h);
        }
        let seg = self.inner.pool.get_or_load(key, || {
            let t0 = (tde_obs::metrics::enabled() || tde_obs::timeline::enabled())
                .then(std::time::Instant::now);
            let bytes = self.inner.read_segment(extent, "heap")?;
            if let Some(t0) = t0 {
                let nanos = t0.elapsed().as_nanos() as u64;
                if tde_obs::metrics::enabled() {
                    tde_obs::metrics::segment_load("heap", extent.len, nanos);
                }
                tde_obs::timeline::segment_load(table, column, "heap", extent.len, nanos);
            }
            tde_obs::emit(|| Event::SegmentLoad {
                table: table.to_string(),
                column: column.to_string(),
                segment: "heap",
                bytes: extent.len,
            });
            Ok((
                CachedSegment::Heap(Arc::new(StringHeap::from_bytes(bytes))),
                extent.len,
            ))
        })?;
        match seg {
            CachedSegment::Heap(h) => Ok(h),
            CachedSegment::Column(_) => Err(corrupt("segment kind mismatch in pool")),
        }
    }

    /// Load and assemble one column (stream + dictionary). Runs under the
    /// column entry's shard lock — must not touch the pool.
    fn load_column(
        &self,
        table: &str,
        rows: u64,
        cdir: &ColumnDir,
        heap: Option<Arc<StringHeap>>,
    ) -> io::Result<(CachedSegment, u64)> {
        let t0 = (tde_obs::metrics::enabled() || tde_obs::timeline::enabled())
            .then(std::time::Instant::now);
        let stream_bytes = self.inner.read_segment(cdir.stream, "stream")?;
        if let Some(t0) = t0 {
            let nanos = t0.elapsed().as_nanos() as u64;
            if tde_obs::metrics::enabled() {
                tde_obs::metrics::segment_load("stream", cdir.stream.len, nanos);
            }
            tde_obs::timeline::segment_load(table, &cdir.name, "stream", cdir.stream.len, nanos);
        }
        validate_stream(&stream_bytes, rows)?;
        tde_obs::emit(|| Event::SegmentLoad {
            table: table.to_string(),
            column: cdir.name.clone(),
            segment: "stream",
            bytes: cdir.stream.len,
        });
        let mut cost = cdir.stream.len;
        let compression = match (cdir.ctag, cdir.dict, heap) {
            (0, _, _) => Compression::None,
            (1, Some(extent), _) => {
                let t0 = (tde_obs::metrics::enabled() || tde_obs::timeline::enabled())
                    .then(std::time::Instant::now);
                let bytes = self.inner.read_segment(extent, "dictionary")?;
                if let Some(t0) = t0 {
                    let nanos = t0.elapsed().as_nanos() as u64;
                    if tde_obs::metrics::enabled() {
                        tde_obs::metrics::segment_load("dictionary", extent.len, nanos);
                    }
                    tde_obs::timeline::segment_load(
                        table,
                        &cdir.name,
                        "dictionary",
                        extent.len,
                        nanos,
                    );
                }
                tde_obs::emit(|| Event::SegmentLoad {
                    table: table.to_string(),
                    column: cdir.name.clone(),
                    segment: "dictionary",
                    bytes: extent.len,
                });
                cost += extent.len;
                let dictionary = bytes
                    .chunks_exact(8)
                    .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                Compression::Array {
                    dictionary,
                    sorted: cdir.sorted,
                }
            }
            (2, _, Some(heap)) => Compression::Heap {
                heap,
                sorted: cdir.sorted,
            },
            _ => return Err(corrupt("directory compression tag without its segment")),
        };
        let column = Column {
            name: cdir.name.clone(),
            dtype: cdir.dtype,
            data: EncodedStream::from_buf(stream_bytes),
            compression,
            metadata: cdir.metadata.clone(),
        };
        Ok((CachedSegment::Column(Arc::new(column)), cost))
    }
}

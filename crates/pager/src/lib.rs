//! Paged storage engine: the v2 block-aligned file format, lazily loaded
//! column segments, and a sharded buffer pool.
//!
//! The v1 single-file format (paper §2.3.3, `tde-storage::file`) is
//! eager: opening a database deserializes every column of every table.
//! That is the right trade for a freshly produced extract streaming off
//! the wire, but wrong for the interactive dashboard case the paper
//! targets — a workbook touches a handful of the columns in a wide
//! extract, and the TDE's memory-mapped design reads only what a query
//! references.
//!
//! This crate reproduces that behaviour in three layers:
//!
//! * [`format`]: the v2 on-disk layout — per-column segments (encoded
//!   stream, scalar dictionary, string heap) at 4 KiB-aligned offsets,
//!   described by a directory that a fixed footer locates. Opening a
//!   database reads footer + directory only.
//! * [`pool`]: a sharded buffer pool with second-chance (clock)
//!   eviction, a configurable byte budget, and `Arc`-based pinning.
//!   Segments are demand-loaded on first touch and repeat scans are
//!   served from memory; hit/miss/eviction counters flow into
//!   [`tde_obs::CacheCounters`].
//! * [`paged`]: [`PagedDatabase`] / [`PagedTable`] — the lazy
//!   counterparts of `tde_storage::Database` / `Table`, handing out
//!   `Arc<Column>`s that the executor scans exactly like eager columns.
//!
//! Both formats stay readable: v1 via `Database::load`, v2 via
//! [`PagedDatabase::open`]; [`paged::is_v2`] sniffs which one a file is.

pub mod format;
pub mod paged;
pub mod pool;

pub use format::{
    save_v2, save_v2_atomic, save_v2_with_aux_atomic, write_v2, write_v2_with_aux, TableAux,
    BLOCK_ALIGN,
};
pub use paged::{is_v2, PagedDatabase, PagedTable};
pub use pool::{BufferPool, PoolConfig, SegmentKey};

#[cfg(test)]
mod tests {
    use super::*;
    use tde_storage::builder::{ColumnBuilder, EncodingPolicy};
    use tde_storage::{Database, Table};
    use tde_types::{DataType, Value};

    fn wide_db(cols: usize, rows: i64) -> Database {
        let mut columns = Vec::new();
        for c in 0..cols {
            let name = format!("c{c}");
            let mut b = ColumnBuilder::new(&name, DataType::Integer, EncodingPolicy::default());
            for i in 0..rows {
                b.append_i64(i % (c as i64 + 2));
            }
            columns.push(b.finish().column);
        }
        let mut names = ColumnBuilder::new("label", DataType::Str, EncodingPolicy::default());
        for i in 0..rows {
            names.append_str(Some(["alpha", "beta", "gamma"][i as usize % 3]));
        }
        columns.push(names.finish().column);
        let mut db = Database::new();
        db.add_table(Table::new("wide", columns));
        db
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tde_pager_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_and_lazy_projection() {
        let db = wide_db(10, 3000);
        let path = tmp("wide.tde2");
        save_v2(&db, &path).unwrap();
        assert!(is_v2(&path).unwrap());

        let paged = PagedDatabase::open(&path).unwrap();
        let t = paged.table("wide").unwrap();
        assert_eq!(t.row_count(), 3000);
        assert_eq!(t.column_names().len(), 11);

        // Open reads directory only: nothing cached, nothing missed.
        let before = paged.cache_snapshot();
        assert_eq!(before.misses, 0);
        assert_eq!(before.bytes_cached, 0);

        // Project 2 of 11 columns: exactly those columns' segments load.
        let c3 = t.column("c3").unwrap();
        let label = t.column("label").unwrap();
        let after = paged.cache_snapshot();
        assert_eq!(after.misses, 3, "c3 stream + label stream + label heap");
        assert!(after.bytes_cached > 0);

        // Values match the eager original.
        let orig = db.table("wide").unwrap();
        for row in (0..3000).step_by(491) {
            assert_eq!(c3.value(row), orig.column("c3").unwrap().value(row));
            assert_eq!(label.value(row), orig.column("label").unwrap().value(row));
        }
        assert_eq!(label.value(1), Value::Str("beta".into()));

        // Second touch: pure hits, zero new misses.
        drop((c3, label));
        t.column("c3").unwrap();
        t.column("label").unwrap();
        let warm = paged.cache_snapshot();
        assert_eq!(warm.misses, after.misses, "second pass must not miss");
        assert!(warm.hits >= 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_all_matches_eager() {
        let db = wide_db(4, 500);
        let path = tmp("all.tde2");
        save_v2(&db, &path).unwrap();
        let paged = PagedDatabase::open(&path).unwrap();
        let t = paged.table("wide").unwrap().load_all().unwrap();
        let orig = db.table("wide").unwrap();
        assert_eq!(t.row_count(), orig.row_count());
        for (a, b) in t.columns.iter().zip(&orig.columns) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.metadata, b.metadata);
            for row in (0..500).step_by(37) {
                assert_eq!(a.value(row), b.value(row));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_file_is_politely_refused() {
        let db = wide_db(2, 100);
        let path = tmp("eager.tde");
        db.save(&path).unwrap();
        assert!(!is_v2(&path).unwrap());
        let err = PagedDatabase::open(&path).unwrap_err();
        assert!(err.to_string().contains("v1"), "got: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_v2_files_error_cleanly() {
        let db = wide_db(3, 200);
        let path = tmp("corrupt.tde2");
        save_v2(&db, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        // Truncations at the footer, mid-directory, and mid-segment.
        for cut in [bytes.len() - 1, bytes.len() - 30, bytes.len() / 2, 17, 4, 0] {
            let p = tmp("cut.tde2");
            std::fs::write(&p, &bytes[..cut]).unwrap();
            assert!(
                PagedDatabase::open(&p).is_err(),
                "truncation at {cut} must fail to open"
            );
        }

        // Corrupt footer directory offset.
        let mut bad = bytes.clone();
        let foot = bad.len() - 24;
        bad[foot..foot + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let p = tmp("badfoot.tde2");
        std::fs::write(&p, &bad).unwrap();
        assert!(PagedDatabase::open(&p).is_err());

        // Flip bytes across the directory: open+scan must never panic.
        let dir_off = u64::from_le_bytes(bytes[foot..foot + 8].try_into().unwrap()) as usize;
        for at in (dir_off..bytes.len() - 24).step_by(7) {
            let mut bad = bytes.clone();
            bad[at] ^= 0xFF;
            let p = tmp("flip.tde2");
            std::fs::write(&p, &bad).unwrap();
            if let Ok(pdb) = PagedDatabase::open(&p) {
                if let Some(t) = pdb.table("wide") {
                    for name in ["c0", "c1", "c2"] {
                        let _ = t.column(name);
                    }
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn segments_are_block_aligned() {
        let db = wide_db(5, 800);
        let path = tmp("aligned.tde2");
        save_v2(&db, &path).unwrap();
        let paged = PagedDatabase::open(&path).unwrap();
        let t = paged.table("wide").unwrap();
        for name in t.column_names() {
            let cd = t.column_dir(name).unwrap();
            assert_eq!(cd.stream.offset % BLOCK_ALIGN, 0);
            if let Some(d) = cd.dict {
                assert_eq!(d.offset % BLOCK_ALIGN, 0);
            }
            if let Some(h) = cd.heap {
                assert_eq!(h.offset % BLOCK_ALIGN, 0);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn aux_sections_roundtrip_and_atomic_save() {
        let db = wide_db(3, 150);
        let mut aux = std::collections::HashMap::new();
        aux.insert(
            "wide".to_string(),
            TableAux {
                delta: Some(b"delta-payload-bytes".to_vec()),
                tombstone: Some(b"tombstone-payload".to_vec()),
            },
        );
        let path = tmp("aux.tde2");
        save_v2_with_aux_atomic(&db, &aux, &path).unwrap();
        let paged = PagedDatabase::open(&path).unwrap();
        let t = paged.table("wide").unwrap();
        assert!(t.has_delta() && t.has_tombstone());
        assert_eq!(t.delta_bytes().unwrap().unwrap(), b"delta-payload-bytes");
        assert_eq!(t.tombstone_bytes().unwrap().unwrap(), b"tombstone-payload");
        // Columns still resolve beside the aux segments.
        t.column("c0").unwrap();

        // Atomic re-save without aux replaces the file in place; no temp
        // files are left behind.
        save_v2_atomic(&db, &path).unwrap();
        let paged = PagedDatabase::open(&path).unwrap();
        let t = paged.table("wide").unwrap();
        assert!(!t.has_delta() && !t.has_tombstone());
        assert_eq!(t.delta_bytes().unwrap(), None);
        let dir = path.parent().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_aux_sections_error_cleanly() {
        let db = wide_db(2, 100);
        let mut aux = std::collections::HashMap::new();
        aux.insert(
            "wide".to_string(),
            TableAux {
                delta: Some(vec![0xAB; 64]),
                tombstone: Some(vec![0xCD; 64]),
            },
        );
        let path = tmp("auxcorrupt.tde2");
        save_v2_with_aux_atomic(&db, &aux, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let foot = bytes.len() - 24;
        let dir_off = u64::from_le_bytes(bytes[foot..foot + 8].try_into().unwrap()) as usize;

        // Locate the aux record in the directory: presence byte followed
        // by two extents, at the very end of the single table's entry.
        let aux_at = bytes.len() - 24 - 1 - 32;
        assert_eq!(bytes[aux_at], 3, "presence byte (delta|tombstone)");

        let write_and_open = |mutated: Vec<u8>| {
            let p = tmp("auxmut.tde2");
            std::fs::write(&p, &mutated).unwrap();
            PagedDatabase::open(&p)
        };

        // Presence byte with undefined bits set.
        let mut bad = bytes.clone();
        bad[aux_at] = 0x7;
        assert!(write_and_open(bad).is_err(), "bad presence bits must fail");

        // Absurd delta extent length (lying length prefix).
        let mut bad = bytes.clone();
        bad[aux_at + 9..aux_at + 17].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(write_and_open(bad).is_err(), "absurd length must fail");

        // Misaligned delta offset.
        let mut bad = bytes.clone();
        let off = u64::from_le_bytes(bytes[aux_at + 1..aux_at + 9].try_into().unwrap());
        bad[aux_at + 1..aux_at + 9].copy_from_slice(&(off + 1).to_le_bytes());
        assert!(write_and_open(bad).is_err(), "misaligned extent must fail");

        // Out-of-bounds delta offset (past the directory).
        let mut bad = bytes.clone();
        let past = (dir_off as u64).div_ceil(BLOCK_ALIGN) * BLOCK_ALIGN + BLOCK_ALIGN;
        bad[aux_at + 1..aux_at + 9].copy_from_slice(&past.to_le_bytes());
        assert!(write_and_open(bad).is_err(), "oob extent must fail");

        // Overlapping delta/tombstone extents: point the tombstone at the
        // delta's offset.
        let mut bad = bytes.clone();
        let delta_extent = bytes[aux_at + 1..aux_at + 17].to_vec();
        bad[aux_at + 17..aux_at + 33].copy_from_slice(&delta_extent);
        let err = write_and_open(bad).unwrap_err();
        assert!(err.to_string().contains("overlap"), "got: {err}");

        // Truncation inside the aux payload region still fails cleanly.
        for cut in [dir_off - 1, dir_off - 4000] {
            let p = tmp("auxcut.tde2");
            std::fs::write(&p, &bytes[..cut]).unwrap();
            assert!(PagedDatabase::open(&p).is_err());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_heaps_are_written_once_and_cached_once() {
        // Two columns sharing one heap Arc → one heap extent, one cached
        // heap entry.
        let mut b = ColumnBuilder::new("s1", DataType::Str, EncodingPolicy::default());
        for i in 0..400 {
            b.append_str(Some(["x", "y"][i % 2]));
        }
        let c1 = b.finish().column;
        let mut c2 = c1.clone();
        c2.name = "s2".into();
        let mut db = Database::new();
        db.add_table(Table::new("t", vec![c1, c2]));
        let path = tmp("shared.tde2");
        save_v2(&db, &path).unwrap();
        let paged = PagedDatabase::open(&path).unwrap();
        let t = paged.table("t").unwrap();
        let e1 = t.column_dir("s1").unwrap().heap.unwrap();
        let e2 = t.column_dir("s2").unwrap().heap.unwrap();
        assert_eq!(e1, e2, "shared heap must be deduplicated");
        t.column("s1").unwrap();
        let snap1 = paged.cache_snapshot();
        t.column("s2").unwrap();
        let snap2 = paged.cache_snapshot();
        // s2 loads its own stream but hits the shared heap entry.
        assert_eq!(snap2.misses, snap1.misses + 1);
        std::fs::remove_file(&path).ok();
    }
}

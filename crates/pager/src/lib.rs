//! Paged storage engine: the v2 block-aligned file format, lazily loaded
//! column segments, and a sharded buffer pool.
//!
//! The v1 single-file format (paper §2.3.3, `tde-storage::file`) is
//! eager: opening a database deserializes every column of every table.
//! That is the right trade for a freshly produced extract streaming off
//! the wire, but wrong for the interactive dashboard case the paper
//! targets — a workbook touches a handful of the columns in a wide
//! extract, and the TDE's memory-mapped design reads only what a query
//! references.
//!
//! This crate reproduces that behaviour in three layers:
//!
//! * [`format`]: the v2 on-disk layout — per-column segments (encoded
//!   stream, scalar dictionary, string heap) at 4 KiB-aligned offsets,
//!   described by a directory that a fixed footer locates. Opening a
//!   database reads footer + directory only.
//! * [`pool`]: a sharded buffer pool with second-chance (clock)
//!   eviction, a configurable byte budget, and `Arc`-based pinning.
//!   Segments are demand-loaded on first touch and repeat scans are
//!   served from memory; hit/miss/eviction counters flow into
//!   [`tde_obs::CacheCounters`].
//! * [`paged`]: [`PagedDatabase`] / [`PagedTable`] — the lazy
//!   counterparts of `tde_storage::Database` / `Table`, handing out
//!   `Arc<Column>`s that the executor scans exactly like eager columns.
//!
//! Both formats stay readable: v1 via `Database::load`, v2 via
//! [`PagedDatabase::open`]; [`paged::is_v2`] sniffs which one a file is.

pub mod format;
pub mod paged;
pub mod pool;

pub use format::{
    save_v2, save_v2_atomic, save_v2_with_aux_atomic, save_v2_with_aux_atomic_io, write_v2,
    write_v2_with_aux, TableAux, BLOCK_ALIGN,
};
pub use paged::{is_v2, PagedDatabase, PagedTable};
pub use pool::{BufferPool, PoolConfig, SegmentKey};

#[cfg(test)]
mod tests {
    use super::*;
    use tde_storage::builder::{ColumnBuilder, EncodingPolicy};
    use tde_storage::{Database, Table};
    use tde_types::{DataType, Value};

    fn wide_db(cols: usize, rows: i64) -> Database {
        let mut columns = Vec::new();
        for c in 0..cols {
            let name = format!("c{c}");
            let mut b = ColumnBuilder::new(&name, DataType::Integer, EncodingPolicy::default());
            for i in 0..rows {
                b.append_i64(i % (c as i64 + 2));
            }
            columns.push(b.finish().column);
        }
        let mut names = ColumnBuilder::new("label", DataType::Str, EncodingPolicy::default());
        for i in 0..rows {
            names.append_str(Some(["alpha", "beta", "gamma"][i as usize % 3]));
        }
        columns.push(names.finish().column);
        let mut db = Database::new();
        db.add_table(Table::new("wide", columns));
        db
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tde_pager_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// Footer offset (the footer is the last [`format::FOOTER_LEN`] bytes).
    fn footer_at(bytes: &[u8]) -> usize {
        bytes.len() - format::FOOTER_LEN as usize
    }

    /// Recompute the directory checksum after mutating directory bytes,
    /// so a test can reach the structural validation *behind* the
    /// checksum line of defense.
    fn patch_dir_checksum(bytes: &mut [u8]) {
        let foot = footer_at(bytes);
        let dir_off = u64::from_le_bytes(bytes[foot..foot + 8].try_into().unwrap()) as usize;
        let dir_len = u64::from_le_bytes(bytes[foot + 8..foot + 16].try_into().unwrap()) as usize;
        let ck = tde_io::checksum(&bytes[dir_off..dir_off + dir_len]);
        bytes[foot + 16..foot + 24].copy_from_slice(&ck.to_le_bytes());
    }

    #[test]
    fn roundtrip_and_lazy_projection() {
        let db = wide_db(10, 3000);
        let path = tmp("wide.tde2");
        save_v2(&db, &path).unwrap();
        assert!(is_v2(&path).unwrap());

        let paged = PagedDatabase::open(&path).unwrap();
        let t = paged.table("wide").unwrap();
        assert_eq!(t.row_count(), 3000);
        assert_eq!(t.column_names().len(), 11);

        // Open reads directory only: nothing cached, nothing missed.
        let before = paged.cache_snapshot();
        assert_eq!(before.misses, 0);
        assert_eq!(before.bytes_cached, 0);

        // Project 2 of 11 columns: exactly those columns' segments load.
        let c3 = t.column("c3").unwrap();
        let label = t.column("label").unwrap();
        let after = paged.cache_snapshot();
        assert_eq!(after.misses, 3, "c3 stream + label stream + label heap");
        assert!(after.bytes_cached > 0);

        // Values match the eager original.
        let orig = db.table("wide").unwrap();
        for row in (0..3000).step_by(491) {
            assert_eq!(c3.value(row), orig.column("c3").unwrap().value(row));
            assert_eq!(label.value(row), orig.column("label").unwrap().value(row));
        }
        assert_eq!(label.value(1), Value::Str("beta".into()));

        // Second touch: pure hits, zero new misses.
        drop((c3, label));
        t.column("c3").unwrap();
        t.column("label").unwrap();
        let warm = paged.cache_snapshot();
        assert_eq!(warm.misses, after.misses, "second pass must not miss");
        assert!(warm.hits >= 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_all_matches_eager() {
        let db = wide_db(4, 500);
        let path = tmp("all.tde2");
        save_v2(&db, &path).unwrap();
        let paged = PagedDatabase::open(&path).unwrap();
        let t = paged.table("wide").unwrap().load_all().unwrap();
        let orig = db.table("wide").unwrap();
        assert_eq!(t.row_count(), orig.row_count());
        for (a, b) in t.columns.iter().zip(&orig.columns) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.metadata, b.metadata);
            for row in (0..500).step_by(37) {
                assert_eq!(a.value(row), b.value(row));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_file_is_politely_refused() {
        let db = wide_db(2, 100);
        let path = tmp("eager.tde");
        db.save(&path).unwrap();
        assert!(!is_v2(&path).unwrap());
        let err = PagedDatabase::open(&path).unwrap_err();
        assert!(err.to_string().contains("v1"), "got: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_v2_files_error_cleanly() {
        let db = wide_db(3, 200);
        let path = tmp("corrupt.tde2");
        save_v2(&db, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        // Truncations at the footer, mid-directory, and mid-segment.
        for cut in [bytes.len() - 1, bytes.len() - 30, bytes.len() / 2, 17, 4, 0] {
            let p = tmp("cut.tde2");
            std::fs::write(&p, &bytes[..cut]).unwrap();
            assert!(
                PagedDatabase::open(&p).is_err(),
                "truncation at {cut} must fail to open"
            );
        }

        // Corrupt footer directory offset.
        let mut bad = bytes.clone();
        let foot = footer_at(&bad);
        bad[foot..foot + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let p = tmp("badfoot.tde2");
        std::fs::write(&p, &bad).unwrap();
        assert!(PagedDatabase::open(&p).is_err());

        // Flip bytes across the directory *with the checksum patched to
        // match*: the structural validators behind the checksum must
        // still never panic on open+scan.
        let dir_off = u64::from_le_bytes(bytes[foot..foot + 8].try_into().unwrap()) as usize;
        for at in (dir_off..bytes.len() - format::FOOTER_LEN as usize).step_by(7) {
            let mut bad = bytes.clone();
            bad[at] ^= 0xFF;
            patch_dir_checksum(&mut bad);
            let p = tmp("flip.tde2");
            std::fs::write(&p, &bad).unwrap();
            if let Ok(pdb) = PagedDatabase::open(&p) {
                if let Some(t) = pdb.table("wide") {
                    for name in ["c0", "c1", "c2"] {
                        let _ = t.column(name);
                    }
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Satellite: the systematic corruption matrix. Every single-bit flip
    /// across the directory and footer region must yield a typed
    /// `io::Error` on open — never a panic, never a successful open that
    /// silently misreads the directory.
    #[test]
    fn directory_corruption_matrix() {
        let db = wide_db(2, 120);
        let mut aux = std::collections::HashMap::new();
        aux.insert(
            "wide".to_string(),
            TableAux {
                delta: Some(vec![0x5A; 48]),
                tombstone: Some(vec![0xA5; 32]),
            },
        );
        let path = tmp("matrix.tde2");
        save_v2_with_aux_atomic(&db, &aux, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let foot = footer_at(&bytes);
        let dir_off = u64::from_le_bytes(bytes[foot..foot + 8].try_into().unwrap()) as usize;

        let p = tmp("matrix_mut.tde2");
        let mut flips = 0u32;
        let mut checksum_catches = 0u32;
        for at in dir_off..bytes.len() {
            for bit in 0..8u8 {
                let mut bad = bytes.clone();
                bad[at] ^= 1 << bit;
                std::fs::write(&p, &bad).unwrap();
                let err = match PagedDatabase::open(&p) {
                    Err(e) => e,
                    Ok(_) => panic!("bit {bit} of byte {at} flipped but open succeeded"),
                };
                flips += 1;
                if tde_io::is_checksum_mismatch(&err) {
                    checksum_catches += 1;
                }
                // Typed classification for the landmark bytes.
                if at >= foot + 28 {
                    assert!(err.to_string().contains("magic"), "magic flip: {err}");
                } else if (foot + 24..foot + 28).contains(&at) {
                    assert!(err.to_string().contains("version"), "version flip: {err}");
                } else if (foot + 16..foot + 24).contains(&at) {
                    assert!(
                        tde_io::is_checksum_mismatch(&err),
                        "dir-checksum flip must be a checksum mismatch: {err}"
                    );
                }
            }
        }
        // Every flip inside the directory proper (extent offsets,
        // lengths, per-segment checksum bytes, names, metadata) is
        // caught by the directory checksum before parsing.
        assert!(flips > 1000, "matrix too small: {flips}");
        assert!(
            checksum_catches as usize >= (dir_off..foot).len() * 8,
            "directory flips must all be checksum-caught: {checksum_catches}/{flips}"
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&p).ok();
    }

    /// Every single-byte corruption inside any segment (stream,
    /// dictionary, heap, delta, tombstone) is caught by its extent
    /// checksum when the segment loads — corrupt bytes never reach a
    /// decoder. FNV-1a's per-byte bijection makes this deterministic.
    #[test]
    fn segment_corruption_is_caught_by_checksums() {
        let db = wide_db(2, 80);
        let mut aux = std::collections::HashMap::new();
        aux.insert(
            "wide".to_string(),
            TableAux {
                delta: Some((0..64u8).collect()),
                tombstone: Some(vec![0xEE; 40]),
            },
        );
        let path = tmp("segcorrupt.tde2");
        save_v2_with_aux_atomic(&db, &aux, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let paged = PagedDatabase::open(&path).unwrap();
        let t = paged.table("wide").unwrap();

        // (segment range, loader) for every extent in the file.
        let mut targets: Vec<(format::Extent, String)> = Vec::new();
        for name in t.column_names() {
            let cd = t.column_dir(name).unwrap();
            targets.push((cd.stream, name.to_string()));
            if let Some(d) = cd.dict {
                targets.push((d, name.to_string()));
            }
            if let Some(h) = cd.heap {
                targets.push((h, name.to_string()));
            }
        }

        let p = tmp("segmut.tde2");
        let mut caught = 0u64;
        let mut tried = 0u64;
        for (extent, column) in &targets {
            let start = extent.offset as usize;
            let end = start + extent.len as usize;
            let step = (extent.len as usize / 32).max(1);
            for at in (start..end).step_by(step) {
                let mut bad = bytes.clone();
                bad[at] ^= 0x01;
                std::fs::write(&p, &bad).unwrap();
                let pdb = PagedDatabase::open(&p).unwrap(); // directory intact
                let table = pdb.table("wide").unwrap();
                let err = table
                    .column(column)
                    .expect_err(&format!("flip at {at} in {column} must fail the load"));
                assert!(
                    tde_io::is_checksum_mismatch(&err),
                    "expected typed checksum mismatch, got: {err}"
                );
                tried += 1;
                caught += 1;
                // Untouched columns still load beside the corruption.
                for other in table.column_names() {
                    if other != column {
                        let _ = table.column(other);
                    }
                }
            }
        }
        assert_eq!(caught, tried, "checksum must catch 100% of corruptions");
        assert!(tried >= 64, "sweep too small: {tried}");

        // Aux payload corruption is caught the same way.
        let before = tde_obs::metrics::global().snapshot();
        let mut bad = bytes.clone();
        // The delta payload is the unique 64-byte segment 0,1,2,..,63.
        let needle: Vec<u8> = (0..64u8).collect();
        let at = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("delta payload bytes present");
        bad[at + 10] ^= 0x40;
        std::fs::write(&p, &bad).unwrap();
        let pdb = PagedDatabase::open(&p).unwrap();
        let t = pdb.table("wide").unwrap();
        let err = t.delta_bytes().unwrap_err();
        assert!(tde_io::is_checksum_mismatch(&err), "got: {err}");
        let d = tde_io::checksum_mismatch_details(&err).unwrap();
        assert_eq!(d.segment, "delta");
        // The failure counter moved (when metrics are enabled).
        if tde_obs::metrics::enabled() {
            let count = |snap: &tde_obs::metrics::MetricsSnapshot| {
                snap.samples
                    .iter()
                    .filter(|s| s.name == "tde_segment_checksum_failures_total")
                    .map(|s| match s.value {
                        tde_obs::metrics::SampleValue::Counter(c) => c,
                        _ => 0,
                    })
                    .sum::<u64>()
            };
            let after = tde_obs::metrics::global().snapshot();
            assert!(count(&after) > count(&before), "checksum metric must move");
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn segments_are_block_aligned() {
        let db = wide_db(5, 800);
        let path = tmp("aligned.tde2");
        save_v2(&db, &path).unwrap();
        let paged = PagedDatabase::open(&path).unwrap();
        let t = paged.table("wide").unwrap();
        for name in t.column_names() {
            let cd = t.column_dir(name).unwrap();
            assert_eq!(cd.stream.offset % BLOCK_ALIGN, 0);
            if let Some(d) = cd.dict {
                assert_eq!(d.offset % BLOCK_ALIGN, 0);
            }
            if let Some(h) = cd.heap {
                assert_eq!(h.offset % BLOCK_ALIGN, 0);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn aux_sections_roundtrip_and_atomic_save() {
        let db = wide_db(3, 150);
        let mut aux = std::collections::HashMap::new();
        aux.insert(
            "wide".to_string(),
            TableAux {
                delta: Some(b"delta-payload-bytes".to_vec()),
                tombstone: Some(b"tombstone-payload".to_vec()),
            },
        );
        let path = tmp("aux.tde2");
        save_v2_with_aux_atomic(&db, &aux, &path).unwrap();
        let paged = PagedDatabase::open(&path).unwrap();
        let t = paged.table("wide").unwrap();
        assert!(t.has_delta() && t.has_tombstone());
        assert_eq!(t.delta_bytes().unwrap().unwrap(), b"delta-payload-bytes");
        assert_eq!(t.tombstone_bytes().unwrap().unwrap(), b"tombstone-payload");
        // Columns still resolve beside the aux segments.
        t.column("c0").unwrap();

        // Atomic re-save without aux replaces the file in place; no temp
        // files are left behind.
        save_v2_atomic(&db, &path).unwrap();
        let paged = PagedDatabase::open(&path).unwrap();
        let t = paged.table("wide").unwrap();
        assert!(!t.has_delta() && !t.has_tombstone());
        assert_eq!(t.delta_bytes().unwrap(), None);
        let dir = path.parent().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_aux_sections_error_cleanly() {
        let db = wide_db(2, 100);
        let mut aux = std::collections::HashMap::new();
        aux.insert(
            "wide".to_string(),
            TableAux {
                delta: Some(vec![0xAB; 64]),
                tombstone: Some(vec![0xCD; 64]),
            },
        );
        let path = tmp("auxcorrupt.tde2");
        save_v2_with_aux_atomic(&db, &aux, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let foot = footer_at(&bytes);
        let dir_off = u64::from_le_bytes(bytes[foot..foot + 8].try_into().unwrap()) as usize;

        // Locate the aux record in the directory: presence byte followed
        // by two 24-byte extents, at the very end of the single table's
        // entry. The directory checksum is re-patched after each
        // mutation so these reach the structural validators.
        let aux_at = foot - 1 - 48;
        assert_eq!(bytes[aux_at], 3, "presence byte (delta|tombstone)");

        let write_and_open = |mut mutated: Vec<u8>| {
            patch_dir_checksum(&mut mutated);
            let p = tmp("auxmut.tde2");
            std::fs::write(&p, &mutated).unwrap();
            PagedDatabase::open(&p)
        };

        // Presence byte with undefined bits set.
        let mut bad = bytes.clone();
        bad[aux_at] = 0x7;
        assert!(write_and_open(bad).is_err(), "bad presence bits must fail");

        // Absurd delta extent length (lying length prefix).
        let mut bad = bytes.clone();
        bad[aux_at + 9..aux_at + 17].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(write_and_open(bad).is_err(), "absurd length must fail");

        // Misaligned delta offset.
        let mut bad = bytes.clone();
        let off = u64::from_le_bytes(bytes[aux_at + 1..aux_at + 9].try_into().unwrap());
        bad[aux_at + 1..aux_at + 9].copy_from_slice(&(off + 1).to_le_bytes());
        assert!(write_and_open(bad).is_err(), "misaligned extent must fail");

        // Out-of-bounds delta offset (past the directory).
        let mut bad = bytes.clone();
        let past = (dir_off as u64).div_ceil(BLOCK_ALIGN) * BLOCK_ALIGN + BLOCK_ALIGN;
        bad[aux_at + 1..aux_at + 9].copy_from_slice(&past.to_le_bytes());
        assert!(write_and_open(bad).is_err(), "oob extent must fail");

        // Overlapping delta/tombstone extents: point the tombstone at the
        // delta's offset.
        let mut bad = bytes.clone();
        let delta_extent = bytes[aux_at + 1..aux_at + 25].to_vec();
        bad[aux_at + 25..aux_at + 49].copy_from_slice(&delta_extent);
        let err = write_and_open(bad).unwrap_err();
        assert!(err.to_string().contains("overlap"), "got: {err}");

        // Truncation inside the aux payload region still fails cleanly.
        for cut in [dir_off - 1, dir_off - 4000] {
            let p = tmp("auxcut.tde2");
            std::fs::write(&p, &bytes[..cut]).unwrap();
            assert!(PagedDatabase::open(&p).is_err());
        }
        std::fs::remove_file(&path).ok();
    }

    /// Satellite: the atomic save must clean up its temp file on *every*
    /// error path — rename failure, ENOSPC mid-write, and a fault-free
    /// control — pinned through the FaultIo backend.
    #[test]
    fn atomic_save_cleans_up_tmp_on_every_error_path() {
        use tde_io::{FaultIo, FaultPlan};
        let db = wide_db(2, 100);
        let dir = std::env::temp_dir().join("tde_pager_tmpclean");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.tde2");
        let no_tmp_left = || {
            let stray: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
                .collect();
            assert!(stray.is_empty(), "stray temp files: {stray:?}");
        };

        // Rename failure: the save errors, the target is untouched, the
        // temp file is gone.
        save_v2_atomic(&db, &path).unwrap();
        let before = std::fs::read(&path).unwrap();
        let io = FaultIo::new(FaultPlan {
            fail_renames: 1,
            ..Default::default()
        });
        let aux = std::collections::HashMap::new();
        let err = save_v2_with_aux_atomic_io(&db, &aux, &path, &io).unwrap_err();
        assert!(err.to_string().contains("rename"), "got: {err}");
        assert_eq!(io.stats().renames_failed, 1);
        no_tmp_left();
        assert_eq!(std::fs::read(&path).unwrap(), before, "target untouched");

        // ENOSPC mid-write: same contract.
        let io = FaultIo::new(FaultPlan {
            enospc_after_bytes: Some(4096),
            ..Default::default()
        });
        let err = save_v2_with_aux_atomic_io(&db, &aux, &path, &io).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        no_tmp_left();
        assert_eq!(std::fs::read(&path).unwrap(), before, "target untouched");

        // Fault-free pass through the same seam still works.
        save_v2_with_aux_atomic_io(&db, &aux, &path, &tde_io::RealIo).unwrap();
        no_tmp_left();
        std::fs::remove_file(&path).ok();
    }

    /// Transient read faults (EINTR-style errors and short reads) are
    /// absorbed by the bounded-retry read path: scans through a flaky
    /// backend return the same values as the eager original.
    #[test]
    fn transient_read_faults_are_retried_on_scans() {
        use tde_io::{FaultIo, FaultPlan};
        let db = wide_db(4, 600);
        let path = tmp("flaky.tde2");
        save_v2(&db, &path).unwrap();
        let io = FaultIo::new(FaultPlan {
            transient_read_period: Some(2),
            short_read_period: Some(3),
            ..Default::default()
        });
        let paged = PagedDatabase::open_with_io(&path, PoolConfig::default(), &io).unwrap();
        let t = paged.table("wide").unwrap();
        let orig = db.table("wide").unwrap();
        for name in orig.columns.iter().map(|c| c.name.clone()) {
            let col = t.column(&name).unwrap();
            for row in (0..600).step_by(97) {
                assert_eq!(col.value(row), orig.column(&name).unwrap().value(row));
            }
        }
        let stats = io.stats();
        assert!(stats.transient_read_errors > 0, "{stats:?}");
        assert!(stats.short_reads > 0, "{stats:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shared_heaps_are_written_once_and_cached_once() {
        // Two columns sharing one heap Arc → one heap extent, one cached
        // heap entry.
        let mut b = ColumnBuilder::new("s1", DataType::Str, EncodingPolicy::default());
        for i in 0..400 {
            b.append_str(Some(["x", "y"][i % 2]));
        }
        let c1 = b.finish().column;
        let mut c2 = c1.clone();
        c2.name = "s2".into();
        let mut db = Database::new();
        db.add_table(Table::new("t", vec![c1, c2]));
        let path = tmp("shared.tde2");
        save_v2(&db, &path).unwrap();
        let paged = PagedDatabase::open(&path).unwrap();
        let t = paged.table("t").unwrap();
        let e1 = t.column_dir("s1").unwrap().heap.unwrap();
        let e2 = t.column_dir("s2").unwrap().heap.unwrap();
        assert_eq!(e1, e2, "shared heap must be deduplicated");
        t.column("s1").unwrap();
        let snap1 = paged.cache_snapshot();
        t.column("s2").unwrap();
        let snap2 = paged.cache_snapshot();
        // s2 loads its own stream but hits the shared heap entry.
        assert_eq!(snap2.misses, snap1.misses + 1);
        std::fs::remove_file(&path).ok();
    }
}

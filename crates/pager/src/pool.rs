//! Sharded buffer pool for demand-loaded column segments.
//!
//! The pool caches *assembled* segments — a reconstructed
//! [`tde_storage::Column`] (stream plus dictionary) or a shared
//! [`tde_storage::StringHeap`] — keyed by [`SegmentKey`]. Keys hash to
//! one of N shards, each an independently locked map, so concurrent
//! scans of different columns rarely contend.
//!
//! Eviction is second-chance FIFO (a clock over insertion order): each
//! shard keeps its keys in arrival order with a referenced bit that a
//! cache hit sets; when the shard is over its byte budget the sweep pops
//! the front, re-queues it once if referenced, and otherwise evicts.
//! An entry is *pinned* while any `Arc` clone lives outside the cache
//! (`Arc::strong_count > 1`) — pinned entries are skipped, and a
//! rotation guard bounds the sweep so an all-pinned shard inserts over
//! budget rather than spinning forever.
//!
//! Hit/miss/eviction counts flow into a shared
//! [`tde_obs::CacheCounters`], surfaced by `explain_analyze`.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::io;
use std::sync::Arc;
use tde_obs::CacheCounters;
use tde_storage::{Column, StringHeap};

/// Identifies one cacheable segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentKey {
    /// An assembled column (stream + dictionary), by directory position.
    Column {
        /// Table index in the directory.
        table: u32,
        /// Column index within the table.
        col: u32,
    },
    /// A string heap, by file offset — columns sharing a heap extent
    /// share the cached heap.
    Heap {
        /// Absolute file offset of the heap segment.
        offset: u64,
    },
}

/// A cached segment payload.
#[derive(Debug, Clone)]
pub enum CachedSegment {
    /// An assembled column.
    Column(Arc<Column>),
    /// A shared string heap.
    Heap(Arc<StringHeap>),
}

impl CachedSegment {
    /// Pinned while any `Arc` clone lives outside the cache.
    fn is_pinned(&self) -> bool {
        match self {
            CachedSegment::Column(c) => Arc::strong_count(c) > 1,
            CachedSegment::Heap(h) => Arc::strong_count(h) > 1,
        }
    }
}

struct Entry {
    seg: CachedSegment,
    bytes: u64,
    referenced: bool,
}

#[derive(Default)]
struct Shard {
    map: HashMap<SegmentKey, Entry>,
    order: VecDeque<SegmentKey>,
    bytes: u64,
}

/// Buffer pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Total byte budget across all shards.
    pub budget_bytes: u64,
    /// Number of shards (clamped to at least 1).
    pub shards: usize,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            budget_bytes: 64 << 20,
            shards: 8,
        }
    }
}

/// The sharded pool.
pub struct BufferPool {
    shards: Vec<Mutex<Shard>>,
    shard_budget: u64,
    budget: u64,
    counters: Arc<CacheCounters>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("shards", &self.shards.len())
            .field("budget", &self.budget)
            .finish()
    }
}

impl BufferPool {
    /// A pool with the given configuration.
    pub fn new(cfg: PoolConfig) -> BufferPool {
        let n = cfg.shards.max(1);
        BufferPool {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: (cfg.budget_bytes / n as u64).max(1),
            budget: cfg.budget_bytes,
            counters: CacheCounters::new(),
        }
    }

    /// Shared hit/miss/eviction counters.
    pub fn counters(&self) -> &Arc<CacheCounters> {
        &self.counters
    }

    /// Total configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Bytes currently cached across all shards.
    pub fn bytes_cached(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    /// A point-in-time snapshot of the counters plus occupancy.
    pub fn snapshot(&self) -> tde_obs::CacheSnapshot {
        self.counters.snapshot(self.bytes_cached(), self.budget)
    }

    fn shard_for(&self, key: &SegmentKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look up a segment without loading. A hit bumps the referenced bit
    /// and the hit counter.
    pub fn try_get(&self, key: SegmentKey) -> Option<CachedSegment> {
        let mut shard = self.shard_for(&key).lock();
        let entry = shard.map.get_mut(&key)?;
        entry.referenced = true;
        self.counters.record_hit();
        Some(entry.seg.clone())
    }

    /// Fetch a segment, invoking `load` on miss. `load` returns the
    /// payload and its cost in bytes; it runs under the shard lock, so it
    /// MUST NOT touch the pool (a same-shard re-entry would deadlock) —
    /// resolve any dependent segments (a column's heap) *before* calling.
    pub fn get_or_load(
        &self,
        key: SegmentKey,
        load: impl FnOnce() -> io::Result<(CachedSegment, u64)>,
    ) -> io::Result<CachedSegment> {
        let mut shard = self.shard_for(&key).lock();
        if let Some(entry) = shard.map.get_mut(&key) {
            entry.referenced = true;
            self.counters.record_hit();
            return Ok(entry.seg.clone());
        }
        let (seg, bytes) = load()?;
        self.counters.record_miss(bytes);
        shard.map.insert(
            key,
            Entry {
                seg: seg.clone(),
                bytes,
                referenced: false,
            },
        );
        shard.order.push_back(key);
        shard.bytes += bytes;
        if tde_obs::metrics::enabled() {
            tde_obs::metrics::pool_metrics()
                .resident_bytes
                .add(bytes as i64);
        }
        self.evict_over_budget(&mut shard);
        Ok(seg)
    }

    /// Second-chance sweep: evict until the shard fits its budget. The
    /// rotation guard (two full passes) stops the sweep when every
    /// surviving entry is referenced-then-pinned, accepting temporary
    /// over-budget occupancy instead of livelock.
    fn evict_over_budget(&self, shard: &mut Shard) {
        let mut rotations = 2 * shard.order.len();
        while shard.bytes > self.shard_budget && rotations > 0 {
            rotations -= 1;
            let Some(key) = shard.order.pop_front() else {
                break;
            };
            let Some(entry) = shard.map.get_mut(&key) else {
                continue;
            };
            if entry.referenced {
                entry.referenced = false;
                shard.order.push_back(key);
                continue;
            }
            if entry.seg.is_pinned() {
                shard.order.push_back(key);
                continue;
            }
            let evicted = shard.map.remove(&key).expect("entry just seen");
            shard.bytes -= evicted.bytes;
            if tde_obs::metrics::enabled() {
                tde_obs::metrics::pool_metrics()
                    .resident_bytes
                    .sub(evicted.bytes as i64);
            }
            self.counters.record_eviction(evicted.bytes);
            tde_obs::timeline::pool_eviction(evicted.bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_encodings::dynamic::encode_all;
    use tde_types::{DataType, Width};

    fn col(name: &str, n: i64) -> (CachedSegment, u64) {
        let vals: Vec<i64> = (0..n).collect();
        let stream = encode_all(&vals, Width::W8, true).stream;
        let bytes = stream.as_bytes().len() as u64;
        let c = Column::scalar(name, DataType::Integer, stream);
        (CachedSegment::Column(Arc::new(c)), bytes)
    }

    fn key(i: u32) -> SegmentKey {
        SegmentKey::Column { table: 0, col: i }
    }

    #[test]
    fn hit_after_miss() {
        let pool = BufferPool::new(PoolConfig::default());
        assert!(pool.try_get(key(0)).is_none());
        pool.get_or_load(key(0), || Ok(col("a", 100))).unwrap();
        assert!(pool.try_get(key(0)).is_some());
        let snap = pool.snapshot();
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.hits, 1);
        assert!(snap.bytes_cached > 0);
    }

    #[test]
    fn eviction_respects_budget() {
        // One shard, budget for roughly two columns.
        let (_, one_cost) = col("probe", 4096);
        let pool = BufferPool::new(PoolConfig {
            budget_bytes: one_cost * 2 + 16,
            shards: 1,
        });
        for i in 0..8 {
            pool.get_or_load(key(i), || Ok(col("c", 4096))).unwrap();
        }
        let snap = pool.snapshot();
        assert!(snap.evictions >= 5, "expected evictions, got {snap:?}");
        assert!(
            snap.bytes_cached <= pool.budget_bytes(),
            "over budget: {snap:?}"
        );
    }

    #[test]
    fn referenced_entries_survive_one_sweep() {
        let (_, one_cost) = col("probe", 4096);
        let pool = BufferPool::new(PoolConfig {
            budget_bytes: one_cost * 2 + 16,
            shards: 1,
        });
        pool.get_or_load(key(0), || Ok(col("hot", 4096))).unwrap();
        // Touch it: the referenced bit gives it a second chance.
        pool.try_get(key(0)).unwrap();
        pool.get_or_load(key(1), || Ok(col("b", 4096))).unwrap();
        pool.get_or_load(key(2), || Ok(col("c", 4096))).unwrap();
        // The hot entry survived the sweep that evicted someone.
        let snap = pool.snapshot();
        assert!(snap.evictions >= 1);
        assert!(pool.try_get(key(0)).is_some(), "hot entry was evicted");
    }

    #[test]
    fn pinned_entries_are_not_evicted() {
        let (_, one_cost) = col("probe", 4096);
        let pool = BufferPool::new(PoolConfig {
            budget_bytes: one_cost,
            shards: 1,
        });
        let pinned = pool.get_or_load(key(0), || Ok(col("pin", 4096))).unwrap();
        // Way over budget, but the only candidate is pinned.
        for i in 1..4 {
            pool.get_or_load(key(i), || Ok(col("x", 4096))).unwrap();
        }
        assert!(
            pool.try_get(key(0)).is_some(),
            "pinned entry must survive eviction"
        );
        drop(pinned);
        // Unpinned now; further pressure evicts it.
        for i in 4..8 {
            pool.get_or_load(key(i), || Ok(col("y", 4096))).unwrap();
        }
        assert!(pool.bytes_cached() <= pool.budget_bytes() + one_cost);
    }

    #[test]
    fn load_error_propagates_and_caches_nothing() {
        let pool = BufferPool::new(PoolConfig::default());
        let err = pool
            .get_or_load(key(0), || {
                Err(io::Error::new(io::ErrorKind::InvalidData, "boom"))
            })
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(pool.try_get(key(0)).is_none());
        assert_eq!(pool.snapshot().misses, 0);
    }
}

//! The v2 paged file format.
//!
//! The v1 format (`tde-storage::file`) is *eager*: opening a database
//! deserializes every column of every table. v2 stores the same
//! per-column payloads — encoded stream bytes, scalar dictionaries,
//! string heaps — as *segments* at block-aligned offsets, described by a
//! directory that a footer at EOF points to. A reader opens a database by
//! reading the footer and directory only; column segments are fetched on
//! first touch through the buffer pool (`crate::pool`).
//!
//! Layout (little-endian):
//!
//! ```text
//! header (16 B):  magic "TDE2" | format version u32 | reserved u64
//! segments:       each padded to a 4096-byte boundary
//!                 per column: stream bytes | [dictionary] ; heaps are
//!                 deduplicated (shared heaps written once)
//! directory:      table count u32
//!                 per table: name | row count u64 | column count u32
//!                   per column: name | dtype u8 | compression tag u8
//!                     | sorted u8 | metadata | stream extent
//!                     | [dictionary extent] | [heap extent]
//!                   aux presence u8 (bit0 delta, bit1 tombstone)
//!                     | [delta extent] | [tombstone extent]
//! footer (32 B):  dir offset u64 | dir len u64 | dir checksum u64
//!                 | version u32 | magic
//! ```
//!
//! The per-table *aux* sections carry the mutable write path (tde-delta):
//! an opaque delta-segment payload and a tombstone payload, stored as
//! ordinary block-aligned segments and located by extents after the
//! column entries. The pager treats both as opaque bytes — their wire
//! format belongs to `tde-delta` — but validates their extents exactly
//! like column segments, plus a disjointness check between the pair.
//!
//! An *extent* is `offset u64 | len u64 | checksum u64`. Segment offsets
//! are multiples of [`BLOCK_ALIGN`] so demand loads are aligned reads.
//! The directory reuses the [`tde_storage::wire`] primitives, so the
//! per-column metadata record is byte-identical to v1's.
//!
//! **Integrity** (format version 3): every extent records the FNV-1a-64
//! checksum of its segment bytes, computed at write time and verified by
//! the pager on every demand load *before* the bytes reach a decoder;
//! the footer likewise records the checksum of the directory bytes,
//! verified at open. A mismatch surfaces as a typed
//! [`tde_io::ChecksumMismatch`] error and bumps
//! `tde_segment_checksum_failures_total` — corrupt bytes are never
//! decoded into wrong answers.
//!
//! Like the v1 reader, everything here treats the file as untrusted:
//! bad magic, truncation, misaligned or out-of-bounds extents and lying
//! length prefixes surface as [`io::Error`], never a panic or an
//! unbounded allocation.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use tde_encodings::ColumnMetadata;
use tde_storage::wire::{
    corrupt, read_metadata, read_str, read_u32, read_u64, write_metadata, write_str,
};
use tde_storage::{Compression, Database};
use tde_types::DataType;

/// Magic bytes opening (and closing) a v2 file.
pub const MAGIC: &[u8; 4] = b"TDE2";
/// Paged format version. Version 3 added per-segment and directory
/// checksums (widening extents to 24 bytes and the footer to 32); the
/// reader rejects earlier versions rather than skip verification.
pub const VERSION: u32 = 3;
/// Segment alignment: every segment starts on a 4 KiB boundary.
pub const BLOCK_ALIGN: u64 = 4096;
/// Fixed header size.
pub const HEADER_LEN: u64 = 16;
/// Fixed footer size.
pub const FOOTER_LEN: u64 = 32;

/// A byte range within the file, plus the checksum of its contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Absolute file offset (multiple of [`BLOCK_ALIGN`]).
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// FNV-1a-64 checksum of the segment bytes ([`tde_io::checksum`]).
    pub checksum: u64,
}

/// Directory entry for one column: everything needed to rebuild the
/// [`tde_storage::Column`] except the segment bytes themselves.
#[derive(Debug, Clone)]
pub struct ColumnDir {
    /// Column name.
    pub name: String,
    /// Logical data type.
    pub dtype: DataType,
    /// Compression tag (0 none, 1 array, 2 heap) — mirrors
    /// [`Compression::tag`].
    pub ctag: u8,
    /// Dictionary/heap sort flag (meaningless when `ctag == 0`).
    pub sorted: bool,
    /// Extracted column metadata.
    pub metadata: ColumnMetadata,
    /// Encoded main-data stream segment.
    pub stream: Extent,
    /// Scalar dictionary segment (`ctag == 1`): raw little-endian i64s.
    pub dict: Option<Extent>,
    /// String heap segment (`ctag == 2`): [`tde_storage::StringHeap`]
    /// bytes. Columns sharing a heap share the extent.
    pub heap: Option<Extent>,
}

/// Directory entry for one table.
#[derive(Debug, Clone)]
pub struct TableDir {
    /// Table name.
    pub name: String,
    /// Row count (every column's stream must agree).
    pub rows: u64,
    /// Column directory, in schema order.
    pub columns: Vec<ColumnDir>,
    /// Delta-store payload segment (opaque to the pager; `tde-delta`
    /// owns its wire format). `None` when the table has no live delta.
    pub delta: Option<Extent>,
    /// Tombstone payload segment (opaque; see [`TableDir::delta`]).
    pub tombstone: Option<Extent>,
}

/// Per-table auxiliary payloads attached at save time: the delta-store
/// and tombstone sections. Both are opaque to the pager.
#[derive(Debug, Clone, Default)]
pub struct TableAux {
    /// Serialized delta-store payload.
    pub delta: Option<Vec<u8>>,
    /// Serialized tombstone payload.
    pub tombstone: Option<Vec<u8>>,
}

/// Pad the writer with zeros up to the next [`BLOCK_ALIGN`] boundary.
fn pad_to_block(w: &mut impl Write, off: &mut u64) -> io::Result<()> {
    let rem = *off % BLOCK_ALIGN;
    if rem != 0 {
        let pad = (BLOCK_ALIGN - rem) as usize;
        w.write_all(&vec![0u8; pad])?;
        *off += pad as u64;
    }
    Ok(())
}

fn write_segment(w: &mut impl Write, off: &mut u64, bytes: &[u8]) -> io::Result<Extent> {
    pad_to_block(w, off)?;
    let extent = Extent {
        offset: *off,
        len: bytes.len() as u64,
        checksum: tde_io::checksum(bytes),
    };
    w.write_all(bytes)?;
    *off += bytes.len() as u64;
    Ok(extent)
}

/// Serialize a database in the v2 paged format.
pub fn write_v2(db: &Database, w: &mut impl Write) -> io::Result<()> {
    write_v2_with_aux(db, &HashMap::new(), w)
}

/// Serialize a database in the v2 paged format, attaching the given
/// per-table auxiliary (delta/tombstone) payloads, keyed by table name.
pub fn write_v2_with_aux(
    db: &Database,
    aux: &HashMap<String, TableAux>,
    w: &mut impl Write,
) -> io::Result<()> {
    let mut off: u64 = 0;
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&0u64.to_le_bytes())?; // reserved
    off += HEADER_LEN;

    // Segments first; remember where each landed. Shared heaps (same
    // `Arc`) are written once and referenced by every column using them.
    let mut heap_extents: HashMap<usize, Extent> = HashMap::new();
    let mut tables = Vec::with_capacity(db.tables.len());
    for t in &db.tables {
        let mut columns = Vec::with_capacity(t.columns.len());
        for c in &t.columns {
            let stream = write_segment(w, &mut off, c.data.as_bytes())?;
            let (dict, heap, sorted) = match &c.compression {
                Compression::None => (None, None, false),
                Compression::Array { dictionary, sorted } => {
                    let mut bytes = Vec::with_capacity(dictionary.len() * 8);
                    for &v in dictionary {
                        bytes.extend_from_slice(&v.to_le_bytes());
                    }
                    (Some(write_segment(w, &mut off, &bytes)?), None, *sorted)
                }
                Compression::Heap { heap, sorted } => {
                    let key = std::sync::Arc::as_ptr(heap) as usize;
                    let extent = match heap_extents.get(&key) {
                        Some(e) => *e,
                        None => {
                            let e = write_segment(w, &mut off, heap.as_bytes())?;
                            heap_extents.insert(key, e);
                            e
                        }
                    };
                    (None, Some(extent), *sorted)
                }
            };
            columns.push(ColumnDir {
                name: c.name.clone(),
                dtype: c.dtype,
                ctag: c.compression.tag(),
                sorted,
                metadata: c.metadata.clone(),
                stream,
                dict,
                heap,
            });
        }
        let t_aux = aux.get(&t.name);
        let delta = match t_aux.and_then(|a| a.delta.as_deref()) {
            Some(bytes) => Some(write_segment(w, &mut off, bytes)?),
            None => None,
        };
        let tombstone = match t_aux.and_then(|a| a.tombstone.as_deref()) {
            Some(bytes) => Some(write_segment(w, &mut off, bytes)?),
            None => None,
        };
        tables.push(TableDir {
            name: t.name.clone(),
            rows: t.row_count(),
            columns,
            delta,
            tombstone,
        });
    }

    // Directory, then footer. The footer carries the directory's own
    // checksum so a corrupted directory is caught before parsing.
    let mut dir = Vec::new();
    write_directory(&mut dir, &tables)?;
    let dir_offset = off;
    w.write_all(&dir)?;
    w.write_all(&dir_offset.to_le_bytes())?;
    w.write_all(&(dir.len() as u64).to_le_bytes())?;
    w.write_all(&tde_io::checksum(&dir).to_le_bytes())?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(MAGIC)?;
    Ok(())
}

/// Serialize a database to a v2 file on disk.
pub fn save_v2(db: &Database, path: impl AsRef<std::path::Path>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(file);
    write_v2(db, &mut w)?;
    w.flush()
}

/// Serialize a database to a v2 file on disk **crash-safely**: the bytes
/// go to a temporary file in the target's directory, are fsynced, and
/// replace the target with an atomic rename. A crash mid-write leaves
/// any existing file at `path` untouched.
pub fn save_v2_atomic(db: &Database, path: impl AsRef<std::path::Path>) -> io::Result<()> {
    save_v2_with_aux_atomic(db, &HashMap::new(), path)
}

/// As [`save_v2_atomic`], attaching per-table aux (delta/tombstone)
/// payloads — the compactor's footer-rewrite path.
pub fn save_v2_with_aux_atomic(
    db: &Database,
    aux: &HashMap<String, TableAux>,
    path: impl AsRef<std::path::Path>,
) -> io::Result<()> {
    save_v2_with_aux_atomic_io(db, aux, path, &tde_io::RealIo)
}

/// As [`save_v2_with_aux_atomic`], with every filesystem operation routed
/// through the given [`StorageIo`] backend — the seam the
/// crash-consistency harness injects faults through.
///
/// On *every* error path — create, write (including ENOSPC), fsync, and
/// rename — the temporary file is removed through the same backend; only
/// a crash-dead backend (which by design refuses the unlink too) can
/// strand it, exactly as a real crash would.
pub fn save_v2_with_aux_atomic_io(
    db: &Database,
    aux: &HashMap<String, TableAux>,
    path: impl AsRef<std::path::Path>,
    storage: &dyn tde_io::StorageIo,
) -> io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let stem = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    // A per-process, per-call unique temp name in the *same directory*
    // (rename is only atomic within one filesystem).
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let tmp_name = format!(
        ".{}.tmp.{}.{}",
        stem.to_string_lossy(),
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let file = storage.create(&tmp)?;
        let mut w = io::BufWriter::new(file);
        write_v2_with_aux(db, aux, &mut w)?;
        w.flush()?;
        w.into_inner()
            .map_err(|e| io::Error::other(e.to_string()))?
            .sync_all()?;
        storage.rename(&tmp, path)
    })();
    if result.is_err() {
        storage.remove_file(&tmp).ok();
    }
    result
}

fn write_extent(w: &mut impl Write, e: Extent) -> io::Result<()> {
    w.write_all(&e.offset.to_le_bytes())?;
    w.write_all(&e.len.to_le_bytes())?;
    w.write_all(&e.checksum.to_le_bytes())
}

fn write_directory(w: &mut impl Write, tables: &[TableDir]) -> io::Result<()> {
    w.write_all(&(tables.len() as u32).to_le_bytes())?;
    for t in tables {
        write_str(w, &t.name)?;
        w.write_all(&t.rows.to_le_bytes())?;
        w.write_all(&(t.columns.len() as u32).to_le_bytes())?;
        for c in &t.columns {
            write_str(w, &c.name)?;
            w.write_all(&[c.dtype.tag(), c.ctag, u8::from(c.sorted)])?;
            write_metadata(w, &c.metadata)?;
            write_extent(w, c.stream)?;
            if let Some(d) = c.dict {
                write_extent(w, d)?;
            }
            if let Some(h) = c.heap {
                write_extent(w, h)?;
            }
        }
        let presence = u8::from(t.delta.is_some()) | (u8::from(t.tombstone.is_some()) << 1);
        w.write_all(&[presence])?;
        if let Some(d) = t.delta {
            write_extent(w, d)?;
        }
        if let Some(ts) = t.tombstone {
            write_extent(w, ts)?;
        }
    }
    Ok(())
}

fn read_extent(r: &mut impl Read, dir_offset: u64) -> io::Result<Extent> {
    let offset = read_u64(r)?;
    let len = read_u64(r)?;
    let checksum = read_u64(r)?;
    if offset % BLOCK_ALIGN != 0 {
        return Err(corrupt("misaligned segment extent"));
    }
    if offset < HEADER_LEN || offset.checked_add(len).is_none_or(|end| end > dir_offset) {
        return Err(corrupt("segment extent out of bounds"));
    }
    Ok(Extent {
        offset,
        len,
        checksum,
    })
}

/// Parse the directory bytes. `dir_offset` bounds segment extents: every
/// segment must lie between the header and the directory.
pub fn read_directory(bytes: &[u8], dir_offset: u64) -> io::Result<Vec<TableDir>> {
    let r = &mut &bytes[..];
    let ntables = read_u32(r)? as usize;
    let mut tables = Vec::with_capacity(ntables.min(1024));
    for _ in 0..ntables {
        let name = read_str(r)?;
        let rows = read_u64(r)?;
        let ncols = read_u32(r)? as usize;
        let mut columns = Vec::with_capacity(ncols.min(4096));
        for _ in 0..ncols {
            let cname = read_str(r)?;
            let mut tags = [0u8; 3];
            r.read_exact(&mut tags)?;
            let dtype = DataType::from_tag(tags[0]).ok_or_else(|| corrupt("bad dtype"))?;
            let ctag = tags[1];
            if ctag > 2 {
                return Err(corrupt("bad compression tag"));
            }
            let sorted = tags[2] != 0;
            let metadata = read_metadata(r)?;
            let stream = read_extent(r, dir_offset)?;
            let dict = if ctag == 1 {
                let e = read_extent(r, dir_offset)?;
                if e.len % 8 != 0 {
                    return Err(corrupt("dictionary extent not a multiple of 8"));
                }
                Some(e)
            } else {
                None
            };
            let heap = if ctag == 2 {
                Some(read_extent(r, dir_offset)?)
            } else {
                None
            };
            columns.push(ColumnDir {
                name: cname,
                dtype,
                ctag,
                sorted,
                metadata,
                stream,
                dict,
                heap,
            });
        }
        let mut presence = [0u8; 1];
        r.read_exact(&mut presence)?;
        if presence[0] > 3 {
            return Err(corrupt("bad aux presence byte"));
        }
        let delta = if presence[0] & 1 != 0 {
            Some(read_extent(r, dir_offset)?)
        } else {
            None
        };
        let tombstone = if presence[0] & 2 != 0 {
            Some(read_extent(r, dir_offset)?)
        } else {
            None
        };
        if let (Some(d), Some(ts)) = (delta, tombstone) {
            // Column extents may legitimately alias (shared heaps); the
            // aux pair is always written as two distinct segments, so
            // overlap can only mean a corrupted directory.
            let disjoint = d.offset + d.len <= ts.offset || ts.offset + ts.len <= d.offset;
            if !disjoint {
                return Err(corrupt("overlapping aux extents"));
            }
        }
        tables.push(TableDir {
            name,
            rows,
            columns,
            delta,
            tombstone,
        });
    }
    if !r.is_empty() {
        return Err(corrupt("trailing bytes after directory"));
    }
    Ok(tables)
}

/// Footer contents: where the directory lives and what it hashes to.
#[derive(Debug, Clone, Copy)]
pub struct Footer {
    /// Absolute offset of the directory.
    pub dir_offset: u64,
    /// Directory length in bytes.
    pub dir_len: u64,
    /// FNV-1a-64 checksum of the directory bytes.
    pub dir_checksum: u64,
}

/// Parse and validate the 32-byte footer given the total file length.
pub fn read_footer(bytes: &[u8; 32], file_len: u64) -> io::Result<Footer> {
    if &bytes[28..32] != MAGIC {
        return Err(corrupt("bad footer magic (not a v2 paged file)"));
    }
    let version = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
    if version != VERSION {
        return Err(corrupt("unsupported v2 format version"));
    }
    let dir_offset = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
    let dir_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let dir_checksum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let dir_end = dir_offset
        .checked_add(dir_len)
        .ok_or_else(|| corrupt("directory extent overflows"))?;
    if dir_offset < HEADER_LEN || dir_end > file_len.saturating_sub(FOOTER_LEN) {
        return Err(corrupt("directory extent out of bounds"));
    }
    Ok(Footer {
        dir_offset,
        dir_len,
        dir_checksum,
    })
}

//! Property tests: the v1 eager format and the v2 paged format must both
//! roundtrip columns of every encoding × compression combination —
//! values, metadata, compression structure and heap sort flags all
//! preserved bit-for-bit.
//!
//! Encodings are chosen by the dynamic encoder from the data's
//! statistics, so the generators produce the *shapes* that trigger each
//! algorithm (sorted dense → affine/delta, low cardinality → dictionary,
//! long runs → RLE, narrow range → frame-of-reference, wide random →
//! raw); compression levels are exercised via scalar, array-converted
//! and heap (string) columns.

include!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/common/proptest_env.rs"
));

use proptest::collection::vec;
use proptest::prelude::*;
use tde_pager::{save_v2, PagedDatabase};
use tde_storage::{convert, Column, ColumnBuilder, Compression, Database, EncodingPolicy, Table};
use tde_types::DataType;

/// Build an integer column from raw values with the default policy.
fn int_column(name: &str, data: &[i64]) -> Column {
    let mut b = ColumnBuilder::new(name, DataType::Integer, EncodingPolicy::default());
    b.append_raw(data);
    b.finish().column
}

/// Build a string column (heap compression) from a token choice list.
fn str_column(name: &str, picks: &[u8]) -> Column {
    const WORDS: [&str; 5] = ["ash", "birch", "cedar", "oak", "pine"];
    let mut b = ColumnBuilder::new(name, DataType::Str, EncodingPolicy::default());
    for &p in picks {
        if p == 255 {
            b.append_str(None);
        } else {
            b.append_str(Some(WORDS[p as usize % WORDS.len()]));
        }
    }
    b.finish().column
}

/// Every data shape the dynamic encoder reacts to, as one strategy: the
/// selector picks the shape, the raw vector supplies the entropy.
fn shaped_data() -> impl Strategy<Value = Vec<i64>> {
    (0u8..5, vec(any::<i64>(), 1..2500), any::<i32>()).prop_map(|(kind, raw, start)| match kind {
        // Narrow range → frame-of-reference.
        0 => raw.iter().map(|v| v.rem_euclid(100) - 50).collect(),
        // Wide random → raw / wide FoR.
        1 => raw,
        // Sorted dense (affine/delta): start plus a prefix sum of steps.
        2 => {
            let mut v = start as i64;
            raw.iter()
                .map(|s| {
                    v += s.rem_euclid(3);
                    v
                })
                .collect()
        }
        // Low cardinality, shuffled → dictionary.
        3 => raw.iter().map(|v| v.rem_euclid(8) * 1_000_003).collect(),
        // Long runs → RLE.
        _ => raw
            .iter()
            .flat_map(|v| std::iter::repeat_n(v.rem_euclid(6), (v.rem_euclid(97) + 1) as usize))
            .take(3000)
            .collect(),
    })
}

/// Assert two columns are indistinguishable: same bytes, same metadata,
/// same compression structure, same values.
fn assert_columns_equal(a: &Column, b: &Column, ctx: &str) {
    assert_eq!(a.name, b.name, "{ctx}: name");
    assert_eq!(a.dtype, b.dtype, "{ctx}: dtype");
    assert_eq!(a.metadata, b.metadata, "{ctx}: metadata");
    assert_eq!(
        a.data.as_bytes(),
        b.data.as_bytes(),
        "{ctx}: stream bytes ({})",
        a.name
    );
    match (&a.compression, &b.compression) {
        (Compression::None, Compression::None) => {}
        (
            Compression::Array {
                dictionary: d1,
                sorted: s1,
            },
            Compression::Array {
                dictionary: d2,
                sorted: s2,
            },
        ) => {
            assert_eq!(d1, d2, "{ctx}: dictionary");
            assert_eq!(s1, s2, "{ctx}: dictionary sort flag");
        }
        (
            Compression::Heap {
                heap: h1,
                sorted: s1,
            },
            Compression::Heap {
                heap: h2,
                sorted: s2,
            },
        ) => {
            assert_eq!(h1.as_bytes(), h2.as_bytes(), "{ctx}: heap bytes");
            assert_eq!(s1, s2, "{ctx}: heap sort flag");
        }
        (x, y) => panic!("{ctx}: compression tag mismatch {} vs {}", x.tag(), y.tag()),
    }
    for row in 0..a.data.len() {
        assert_eq!(a.value(row), b.value(row), "{ctx}: value at row {row}");
    }
}

/// Roundtrip a database through both formats and compare every column.
fn assert_roundtrips(db: &Database) {
    // v1: eager, in memory.
    let mut buf = Vec::new();
    db.write_to(&mut buf).unwrap();
    let v1 = Database::read_from(&mut buf.as_slice()).unwrap();
    // v2: paged, via a temp file, fully materialized back.
    let dir = std::env::temp_dir().join("tde_pager_props");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("prop_{}.tde2", std::process::id()));
    save_v2(db, &path).unwrap();
    let paged = PagedDatabase::open(&path).unwrap();
    for t in &db.tables {
        let t1 = v1.table(&t.name).unwrap();
        let t2 = paged.table(&t.name).unwrap().load_all().unwrap();
        assert_eq!(t1.row_count(), t.row_count());
        assert_eq!(t2.row_count(), t.row_count());
        for (i, orig) in t.columns.iter().enumerate() {
            assert_columns_equal(orig, &t1.columns[i], "v1");
            assert_columns_equal(orig, &t2.columns[i], "v2");
        }
    }
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(24)))]

    #[test]
    fn scalar_columns_roundtrip(data in shaped_data()) {
        let col = int_column("v", &data);
        let mut db = Database::new();
        db.add_table(Table::new("t", vec![col]));
        assert_roundtrips(&db);
    }

    #[test]
    fn array_compressed_columns_roundtrip(data in vec(0i64..8, 1..2500)) {
        // Spread the domain, then re-encode as a dictionary and promote
        // it to array compression (reencode_as_dictionary does both).
        let spread: Vec<i64> = data.iter().map(|&x| x * 1_000_003).collect();
        let mut col = int_column("v", &spread);
        convert::reencode_as_dictionary(&mut col);
        let is_array = matches!(col.compression, Compression::Array { .. });
        let mut db = Database::new();
        db.add_table(Table::new("t", vec![col]));
        assert_roundtrips(&db);
        // The conversion must actually have produced array compression
        // for the roundtrip to mean anything.
        prop_assert!(is_array);
    }

    #[test]
    fn heap_columns_roundtrip(picks in vec(any::<u8>(), 1..2500)) {
        let col = str_column("s", &picks);
        let mut db = Database::new();
        db.add_table(Table::new("t", vec![col]));
        assert_roundtrips(&db);
    }

    #[test]
    fn mixed_tables_roundtrip(
        a in shaped_data(),
        picks in vec(any::<u8>(), 1..1500),
        b in vec(0i64..10, 1..1500),
    ) {
        // One table per shape (row counts differ), all in one database.
        let mut db = Database::new();
        db.add_table(Table::new("ints", vec![int_column("v", &a)]));
        db.add_table(Table::new("strs", vec![str_column("s", &picks)]));
        let n = picks.len().min(b.len());
        db.add_table(Table::new(
            "pair",
            vec![
                int_column("k", &b[..n]),
                str_column("s", &picks[..n]),
            ],
        ));
        assert_roundtrips(&db);
    }
}

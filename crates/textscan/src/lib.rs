//! TextScan: high-performance flat-file import (paper §5.1).
//!
//! A flow-type operator that reads a byte stream and produces blocks of
//! typed data, inferring field separators, column types and header rows
//! when no schema is given. The implementation follows the paper's
//! development arc:
//!
//! * [`sniff`] — record/field boundary detection by statistical analysis
//!   of a sample (§5.1.1);
//! * [`infer`] — column typing by competing parsers over a sample block,
//!   plus header detection (§5.1.1);
//! * [`parsers`] — tightly written buffer-oriented parsers relying on no
//!   external state (§5.1.3), and
//! * [`locale`] — the original locale-sensitive parsers whose singleton
//!   lock made parallel parsing *slower* by an order of magnitude
//!   (§5.1.2), kept as a reproducible baseline;
//! * [`scan`] — tokenization, column cracking at every deferral level
//!   (Fig 4's Tokenize/Split/Scalars/All), and the parallel per-column
//!   parse into [`tde_storage::ColumnBuilder`]s.

// The field parsers return `Result<Option<T>, ()>`: the only failure mode
// is "not this type", which the inference layer counts — an error payload
// would be dead weight on the per-field hot path.
#![allow(clippy::result_unit_err)]

pub mod infer;
pub mod locale;
pub mod parsers;
pub mod scan;
pub mod sniff;

pub use infer::{infer_schema, InferredSchema};
pub use scan::{
    import_bytes, import_file, read_bandwidth, split, tokenize, ImportOptions, ImportResult,
    ParserKind, ScanMode,
};

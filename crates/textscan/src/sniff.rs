//! Record and field boundary detection (paper §5.1.1).
//!
//! A sample of rows is tokenized using the record separator (default
//! end-of-line); simple statistical analysis over the sample determines
//! the field separator: the candidate with the most consistent, non-zero
//! per-line count wins.

/// Field separator candidates, in tie-break priority order.
pub const CANDIDATES: [u8; 4] = [b'|', b',', b'\t', b';'];

/// How many sample lines the sniffers look at.
pub const SAMPLE_LINES: usize = 100;

/// Split the first `limit` lines of `data` (handles missing trailing
/// newline).
pub fn sample_lines(data: &[u8], limit: usize) -> Vec<&[u8]> {
    let mut lines = Vec::with_capacity(limit.min(64));
    let mut start = 0;
    for (i, &b) in data.iter().enumerate() {
        if b == b'\n' {
            let end = if i > start && data[i - 1] == b'\r' {
                i - 1
            } else {
                i
            };
            lines.push(&data[start..end]);
            start = i + 1;
            if lines.len() == limit {
                return lines;
            }
        }
    }
    if start < data.len() {
        lines.push(&data[start..]);
    }
    lines
}

/// Detect the field separator from a sample: for each candidate compute
/// the per-line occurrence counts; prefer the candidate whose count is
/// non-zero and constant across lines, breaking ties by the larger count
/// and then by candidate priority.
pub fn detect_separator(data: &[u8]) -> u8 {
    let lines = sample_lines(data, SAMPLE_LINES);
    if lines.is_empty() {
        return CANDIDATES[0];
    }
    let mut best = (false, 0u64, usize::MAX); // (consistent, count, priority)
    let mut best_sep = CANDIDATES[0];
    for (prio, &sep) in CANDIDATES.iter().enumerate() {
        let counts: Vec<u64> = lines
            .iter()
            .map(|l| l.iter().filter(|&&b| b == sep).count() as u64)
            .collect();
        let first = counts[0];
        if first == 0 {
            continue;
        }
        let consistent = counts.iter().all(|&c| c == first);
        let key = (consistent, first, usize::MAX - prio);
        if key > best {
            best = key;
            best_sep = sep;
        }
    }
    best_sep
}

/// Split one record into fields. A trailing separator (dbgen's
/// `|`-terminated rows) does not produce a trailing empty field.
pub fn split_fields<'a>(line: &'a [u8], sep: u8, out: &mut Vec<&'a [u8]>) {
    out.clear();
    let line = if line.last() == Some(&sep) {
        &line[..line.len() - 1]
    } else {
        line
    };
    let mut start = 0;
    for (i, &b) in line.iter().enumerate() {
        if b == sep {
            out.push(&line[start..i]);
            start = i + 1;
        }
    }
    out.push(&line[start..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_pipe() {
        let data = b"1|foo|2.5|\n2|bar|3.5|\n3|baz|4.5|\n";
        assert_eq!(detect_separator(data), b'|');
    }

    #[test]
    fn detects_comma_with_noise() {
        // Some commas appear inside text, but counts are consistent.
        let data = b"a,b,c\nd,e,f\ng,h,i\n";
        assert_eq!(detect_separator(data), b',');
    }

    #[test]
    fn consistency_beats_count() {
        // '|' appears consistently twice; ',' appears 3 then 1 times.
        let data = b"a|b,c,d,e|f\ng|h,i|j\n";
        assert_eq!(detect_separator(data), b'|');
    }

    #[test]
    fn split_handles_trailing_separator() {
        let mut out = Vec::new();
        split_fields(b"1|foo|2.5|", b'|', &mut out);
        assert_eq!(out, vec![&b"1"[..], b"foo", b"2.5"]);
        split_fields(b"a,b,", b',', &mut out);
        assert_eq!(out, vec![&b"a"[..], b"b"]);
        split_fields(b"a,,c", b',', &mut out);
        assert_eq!(out, vec![&b"a"[..], b"", b"c"]);
    }

    #[test]
    fn sample_lines_handles_crlf_and_no_trailing_newline() {
        let lines = sample_lines(b"a\r\nb\nc", 10);
        assert_eq!(lines, vec![&b"a"[..], b"b", b"c"]);
    }

    #[test]
    fn empty_input() {
        assert_eq!(detect_separator(b""), b'|');
        assert!(sample_lines(b"", 5).is_empty());
    }
}

//! The locale-sensitive parser baseline (paper §5.1.2).
//!
//! The first TextScan implementation parsed fields with the C++ standard
//! library, whose stream parsers are locale sensitive: every parse first
//! obtained and locked a singleton locale object. Under parallel execution
//! the lock contention made the scan *an order of magnitude slower* than
//! single-threaded parsing. This module reproduces that architecture — a
//! process-global mutex-guarded locale consulted once per field — so the
//! degradation is measurable (experiment E10).

use parking_lot::Mutex;

/// A stand-in for the C++ singleton locale: decimal point, digit grouping
/// and a touch of state that must be read under the lock.
#[derive(Debug)]
pub struct Locale {
    /// Decimal separator.
    pub decimal_point: u8,
    /// Grouping separator (ignored by our data, but consulted).
    pub thousands_sep: u8,
    /// Parses served — state mutated under the lock, defeating any
    /// read-lock optimization, exactly like facet reference counting.
    pub uses: u64,
}

static GLOBAL_LOCALE: Mutex<Locale> = Mutex::new(Locale {
    decimal_point: b'.',
    thousands_sep: b',',
    uses: 0,
});

/// Number of locale acquisitions so far (for tests).
pub fn locale_uses() -> u64 {
    GLOBAL_LOCALE.lock().uses
}

/// Touch the locale state per character, as the C++ facet machinery does
/// (`num_get` consults `numpunct` while iterating the stream — all while
/// the locale reference is held).
#[inline]
fn consult_facets(locale: &mut Locale, field: &[u8]) {
    locale.uses += 1;
    let mut acc = 0u8;
    for &b in field {
        acc ^= b ^ locale.decimal_point ^ locale.thousands_sep;
    }
    std::hint::black_box(acc);
}

/// Parse an integer the "standard library" way: acquire the global locale
/// and parse *while holding it*, character checks going through the
/// facets. Semantics match [`crate::parsers::parse_i64`].
pub fn parse_i64_locale(field: &[u8]) -> Result<Option<i64>, ()> {
    let mut locale = GLOBAL_LOCALE.lock();
    consult_facets(&mut locale, field);
    crate::parsers::parse_i64(field)
}

/// Locale-locking real parser.
pub fn parse_f64_locale(field: &[u8]) -> Result<Option<f64>, ()> {
    let mut locale = GLOBAL_LOCALE.lock();
    consult_facets(&mut locale, field);
    crate::parsers::parse_f64(field)
}

/// Locale-locking date parser.
pub fn parse_date_locale(field: &[u8]) -> Result<Option<i64>, ()> {
    let mut locale = GLOBAL_LOCALE.lock();
    consult_facets(&mut locale, field);
    crate::parsers::parse_date(field)
}

/// Locale-locking timestamp parser.
pub fn parse_timestamp_locale(field: &[u8]) -> Result<Option<i64>, ()> {
    let mut locale = GLOBAL_LOCALE.lock();
    consult_facets(&mut locale, field);
    crate::parsers::parse_timestamp(field)
}

/// Locale-locking boolean parser.
pub fn parse_bool_locale(field: &[u8]) -> Result<Option<bool>, ()> {
    let mut locale = GLOBAL_LOCALE.lock();
    consult_facets(&mut locale, field);
    crate::parsers::parse_bool(field)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_semantics_as_buffer_parsers() {
        assert_eq!(parse_i64_locale(b"42"), Ok(Some(42)));
        assert_eq!(parse_f64_locale(b"1.5"), Ok(Some(1.5)));
        assert_eq!(
            parse_date_locale(b"1995-07-14"),
            crate::parsers::parse_date(b"1995-07-14")
        );
        assert_eq!(parse_bool_locale(b"true"), Ok(Some(true)));
    }

    #[test]
    fn every_parse_takes_the_lock() {
        let before = locale_uses();
        for _ in 0..10 {
            parse_i64_locale(b"1").unwrap();
        }
        assert!(locale_uses() >= before + 10);
    }
}

//! Buffer-oriented, locale-free field parsers (paper §5.1.3).
//!
//! "Tightly written C code relying on no external state": each parser
//! takes a byte slice and returns the parsed value or `None`. Empty fields
//! parse as NULL for every type. These parsers are what made scalar
//! parsing run at disk bandwidth on four cores.

use tde_types::datetime::{days_from_ymd, days_in_month, MICROS_PER_DAY};

/// Trim ASCII spaces (flat files occasionally pad fields).
#[inline]
pub fn trim(field: &[u8]) -> &[u8] {
    let mut a = 0;
    let mut b = field.len();
    while a < b && field[a] == b' ' {
        a += 1;
    }
    while b > a && field[b - 1] == b' ' {
        b -= 1;
    }
    &field[a..b]
}

/// Parse a signed decimal integer. `Ok(None)` for an empty field (NULL).
pub fn parse_i64(field: &[u8]) -> Result<Option<i64>, ()> {
    let f = trim(field);
    if f.is_empty() {
        return Ok(None);
    }
    let (neg, digits) = match f[0] {
        b'-' => (true, &f[1..]),
        b'+' => (false, &f[1..]),
        _ => (false, f),
    };
    if digits.is_empty() || digits.len() > 19 {
        return Err(());
    }
    let mut v: i64 = 0;
    for &b in digits {
        if !b.is_ascii_digit() {
            return Err(());
        }
        v = v
            .checked_mul(10)
            .ok_or(())?
            .checked_add(i64::from(b - b'0'))
            .ok_or(())?;
    }
    Ok(Some(if neg { -v } else { v }))
}

/// Parse a real number: optional sign, digits, optional `.digits`,
/// optional exponent. No locale, no grouping separators.
pub fn parse_f64(field: &[u8]) -> Result<Option<f64>, ()> {
    let f = trim(field);
    if f.is_empty() {
        return Ok(None);
    }
    let mut i = 0;
    let neg = match f[0] {
        b'-' => {
            i = 1;
            true
        }
        b'+' => {
            i = 1;
            false
        }
        _ => false,
    };
    let mut mantissa: u64 = 0;
    let mut scale: i32 = 0;
    let mut digits = 0usize;
    while i < f.len() && f[i].is_ascii_digit() {
        if mantissa < u64::MAX / 16 {
            mantissa = mantissa * 10 + u64::from(f[i] - b'0');
        } else {
            scale += 1;
        }
        digits += 1;
        i += 1;
    }
    if i < f.len() && f[i] == b'.' {
        i += 1;
        while i < f.len() && f[i].is_ascii_digit() {
            if mantissa < u64::MAX / 16 {
                mantissa = mantissa * 10 + u64::from(f[i] - b'0');
                scale -= 1;
            }
            digits += 1;
            i += 1;
        }
    }
    if digits == 0 {
        return Err(());
    }
    let mut exp: i32 = 0;
    if i < f.len() && (f[i] == b'e' || f[i] == b'E') {
        i += 1;
        let eneg = match f.get(i) {
            Some(b'-') => {
                i += 1;
                true
            }
            Some(b'+') => {
                i += 1;
                false
            }
            _ => false,
        };
        let mut edigits = 0;
        while i < f.len() && f[i].is_ascii_digit() {
            exp = exp * 10 + i32::from(f[i] - b'0');
            edigits += 1;
            i += 1;
        }
        if edigits == 0 {
            return Err(());
        }
        if eneg {
            exp = -exp;
        }
    }
    if i != f.len() {
        return Err(());
    }
    let v = mantissa as f64 * 10f64.powi(scale + exp);
    Ok(Some(if neg { -v } else { v }))
}

/// Parse `YYYY-MM-DD` (also accepting `/` separators) into days since the
/// epoch, validating the calendar.
pub fn parse_date(field: &[u8]) -> Result<Option<i64>, ()> {
    let f = trim(field);
    if f.is_empty() {
        return Ok(None);
    }
    if f.len() != 10 {
        return Err(());
    }
    let sep = f[4];
    if (sep != b'-' && sep != b'/') || f[7] != sep {
        return Err(());
    }
    let num = |s: &[u8]| -> Result<u32, ()> {
        let mut v = 0u32;
        for &b in s {
            if !b.is_ascii_digit() {
                return Err(());
            }
            v = v * 10 + u32::from(b - b'0');
        }
        Ok(v)
    };
    let y = num(&f[0..4])? as i32;
    let m = num(&f[5..7])?;
    let d = num(&f[8..10])?;
    if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
        return Err(());
    }
    Ok(Some(days_from_ymd(y, m, d)))
}

/// Parse `YYYY-MM-DD HH:MM:SS` (or with `T`) into microseconds since the
/// epoch.
pub fn parse_timestamp(field: &[u8]) -> Result<Option<i64>, ()> {
    let f = trim(field);
    if f.is_empty() {
        return Ok(None);
    }
    if f.len() != 19 || (f[10] != b' ' && f[10] != b'T') {
        return Err(());
    }
    let days = parse_date(&f[..10])?.ok_or(())?;
    if f[13] != b':' || f[16] != b':' {
        return Err(());
    }
    let num = |a: usize| -> Result<i64, ()> {
        if !f[a].is_ascii_digit() || !f[a + 1].is_ascii_digit() {
            return Err(());
        }
        Ok(i64::from(f[a] - b'0') * 10 + i64::from(f[a + 1] - b'0'))
    };
    let (h, mi, s) = (num(11)?, num(14)?, num(17)?);
    if h > 23 || mi > 59 || s > 59 {
        return Err(());
    }
    Ok(Some(
        days * MICROS_PER_DAY + (h * 3600 + mi * 60 + s) * 1_000_000,
    ))
}

/// Parse a boolean: `true` / `false` (any case). Bare digits deliberately
/// do *not* parse, so 0/1 columns infer as integers.
pub fn parse_bool(field: &[u8]) -> Result<Option<bool>, ()> {
    let f = trim(field);
    if f.is_empty() {
        return Ok(None);
    }
    match f {
        b"true" | b"TRUE" | b"True" | b"t" | b"T" => Ok(Some(true)),
        b"false" | b"FALSE" | b"False" | b"f" | b"F" => Ok(Some(false)),
        _ => Err(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_types::datetime::ymd_from_days;

    #[test]
    fn integers() {
        assert_eq!(parse_i64(b"42"), Ok(Some(42)));
        assert_eq!(parse_i64(b"-7"), Ok(Some(-7)));
        assert_eq!(parse_i64(b"+13"), Ok(Some(13)));
        assert_eq!(parse_i64(b" 5 "), Ok(Some(5)));
        assert_eq!(parse_i64(b""), Ok(None));
        assert_eq!(parse_i64(b"12.5"), Err(()));
        assert_eq!(parse_i64(b"abc"), Err(()));
        assert_eq!(parse_i64(b"-"), Err(()));
        assert_eq!(parse_i64(b"9223372036854775807"), Ok(Some(i64::MAX)));
        assert_eq!(parse_i64(b"9223372036854775808"), Err(())); // overflow
    }

    #[test]
    fn reals() {
        assert_eq!(parse_f64(b"1.5"), Ok(Some(1.5)));
        assert_eq!(parse_f64(b"-0.25"), Ok(Some(-0.25)));
        assert_eq!(parse_f64(b"42"), Ok(Some(42.0)));
        assert_eq!(parse_f64(b"1e3"), Ok(Some(1000.0)));
        assert_eq!(parse_f64(b"2.5E-2"), Ok(Some(0.025)));
        assert_eq!(parse_f64(b".5"), Ok(Some(0.5)));
        assert_eq!(parse_f64(b""), Ok(None));
        assert_eq!(parse_f64(b"1.2.3"), Err(()));
        assert_eq!(parse_f64(b"e5"), Err(()));
        assert_eq!(parse_f64(b"1e"), Err(()));
    }

    #[test]
    fn dates() {
        let d = parse_date(b"1995-07-14").unwrap().unwrap();
        assert_eq!(ymd_from_days(d), (1995, 7, 14));
        assert!(parse_date(b"1992/01/01").unwrap().is_some());
        assert_eq!(parse_date(b"1995-13-01"), Err(()));
        assert_eq!(parse_date(b"1995-02-30"), Err(()));
        assert_eq!(parse_date(b"1996-02-29").map(|o| o.is_some()), Ok(true)); // leap
        assert_eq!(parse_date(b"1900-02-29"), Err(())); // not leap
        assert_eq!(parse_date(b"95-07-14"), Err(()));
        assert_eq!(parse_date(b""), Ok(None));
    }

    #[test]
    fn timestamps() {
        let t = parse_timestamp(b"1970-01-02 01:00:00").unwrap().unwrap();
        assert_eq!(t, MICROS_PER_DAY + 3_600_000_000);
        assert!(parse_timestamp(b"1970-01-02T01:00:00").unwrap().is_some());
        assert_eq!(parse_timestamp(b"1970-01-02 25:00:00"), Err(()));
        assert_eq!(parse_timestamp(b"1970-01-02"), Err(()));
    }

    #[test]
    fn bools() {
        assert_eq!(parse_bool(b"true"), Ok(Some(true)));
        assert_eq!(parse_bool(b"FALSE"), Ok(Some(false)));
        assert_eq!(parse_bool(b"1"), Err(())); // digits are integers
        assert_eq!(parse_bool(b"yes"), Err(()));
    }

    #[test]
    fn trim_behaviour() {
        assert_eq!(trim(b"  a b  "), b"a b");
        assert_eq!(trim(b"   "), b"");
    }
}

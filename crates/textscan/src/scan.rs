//! The TextScan operator: tokenization, column cracking and the parallel
//! per-column parse (paper §5.1, Fig 4).
//!
//! Each of Fig 4's measurement levels is a function here:
//!
//! * [`read_bandwidth`] — sum all the bytes of the text file;
//! * [`tokenize`] — find record and field boundaries;
//! * [`split`] — crack the file into per-column text files without parsing;
//! * [`import_file`] with [`ScanMode::Scalars`] — parse numbers and dates,
//!   split the string columns for later parsing;
//! * [`import_file`] with [`ScanMode::All`] — parse every column into a
//!   [`Table`] through [`ColumnBuilder`]s (the TextScan + FlowTable
//!   combined system of §5.2).
//!
//! Column parsers produce independent output from shared read-only state,
//! so blocks are parsed with one thread per column (§5.1.2). With the
//! buffer-oriented parsers this scales; with [`ParserKind::LocaleLocking`]
//! it reproduces the order-of-magnitude collapse the paper describes.

use crate::infer::{infer_schema, InferredSchema};
use crate::locale;
use crate::parsers;
use crate::sniff::split_fields;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use tde_storage::{BuiltColumn, ColumnBuilder, EncodingPolicy, Table};
use tde_types::sentinel::NULL_I64;
use tde_types::{sentinel, DataType};

/// Rows tokenized per processing chunk.
const ROWS_PER_CHUNK: usize = 16_384;

/// How much of the file to parse (the Fig 4 levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Parse every column.
    All,
    /// Parse scalar columns (numbers, dates, booleans); split string
    /// columns into text buffers for later parsing.
    Scalars,
}

/// Which parser family to use (§5.1.2 vs §5.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParserKind {
    /// Buffer-oriented parsers relying on no external state.
    #[default]
    Buffer,
    /// Parsers that lock a global locale singleton per field — the
    /// baseline whose contention defeats parallelism.
    LocaleLocking,
}

/// Import configuration.
#[derive(Debug, Clone)]
pub struct ImportOptions {
    /// Encoding/acceleration policy for the produced columns.
    pub policy: EncodingPolicy,
    /// Explicit schema (names and types); inferred when absent.
    pub schema: Option<Vec<(String, DataType)>>,
    /// Force header presence; inferred when absent.
    pub has_header: Option<bool>,
    /// Parse columns on separate threads.
    pub parallel: bool,
    /// Parser family.
    pub parser: ParserKind,
    /// What to parse.
    pub mode: ScanMode,
    /// Name for the produced table.
    pub table_name: String,
}

impl Default for ImportOptions {
    fn default() -> ImportOptions {
        ImportOptions {
            policy: EncodingPolicy::default(),
            schema: None,
            has_header: None,
            parallel: true,
            parser: ParserKind::Buffer,
            mode: ScanMode::All,
            table_name: "imported".to_owned(),
        }
    }
}

/// What an import produced.
#[derive(Debug)]
pub struct ImportResult {
    /// The table (string columns are empty/absent under
    /// [`ScanMode::Scalars`]).
    pub table: Table,
    /// Per-column mid-load re-encoding counts (experiment E9).
    pub reencodings: Vec<(String, u32)>,
    /// Fields that failed to parse and were stored as NULL.
    pub parse_errors: u64,
    /// Bytes of input processed.
    pub bytes_read: u64,
    /// Bytes of split string text produced under [`ScanMode::Scalars`].
    pub split_bytes: u64,
    /// The schema that was used.
    pub schema: InferredSchema,
}

/// Fig 4 level 1: read the file and sum its bytes.
pub fn read_bandwidth(path: impl AsRef<Path>) -> io::Result<(u64, u64)> {
    let data = std::fs::read(path)?;
    let sum = data
        .iter()
        .fold(0u64, |acc, &b| acc.wrapping_add(u64::from(b)));
    Ok((data.len() as u64, sum))
}

/// Fig 4 level 2: find record and field boundaries; returns
/// `(bytes, rows, fields)`.
pub fn tokenize(path: impl AsRef<Path>) -> io::Result<(u64, u64, u64)> {
    let data = std::fs::read(path)?;
    let schema = infer_schema(&data);
    let mut rows = 0u64;
    let mut fields = 0u64;
    let mut scratch = Vec::new();
    for_each_line(&data, |line| {
        split_fields(line, schema.separator, &mut scratch);
        rows += 1;
        fields += scratch.len() as u64;
    });
    Ok((data.len() as u64, rows, fields))
}

/// Fig 4 level 3: crack the file into one text file per column, without
/// parsing. Strings are written quoted with end-of-line separators —
/// approximately the same I/O as writing heap entries (§5.1.4). Returns
/// `(bytes_read, bytes_written)`.
pub fn split(path: impl AsRef<Path>, out_dir: impl AsRef<Path>) -> io::Result<(u64, u64)> {
    let data = std::fs::read(&path)?;
    let schema = infer_schema(&data);
    std::fs::create_dir_all(&out_dir)?;
    let ncols = schema.names.len();
    let mut writers: Vec<io::BufWriter<std::fs::File>> = (0..ncols)
        .map(|c| {
            let p = out_dir.as_ref().join(format!("col_{c}.txt"));
            Ok(io::BufWriter::with_capacity(
                1 << 16,
                std::fs::File::create(p)?,
            ))
        })
        .collect::<io::Result<_>>()?;
    let mut written = 0u64;
    let mut scratch = Vec::new();
    let mut first = true;
    for_each_line(&data, |line| {
        if first {
            first = false;
            if schema.has_header {
                return;
            }
        }
        split_fields(line, schema.separator, &mut scratch);
        for (c, f) in scratch.iter().enumerate().take(ncols) {
            let w = &mut writers[c];
            let _ = w.write_all(b"\"");
            let _ = w.write_all(f);
            let _ = w.write_all(b"\"\n");
            written += f.len() as u64 + 3;
        }
    });
    for mut w in writers {
        w.flush()?;
    }
    Ok((data.len() as u64, written))
}

/// Iterate the lines of `data` (no trailing-newline requirement). The
/// callback receives slices tied to `data`'s lifetime so callers can keep
/// field ranges across lines.
fn for_each_line<'a>(data: &'a [u8], mut f: impl FnMut(&'a [u8])) {
    let mut start = 0;
    for (i, &b) in data.iter().enumerate() {
        if b == b'\n' {
            let end = if i > start && data[i - 1] == b'\r' {
                i - 1
            } else {
                i
            };
            f(&data[start..end]);
            start = i + 1;
        }
    }
    if start < data.len() {
        f(&data[start..]);
    }
}

/// One column's parse work for a chunk of rows.
struct ColumnTask<'a> {
    dtype: DataType,
    builder: Option<ColumnBuilder>,
    split_buf: Vec<u8>,
    errors: u64,
    name: &'a str,
}

impl ColumnTask<'_> {
    /// Parse this column's fields out of the interleaved range table:
    /// entries `col, col + stride, col + 2·stride, …` of `ranges`. Reading
    /// with a stride avoids materializing a per-column copy of the ranges
    /// for every chunk (the tokenizer output is shared read-only state,
    /// §5.1.2).
    fn parse_chunk(
        &mut self,
        data: &[u8],
        ranges: &[(u32, u32)],
        col: usize,
        stride: usize,
        kind: ParserKind,
    ) {
        let picks = ranges.iter().skip(col).step_by(stride);
        let Some(builder) = self.builder.as_mut() else {
            // Scalars mode string column: split into a text buffer.
            for &(a, b) in picks {
                self.split_buf.push(b'"');
                self.split_buf
                    .extend_from_slice(&data[a as usize..b as usize]);
                self.split_buf.extend_from_slice(b"\"\n");
            }
            return;
        };
        for &(a, b) in picks {
            let field = &data[a as usize..b as usize];
            match self.dtype {
                DataType::Str => {
                    if field.is_empty() {
                        builder.append_str(None);
                    } else {
                        match std::str::from_utf8(field) {
                            Ok(s) => builder.append_str(Some(s)),
                            Err(_) => {
                                self.errors += 1;
                                builder.append_str(None);
                            }
                        }
                    }
                }
                DataType::Real => {
                    let parsed = match kind {
                        ParserKind::Buffer => parsers::parse_f64(field),
                        ParserKind::LocaleLocking => locale::parse_f64_locale(field),
                    };
                    match parsed {
                        Ok(Some(v)) => builder.append_f64(v),
                        Ok(None) => builder.append_f64(sentinel::null_real()),
                        Err(()) => {
                            self.errors += 1;
                            builder.append_f64(sentinel::null_real());
                        }
                    }
                }
                DataType::Bool => {
                    let parsed = match kind {
                        ParserKind::Buffer => parsers::parse_bool(field),
                        ParserKind::LocaleLocking => locale::parse_bool_locale(field),
                    };
                    match parsed {
                        Ok(Some(v)) => builder.append_i64(i64::from(v)),
                        Ok(None) => builder.append_i64(NULL_I64),
                        Err(()) => {
                            self.errors += 1;
                            builder.append_i64(NULL_I64);
                        }
                    }
                }
                DataType::Integer | DataType::Date | DataType::Timestamp => {
                    let parsed = match (self.dtype, kind) {
                        (DataType::Integer, ParserKind::Buffer) => parsers::parse_i64(field),
                        (DataType::Integer, ParserKind::LocaleLocking) => {
                            locale::parse_i64_locale(field)
                        }
                        (DataType::Date, ParserKind::Buffer) => parsers::parse_date(field),
                        (DataType::Date, ParserKind::LocaleLocking) => {
                            locale::parse_date_locale(field)
                        }
                        (DataType::Timestamp, ParserKind::Buffer) => {
                            parsers::parse_timestamp(field)
                        }
                        (DataType::Timestamp, ParserKind::LocaleLocking) => {
                            locale::parse_timestamp_locale(field)
                        }
                        _ => unreachable!(),
                    };
                    match parsed {
                        Ok(Some(v)) => builder.append_i64(v),
                        Ok(None) => builder.append_i64(NULL_I64),
                        Err(()) => {
                            self.errors += 1;
                            builder.append_i64(NULL_I64);
                        }
                    }
                }
            }
        }
    }
}

/// Import a flat file into a [`Table`] (the TextScan + FlowTable pipeline).
pub fn import_file(path: impl AsRef<Path>, options: &ImportOptions) -> io::Result<ImportResult> {
    let data = std::fs::read(&path)?;
    import_bytes(&data, options)
}

/// Import from an in-memory byte stream (the operator reads from a
/// memory-mapped byte stream in the paper; a slice models that).
pub fn import_bytes(data: &[u8], options: &ImportOptions) -> io::Result<ImportResult> {
    let mut schema = infer_schema(data);
    if let Some(explicit) = &options.schema {
        schema.names = explicit.iter().map(|(n, _)| n.clone()).collect();
        schema.types = explicit.iter().map(|(_, t)| *t).collect();
    }
    if let Some(h) = options.has_header {
        schema.has_header = h;
    }
    let ncols = schema.names.len();

    let mut tasks: Vec<ColumnTask> = schema
        .names
        .iter()
        .zip(&schema.types)
        .map(|(name, &dtype)| {
            let wants_builder = options.mode == ScanMode::All || dtype != DataType::Str;
            ColumnTask {
                dtype,
                builder: wants_builder
                    .then(|| ColumnBuilder::new(name.clone(), dtype, options.policy)),
                split_buf: Vec::new(),
                errors: 0,
                name,
            }
        })
        .collect();

    // Tokenize into chunks of rows, then hand each chunk's field ranges to
    // the per-column parsers.
    let mut ranges: Vec<(u32, u32)> = Vec::with_capacity(ROWS_PER_CHUNK * ncols);
    let mut rows_in_chunk = 0usize;
    let mut scratch: Vec<&[u8]> = Vec::new();
    let base = data.as_ptr() as usize;
    let mut first = true;
    let flush = |tasks: &mut Vec<ColumnTask>, ranges: &[(u32, u32)], rows: usize| {
        if rows == 0 {
            return;
        }
        if options.parallel && tasks.len() > 1 {
            std::thread::scope(|s| {
                for (c, task) in tasks.iter_mut().enumerate() {
                    s.spawn(move || task.parse_chunk(data, ranges, c, ncols, options.parser));
                }
            });
        } else {
            for (c, task) in tasks.iter_mut().enumerate() {
                task.parse_chunk(data, ranges, c, ncols, options.parser);
            }
        }
    };
    for_each_line(data, |line| {
        if first {
            first = false;
            if schema.has_header {
                return;
            }
        }
        split_fields(line, schema.separator, &mut scratch);
        for c in 0..ncols {
            match scratch.get(c) {
                Some(f) => {
                    let off = (f.as_ptr() as usize - base) as u32;
                    ranges.push((off, off + f.len() as u32));
                }
                // Short row: the missing field is NULL (empty range).
                None => ranges.push((0, 0)),
            }
        }
        rows_in_chunk += 1;
        if rows_in_chunk == ROWS_PER_CHUNK {
            flush(&mut tasks, &ranges, rows_in_chunk);
            ranges.clear();
            rows_in_chunk = 0;
        }
    });
    flush(&mut tasks, &ranges, rows_in_chunk);

    let mut columns = Vec::with_capacity(ncols);
    let mut reencodings = Vec::with_capacity(ncols);
    let mut parse_errors = 0u64;
    let mut split_bytes = 0u64;
    for task in tasks {
        parse_errors += task.errors;
        split_bytes += task.split_buf.len() as u64;
        if let Some(builder) = task.builder {
            let BuiltColumn {
                column,
                reencodings: re,
                ..
            } = builder.finish();
            reencodings.push((task.name.to_owned(), re));
            columns.push(column);
        }
    }
    Ok(ImportResult {
        table: Table::new(options.table_name.clone(), columns),
        reencodings,
        parse_errors,
        bytes_read: data.len() as u64,
        split_bytes,
        schema,
    })
}

/// Convenience: split-column output paths for a given table path.
pub fn split_dir_for(path: impl AsRef<Path>) -> PathBuf {
    let mut p = path.as_ref().to_path_buf();
    let name = p
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    p.set_file_name(format!("{name}_split"));
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_types::Value;

    const SAMPLE: &[u8] = b"1|alpha|2.5|1995-01-01|\n\
                            2|beta|3.5|1995-01-02|\n\
                            3|alpha||1995-01-03|\n\
                            4|gamma|9.25|1995-01-04|\n";

    #[test]
    fn import_all_columns() {
        let r = import_bytes(SAMPLE, &ImportOptions::default()).unwrap();
        let t = &r.table;
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.columns.len(), 4);
        assert_eq!(t.columns[0].value(0), Value::Int(1));
        assert_eq!(t.columns[1].value(1), Value::Str("beta".into()));
        assert_eq!(t.columns[2].value(2), Value::Null); // empty field
        assert_eq!(t.columns[3].value(3), Value::date(1995, 1, 4));
        assert_eq!(r.parse_errors, 0);
    }

    #[test]
    fn scalars_mode_splits_strings() {
        let opts = ImportOptions {
            mode: ScanMode::Scalars,
            ..ImportOptions::default()
        };
        let r = import_bytes(SAMPLE, &opts).unwrap();
        // Only the three scalar columns are materialized.
        assert_eq!(r.table.columns.len(), 3);
        assert!(r.split_bytes > 0);
    }

    #[test]
    fn header_file_with_types() {
        let data = b"id,when,ok\n1,1999-05-05,true\n2,1999-05-06,false\n";
        let r = import_bytes(data, &ImportOptions::default()).unwrap();
        assert_eq!(r.table.row_count(), 2);
        assert_eq!(
            r.table.column("when").unwrap().value(0),
            Value::date(1999, 5, 5)
        );
        assert_eq!(r.table.column("ok").unwrap().value(1), Value::Bool(false));
    }

    #[test]
    fn explicit_schema_overrides_inference() {
        // Force the integer column to be read as Real.
        let opts = ImportOptions {
            schema: Some(vec![
                ("a".to_owned(), DataType::Real),
                ("b".to_owned(), DataType::Str),
                ("c".to_owned(), DataType::Real),
                ("d".to_owned(), DataType::Str),
            ]),
            has_header: Some(false),
            ..ImportOptions::default()
        };
        let r = import_bytes(SAMPLE, &opts).unwrap();
        assert_eq!(r.table.column("a").unwrap().value(0), Value::Real(1.0));
        assert_eq!(
            r.table.column("d").unwrap().value(0),
            Value::Str("1995-01-01".into())
        );
    }

    #[test]
    fn parse_errors_become_nulls() {
        // A clean sample infers Integer; a dirty value past the sample
        // window (100 lines) parses as NULL and is counted.
        let mut data = Vec::new();
        for i in 0..150 {
            if i == 140 {
                data.extend_from_slice(b"oops|z|\n");
            } else {
                data.extend_from_slice(format!("{i}|z|\n").as_bytes());
            }
        }
        let r = import_bytes(&data, &ImportOptions::default()).unwrap();
        assert_eq!(r.parse_errors, 1);
        assert_eq!(r.table.columns[0].value(140), Value::Null);
        assert_eq!(r.table.columns[0].value(141), Value::Int(141));
    }

    #[test]
    fn parallel_and_serial_agree() {
        let serial = import_bytes(
            SAMPLE,
            &ImportOptions {
                parallel: false,
                ..ImportOptions::default()
            },
        )
        .unwrap();
        let parallel = import_bytes(
            SAMPLE,
            &ImportOptions {
                parallel: true,
                ..ImportOptions::default()
            },
        )
        .unwrap();
        for (a, b) in serial.table.columns.iter().zip(&parallel.table.columns) {
            for row in 0..serial.table.row_count() {
                assert_eq!(a.value(row), b.value(row));
            }
        }
    }

    #[test]
    fn locale_parsers_agree_with_buffer_parsers() {
        let with_locale = import_bytes(
            SAMPLE,
            &ImportOptions {
                parser: ParserKind::LocaleLocking,
                ..ImportOptions::default()
            },
        )
        .unwrap();
        let buffer = import_bytes(SAMPLE, &ImportOptions::default()).unwrap();
        for (a, b) in with_locale.table.columns.iter().zip(&buffer.table.columns) {
            for row in 0..buffer.table.row_count() {
                assert_eq!(a.value(row), b.value(row));
            }
        }
    }

    #[test]
    fn tokenize_and_bandwidth() {
        let dir = std::env::temp_dir().join("tde_textscan_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("s.tbl");
        std::fs::write(&p, SAMPLE).unwrap();
        let (bytes, _sum) = read_bandwidth(&p).unwrap();
        assert_eq!(bytes, SAMPLE.len() as u64);
        let (_, rows, fields) = tokenize(&p).unwrap();
        assert_eq!(rows, 4);
        assert_eq!(fields, 16);
    }

    #[test]
    fn split_writes_column_files() {
        let dir = std::env::temp_dir().join("tde_textscan_split");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("s.tbl");
        std::fs::write(&p, SAMPLE).unwrap();
        let out = dir.join("out");
        let (read, written) = split(&p, &out).unwrap();
        assert_eq!(read, SAMPLE.len() as u64);
        assert!(written > 0);
        let col1 = std::fs::read_to_string(out.join("col_1.txt")).unwrap();
        assert_eq!(col1, "\"alpha\"\n\"beta\"\n\"alpha\"\n\"gamma\"\n");
    }

    #[test]
    fn short_rows_pad_with_nulls() {
        let data = b"1|a|\n2|\n3|c|\n";
        let r = import_bytes(data, &ImportOptions::default()).unwrap();
        assert_eq!(r.table.row_count(), 3);
        assert_eq!(r.table.columns[1].value(1), Value::Null);
    }
}

//! Column typing and header detection (paper §5.1.1).
//!
//! A sample block of rows is typed by comparing the results of parsers for
//! each data type to see which produced the fewest errors. The winning
//! parser then scans the whole file. The parsers are also applied to the
//! first row: no errors ⇒ the file has no header and every value is data;
//! errors ⇒ the first row is the column names.

use crate::parsers;
use crate::sniff::{detect_separator, sample_lines, split_fields, SAMPLE_LINES};
use tde_types::DataType;

/// Inference result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferredSchema {
    /// Field separator byte.
    pub separator: u8,
    /// Whether the first row is a header.
    pub has_header: bool,
    /// Column names: from the header row, or `col_0 …` when absent.
    pub names: Vec<String>,
    /// Inferred logical types.
    pub types: Vec<DataType>,
}

/// Count parse errors for `dtype` over the sampled fields of one column.
fn errors_for(dtype: DataType, fields: &[&[u8]]) -> usize {
    fields
        .iter()
        .filter(|f| match dtype {
            DataType::Bool => parsers::parse_bool(f).is_err(),
            DataType::Integer => parsers::parse_i64(f).is_err(),
            DataType::Real => parsers::parse_f64(f).is_err(),
            DataType::Date => parsers::parse_date(f).is_err(),
            DataType::Timestamp => parsers::parse_timestamp(f).is_err(),
            DataType::Str => false,
        })
        .count()
}

/// Candidate types in tie-break priority order (most specific first;
/// `Str` parses anything and comes last).
const CANDIDATE_TYPES: [DataType; 6] = [
    DataType::Bool,
    DataType::Date,
    DataType::Timestamp,
    DataType::Integer,
    DataType::Real,
    DataType::Str,
];

/// Fraction of sampled fields a typed parser may fail on before the
/// column falls back to `Str` (which parses anything). A small tolerance
/// keeps one dirty value in a sample from stringifying a numeric column.
const ERROR_TOLERANCE: f64 = 0.05;

/// Pick the type with the fewest errors over the sample (first in
/// priority order on ties — zero-error `Integer` beats zero-error `Real`;
/// `Str` wins only when every typed parser exceeds the error tolerance).
pub fn infer_type(fields: &[&[u8]]) -> DataType {
    let mut best = DataType::Str;
    let mut best_errors = usize::MAX;
    let allowed = (fields.len() as f64 * ERROR_TOLERANCE).floor() as usize;
    for dtype in CANDIDATE_TYPES {
        if dtype == DataType::Str {
            continue;
        }
        let e = errors_for(dtype, fields);
        if e < best_errors {
            best = dtype;
            best_errors = e;
        }
        if best_errors == 0 {
            break;
        }
    }
    if best_errors > allowed {
        DataType::Str
    } else {
        best
    }
}

/// Infer separator, header and column types from the head of a file.
pub fn infer_schema(data: &[u8]) -> InferredSchema {
    let separator = detect_separator(data);
    let lines = sample_lines(data, SAMPLE_LINES);
    if lines.is_empty() {
        return InferredSchema {
            separator,
            has_header: false,
            names: vec![],
            types: vec![],
        };
    }
    let mut first_fields = Vec::new();
    split_fields(lines[0], separator, &mut first_fields);
    let ncols = first_fields.len();

    // Type each column from the sample *excluding* the first row.
    let mut columns: Vec<Vec<&[u8]>> = vec![Vec::new(); ncols];
    let mut scratch = Vec::new();
    for line in lines.iter().skip(1) {
        split_fields(line, separator, &mut scratch);
        for (c, f) in scratch.iter().enumerate().take(ncols) {
            columns[c].push(f);
        }
    }
    // Single-line files type from that one line.
    let single_line = lines.len() == 1;
    if single_line {
        for (c, f) in first_fields.iter().enumerate() {
            columns[c].push(f);
        }
    }
    let types: Vec<DataType> = columns.iter().map(|c| infer_type(c)).collect();

    // Header detection: apply the winning parsers to the first row; any
    // error means the first row is column names.
    let has_header = !single_line
        && first_fields
            .iter()
            .zip(&types)
            .any(|(f, &t)| errors_for(t, &[f]) > 0);

    let names: Vec<String> = if has_header {
        first_fields
            .iter()
            .map(|f| String::from_utf8_lossy(f).into_owned())
            .collect()
    } else {
        (0..ncols).map(|i| format!("col_{i}")).collect()
    };
    InferredSchema {
        separator,
        has_header,
        names,
        types,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_tpch_like_rows() {
        let data = b"1|Customer#000000001|xyz|15|25-989-741-2988|711.56|BUILDING|note|\n\
                     2|Customer#000000002|abc|13|23-768-687-3665|121.65|AUTOMOBILE|note|\n\
                     3|Customer#000000003|def|1|11-719-748-3364|7498.12|MACHINERY|note|\n";
        let s = infer_schema(data);
        assert_eq!(s.separator, b'|');
        assert!(!s.has_header);
        assert_eq!(
            s.types,
            vec![
                DataType::Integer,
                DataType::Str,
                DataType::Str,
                DataType::Integer,
                DataType::Str,
                DataType::Real,
                DataType::Str,
                DataType::Str
            ]
        );
        assert_eq!(s.names[0], "col_0");
    }

    #[test]
    fn detects_header_row() {
        let data = b"flight_date,carrier,delay,cancelled\n\
                     1998-01-01,AA,5,false\n\
                     1998-01-02,DL,-3,true\n";
        let s = infer_schema(data);
        assert!(s.has_header);
        assert_eq!(
            s.names,
            vec!["flight_date", "carrier", "delay", "cancelled"]
        );
        assert_eq!(
            s.types,
            vec![
                DataType::Date,
                DataType::Str,
                DataType::Integer,
                DataType::Bool
            ]
        );
    }

    #[test]
    fn all_string_header_is_ambiguous_data() {
        // When every column is Str, the header parses fine and is treated
        // as data — the documented limitation the schema override solves.
        let data = b"name,city\nalice,berlin\nbob,paris\n";
        let s = infer_schema(data);
        assert!(!s.has_header);
        assert_eq!(s.types, vec![DataType::Str, DataType::Str]);
    }

    #[test]
    fn nulls_do_not_break_typing() {
        let data = b"h1,h2\n1,\n,2.5\n3,\n";
        let s = infer_schema(data);
        assert_eq!(s.types, vec![DataType::Integer, DataType::Real]);
    }

    #[test]
    fn fewest_errors_wins_within_tolerance() {
        // One bad value in 40 integers (2.5% < 5% tolerance): Integer wins.
        let mut fields: Vec<&[u8]> = vec![b"7"; 39];
        fields.push(b"x");
        assert_eq!(infer_type(&fields), DataType::Integer);
        // One bad value in 3 (33%): fall back to Str.
        let dates: Vec<&[u8]> = vec![b"1995-01-01", b"1995-01-02", b"oops"];
        assert_eq!(infer_type(&dates), DataType::Str);
        // All-clean dates stay dates.
        let dates: Vec<&[u8]> = vec![b"1995-01-01", b"1995-01-02"];
        assert_eq!(infer_type(&dates), DataType::Date);
    }

    #[test]
    fn timestamp_detection() {
        let fields: Vec<&[u8]> = vec![b"1995-01-01 10:00:00", b"1995-01-02 11:30:00"];
        assert_eq!(infer_type(&fields), DataType::Timestamp);
    }

    #[test]
    fn single_line_file() {
        let s = infer_schema(b"1|2|3|\n");
        assert!(!s.has_header);
        assert_eq!(s.types, vec![DataType::Integer; 3]);
    }
}

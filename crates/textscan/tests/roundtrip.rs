//! Property tests for the import pipeline: any typed data we serialize to
//! text must come back identical through sniffing, inference and parsing.

include!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/common/proptest_env.rs"
));

use proptest::collection::vec;
use proptest::prelude::*;
use tde_textscan::{import_bytes, ImportOptions};
use tde_types::datetime::ymd_from_days;
use tde_types::Value;

/// A generated cell value we can print and expect back.
#[derive(Debug, Clone)]
enum Cell {
    Int(i64),
    Date(i64),
    Str(String),
    Null,
}

fn cell_strategy(kind: u8) -> BoxedStrategy<Cell> {
    match kind {
        0 => (any::<i32>()).prop_map(|v| Cell::Int(i64::from(v))).boxed(),
        1 => (0i64..40_000).prop_map(Cell::Date).boxed(),
        _ => "[a-z]{1,12}".prop_map(Cell::Str).boxed(),
    }
}

fn render(cell: &Cell) -> String {
    match cell {
        Cell::Int(v) => v.to_string(),
        Cell::Date(d) => {
            let (y, m, dd) = ymd_from_days(*d);
            format!("{y:04}-{m:02}-{dd:02}")
        }
        Cell::Str(s) => s.clone(),
        Cell::Null => String::new(),
    }
}

fn expected(cell: &Cell) -> Value {
    match cell {
        Cell::Int(v) => Value::Int(*v),
        Cell::Date(d) => Value::Date(*d),
        Cell::Str(s) => Value::Str(s.clone()),
        Cell::Null => Value::Null,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(24)))]

    #[test]
    fn typed_columns_roundtrip(
        kinds in vec(0u8..3, 1..5),
        nrows in 2usize..120,
        seed in any::<u64>(),
        nulls in vec(any::<bool>(), 0..200),
    ) {
        // Build a deterministic grid of cells from the strategies.
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let mut grid: Vec<Vec<Cell>> = Vec::new();
        for r in 0..nrows {
            let mut row = Vec::new();
            for (c, &k) in kinds.iter().enumerate() {
                let null = nulls.get((r * kinds.len() + c) % nulls.len().max(1)).copied().unwrap_or(false);
                if null && r > 0 {
                    // Keep the first row non-null so inference sees types.
                    row.push(Cell::Null);
                } else {
                    let v = cell_strategy(k)
                        .new_tree(&mut runner)
                        .unwrap()
                        .current();
                    row.push(v);
                }
            }
            grid.push(row);
        }
        let _ = seed;
        // Render with a header (so empty string columns don't confuse
        // inference) using the pipe separator.
        let mut text = String::new();
        let names: Vec<String> = (0..kinds.len()).map(|c| format!("c{c}")).collect();
        text.push_str(&names.join("|"));
        text.push('\n');
        for row in &grid {
            let cells: Vec<String> = row.iter().map(render).collect();
            text.push_str(&cells.join("|"));
            text.push('\n');
        }

        let schema: Vec<(String, tde_types::DataType)> = kinds
            .iter()
            .enumerate()
            .map(|(c, &k)| {
                let t = match k {
                    0 => tde_types::DataType::Integer,
                    1 => tde_types::DataType::Date,
                    _ => tde_types::DataType::Str,
                };
                (format!("c{c}"), t)
            })
            .collect();
        let r = import_bytes(
            text.as_bytes(),
            &ImportOptions {
                schema: Some(schema),
                has_header: Some(true),
                ..Default::default()
            },
        )
        .unwrap();
        prop_assert_eq!(r.table.row_count() as usize, nrows);
        prop_assert_eq!(r.parse_errors, 0);
        for (ri, row) in grid.iter().enumerate() {
            for (ci, cell) in row.iter().enumerate() {
                let got = r.table.columns[ci].value(ri as u64);
                let want = expected(cell);
                // Empty strings parse as NULL for string columns too.
                let want = match want {
                    Value::Str(s) if s.is_empty() => Value::Null,
                    other => other,
                };
                prop_assert_eq!(got, want, "row {} col {}", ri, ci);
            }
        }
    }

    #[test]
    fn inference_recovers_types_without_schema(nrows in 5usize..200, seed in any::<u64>()) {
        let mut text = String::from("num|day|word\n");
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s >> 33
        };
        for _ in 0..nrows {
            let d = (next() % 20_000) as i64;
            let (y, m, dd) = ymd_from_days(d);
            let n = next() as i64 % 100_000;
            text.push_str(&format!("{n}|{y:04}-{m:02}-{dd:02}|w{}\n", next() % 50));
        }
        let r = import_bytes(text.as_bytes(), &ImportOptions::default()).unwrap();
        let types: Vec<tde_types::DataType> =
            r.table.columns.iter().map(|c| c.dtype).collect();
        prop_assert_eq!(
            types,
            vec![
                tde_types::DataType::Integer,
                tde_types::DataType::Date,
                tde_types::DataType::Str
            ]
        );
        prop_assert!(r.schema.has_header);
        prop_assert_eq!(r.parse_errors, 0);
    }
}

//! Tables: named collections of equal-length columns.

use crate::column::{Column, Compression};
use tde_encodings::Algorithm;
use tde_types::DataType;

/// A read-only table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// The columns, all the same length.
    pub columns: Vec<Column>,
}

impl Table {
    /// Build a table, validating column lengths.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Table {
        if let Some(first) = columns.first() {
            for c in &columns {
                assert_eq!(
                    c.len(),
                    first.len(),
                    "column {} has {} rows, expected {}",
                    c.name,
                    c.len(),
                    first.len()
                );
            }
        }
        Table {
            name: name.into(),
            columns,
        }
    }

    /// Number of rows.
    pub fn row_count(&self) -> u64 {
        self.columns.first().map_or(0, Column::len)
    }

    /// Find a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Total physical size of every column.
    pub fn physical_size(&self) -> u64 {
        self.columns.iter().map(Column::physical_size).sum()
    }

    /// Total logical (un-encoded) size of every column.
    pub fn logical_size(&self) -> u64 {
        self.columns.iter().map(Column::logical_size).sum()
    }

    /// Per-column compression telemetry: what each column is physically
    /// stored as and how much the encoding + compression save.
    pub fn compression_telemetry(&self) -> Vec<ColumnTelemetry> {
        self.columns
            .iter()
            .map(|c| {
                let h = c.data.header();
                let compression = match &c.compression {
                    Compression::None => "none".to_string(),
                    Compression::Array { dictionary, sorted } => format!(
                        "array[{} value(s){}]",
                        dictionary.len(),
                        if *sorted { ", sorted" } else { "" }
                    ),
                    Compression::Heap { heap, sorted } => format!(
                        "heap[{} string(s){}]",
                        heap.len(),
                        if *sorted { ", sorted" } else { "" }
                    ),
                };
                ColumnTelemetry {
                    column: c.name.clone(),
                    dtype: c.dtype,
                    algorithm: c.data.algorithm(),
                    packed_bits: h.bits,
                    compression,
                    cardinality: c.metadata.cardinality,
                    physical_bytes: c.physical_size(),
                    logical_bytes: c.logical_size(),
                }
            })
            .collect()
    }
}

/// One column's compression telemetry (see
/// [`Table::compression_telemetry`]).
#[derive(Debug, Clone)]
pub struct ColumnTelemetry {
    /// Column name.
    pub column: String,
    /// Logical type.
    pub dtype: DataType,
    /// Encoding algorithm of the stored stream.
    pub algorithm: Algorithm,
    /// Packing bits per value (0 when the algorithm does not bit-pack).
    pub packed_bits: u8,
    /// Compression layer, rendered (`none`, `array[...]`, `heap[...]`).
    pub compression: String,
    /// Domain cardinality, when known.
    pub cardinality: Option<u64>,
    /// Bytes actually stored (stream + dictionaries + heaps).
    pub physical_bytes: u64,
    /// Bytes an un-encoded representation would need.
    pub logical_bytes: u64,
}

impl ColumnTelemetry {
    /// Logical-to-physical compression ratio (1.0 when physical is zero).
    pub fn ratio(&self) -> f64 {
        if self.physical_bytes == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / self.physical_bytes as f64
        }
    }

    /// The telemetry as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"column\":\"{}\",\"dtype\":\"{:?}\",\"algorithm\":\"{:?}\",\"packed_bits\":{},\
             \"compression\":\"{}\",\"cardinality\":{},\"physical_bytes\":{},\
             \"logical_bytes\":{},\"ratio\":{:.3}}}",
            tde_obs::json_escape(&self.column),
            self.dtype,
            self.algorithm,
            self.packed_bits,
            tde_obs::json_escape(&self.compression),
            self.cardinality
                .map_or("null".to_string(), |c| c.to_string()),
            self.physical_bytes,
            self.logical_bytes,
            self.ratio()
        )
    }
}

impl std::fmt::Display for ColumnTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<16} {:<9} {:?}({} bits) {:<24} card={:<8} {} / {} bytes ({:.1}x)",
            self.column,
            format!("{:?}", self.dtype),
            self.algorithm,
            self.packed_bits,
            self.compression,
            self.cardinality.map_or("?".to_string(), |c| c.to_string()),
            self.physical_bytes,
            self.logical_bytes,
            self.ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_encodings::dynamic::encode_all;
    use tde_types::{DataType, Width};

    fn col(name: &str, vals: &[i64]) -> Column {
        Column::scalar(
            name,
            DataType::Integer,
            encode_all(vals, Width::W8, true).stream,
        )
    }

    #[test]
    fn lookup_and_counts() {
        let t = Table::new("t", vec![col("a", &[1, 2, 3]), col("b", &[4, 5, 6])]);
        assert_eq!(t.row_count(), 3);
        assert!(t.column("a").is_some());
        assert!(t.column("z").is_none());
        assert_eq!(t.column_index("b"), Some(1));
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn mismatched_lengths_panic() {
        Table::new("t", vec![col("a", &[1, 2]), col("b", &[1])]);
    }

    #[test]
    fn empty_table() {
        let t = Table::new("t", vec![]);
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.physical_size(), 0);
    }
}

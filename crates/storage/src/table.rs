//! Tables: named collections of equal-length columns.

use crate::column::Column;

/// A read-only table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// The columns, all the same length.
    pub columns: Vec<Column>,
}

impl Table {
    /// Build a table, validating column lengths.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Table {
        if let Some(first) = columns.first() {
            for c in &columns {
                assert_eq!(
                    c.len(),
                    first.len(),
                    "column {} has {} rows, expected {}",
                    c.name,
                    c.len(),
                    first.len()
                );
            }
        }
        Table { name: name.into(), columns }
    }

    /// Number of rows.
    pub fn row_count(&self) -> u64 {
        self.columns.first().map_or(0, Column::len)
    }

    /// Find a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Total physical size of every column.
    pub fn physical_size(&self) -> u64 {
        self.columns.iter().map(Column::physical_size).sum()
    }

    /// Total logical (un-encoded) size of every column.
    pub fn logical_size(&self) -> u64 {
        self.columns.iter().map(Column::logical_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_encodings::dynamic::encode_all;
    use tde_types::{DataType, Width};

    fn col(name: &str, vals: &[i64]) -> Column {
        Column::scalar(name, DataType::Integer, encode_all(vals, Width::W8, true).stream)
    }

    #[test]
    fn lookup_and_counts() {
        let t = Table::new("t", vec![col("a", &[1, 2, 3]), col("b", &[4, 5, 6])]);
        assert_eq!(t.row_count(), 3);
        assert!(t.column("a").is_some());
        assert!(t.column("z").is_none());
        assert_eq!(t.column_index("b"), Some(1));
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn mismatched_lengths_panic() {
        Table::new("t", vec![col("a", &[1, 2]), col("b", &[1])]);
    }

    #[test]
    fn empty_table() {
        let t = Table::new("t", vec![]);
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.physical_size(), 0);
    }
}

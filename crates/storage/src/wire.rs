//! Wire-format primitives shared by the v1 single-file format and the
//! v2 paged format (crate `tde-pager`): length-prefixed strings and byte
//! blobs, fixed-width integers, and the per-column metadata record.
//!
//! Everything here is written little-endian. The readers treat their
//! input as untrusted: length prefixes are bounded reads (a lying prefix
//! on a truncated file yields an [`io::Error`], never an over-allocation)
//! and enum tags are validated.

use std::io::{self, Read, Write};
use tde_encodings::metadata::Knowledge;
use tde_encodings::ColumnMetadata;
use tde_types::Width;

/// Upper bound on speculative pre-allocation while reading a
/// length-prefixed blob. A corrupt length prefix can claim any size; the
/// reader only ever reserves up to this much ahead of the bytes actually
/// arriving, so absurd prefixes fail with a clean error instead of OOM.
pub const MAX_PREALLOC: usize = 1 << 20;

/// An `InvalidData` error for corrupt database files.
pub fn corrupt(msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt database file: {msg}"),
    )
}

/// Write a u64-length-prefixed string.
pub fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    w.write_all(&(s.len() as u64).to_le_bytes())?;
    w.write_all(s.as_bytes())
}

/// Write a u64-length-prefixed byte blob.
pub fn write_bytes(w: &mut impl Write, b: &[u8]) -> io::Result<()> {
    w.write_all(&(b.len() as u64).to_le_bytes())?;
    w.write_all(b)
}

/// Read a little-endian u32.
pub fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Read a little-endian u64.
pub fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Read a little-endian i64.
pub fn read_i64(r: &mut impl Read) -> io::Result<i64> {
    Ok(read_u64(r)? as i64)
}

/// Read a u64-length-prefixed byte blob, bounded: the buffer grows with
/// the bytes actually read, so a corrupt length prefix cannot trigger a
/// huge allocation — it fails with `UnexpectedEof` when the input ends.
pub fn read_bytes(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let len = read_u64(r)?;
    let mut b = Vec::with_capacity((len as usize).min(MAX_PREALLOC));
    let copied = r.take(len).read_to_end(&mut b)?;
    if copied as u64 != len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("corrupt database file: blob claims {len} bytes, got {copied}"),
        ));
    }
    Ok(b)
}

/// Read a u64-length-prefixed UTF-8 string (bounded like [`read_bytes`]).
pub fn read_str(r: &mut impl Read) -> io::Result<String> {
    String::from_utf8(read_bytes(r)?).map_err(|_| corrupt("non-UTF-8 string"))
}

/// Write a three-valued metadata fact as one byte.
pub fn write_knowledge(w: &mut impl Write, k: Knowledge) -> io::Result<()> {
    w.write_all(&[match k {
        Knowledge::Unknown => 0,
        Knowledge::True => 1,
        Knowledge::False => 2,
    }])
}

/// Read a three-valued metadata fact.
pub fn read_knowledge(r: &mut impl Read) -> io::Result<Knowledge> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(match b[0] {
        0 => Knowledge::Unknown,
        1 => Knowledge::True,
        2 => Knowledge::False,
        _ => return Err(corrupt("bad knowledge byte")),
    })
}

/// Write an optional i64 as a presence byte plus the value.
pub fn write_opt_i64(w: &mut impl Write, v: Option<i64>) -> io::Result<()> {
    match v {
        None => w.write_all(&[0]),
        Some(x) => {
            w.write_all(&[1])?;
            w.write_all(&x.to_le_bytes())
        }
    }
}

/// Read an optional i64.
pub fn read_opt_i64(r: &mut impl Read) -> io::Result<Option<i64>> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(match b[0] {
        0 => None,
        _ => Some(read_i64(r)?),
    })
}

/// Write a column metadata record (fixed 33 bytes worst case; the v2
/// directory relies on this being written byte-for-byte identically by
/// the size counter and the real writer).
pub fn write_metadata(w: &mut impl Write, m: &ColumnMetadata) -> io::Result<()> {
    write_knowledge(w, m.sorted_asc)?;
    write_knowledge(w, m.dense)?;
    write_knowledge(w, m.unique)?;
    write_knowledge(w, m.has_nulls)?;
    write_knowledge(w, m.sorted_heap_tokens)?;
    write_opt_i64(w, m.min)?;
    write_opt_i64(w, m.max)?;
    write_opt_i64(w, m.cardinality.map(|c| c as i64))?;
    w.write_all(&[m.width.bytes() as u8])
}

/// Read a column metadata record.
pub fn read_metadata(r: &mut impl Read) -> io::Result<ColumnMetadata> {
    let sorted_asc = read_knowledge(r)?;
    let dense = read_knowledge(r)?;
    let unique = read_knowledge(r)?;
    let has_nulls = read_knowledge(r)?;
    let sorted_heap_tokens = read_knowledge(r)?;
    let min = read_opt_i64(r)?;
    let max = read_opt_i64(r)?;
    let cardinality = read_opt_i64(r)?.map(|c| c as u64);
    let mut wb = [0u8; 1];
    r.read_exact(&mut wb)?;
    let width = Width::from_bytes(wb[0] as usize).ok_or_else(|| corrupt("bad width"))?;
    Ok(ColumnMetadata {
        sorted_asc,
        dense,
        unique,
        min,
        max,
        cardinality,
        has_nulls,
        sorted_heap_tokens,
        width,
    })
}

/// Validate an encoded stream buffer read from untrusted input: the
/// header must parse and the logical length must match what the
/// surrounding directory claims for the column.
pub fn validate_stream(buf: &[u8], expected_rows: u64) -> io::Result<()> {
    let h = tde_encodings::header::HeaderView::try_parse(buf)
        .ok_or_else(|| corrupt("bad encoded stream header"))?;
    if h.logical_size != expected_rows {
        return Err(corrupt(&format!(
            "stream claims {} rows, table has {expected_rows}",
            h.logical_size
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_blob_read_rejects_lying_prefix() {
        // Claims u64::MAX bytes but carries four: clean error, no OOM.
        let mut buf = Vec::new();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(b"abcd");
        let err = read_bytes(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn blob_roundtrip() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, b"hello").unwrap();
        assert_eq!(read_bytes(&mut buf.as_slice()).unwrap(), b"hello");
        let mut buf = Vec::new();
        write_str(&mut buf, "caf\u{e9}").unwrap();
        assert_eq!(read_str(&mut buf.as_slice()).unwrap(), "caf\u{e9}");
    }

    #[test]
    fn metadata_roundtrip() {
        use tde_encodings::metadata::Knowledge;
        let m = ColumnMetadata {
            sorted_asc: Knowledge::True,
            dense: Knowledge::False,
            unique: Knowledge::Unknown,
            min: Some(-3),
            max: Some(99),
            cardinality: Some(7),
            has_nulls: Knowledge::False,
            sorted_heap_tokens: Knowledge::True,
            width: Width::W2,
        };
        let mut buf = Vec::new();
        write_metadata(&mut buf, &m).unwrap();
        let m2 = read_metadata(&mut buf.as_slice()).unwrap();
        assert_eq!(format!("{m:?}"), format!("{m2:?}"));
    }
}

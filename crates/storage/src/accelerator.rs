//! The heap accelerator (paper §3.4.3, §5.1.4).
//!
//! An optional object attached to a string column during creation that
//! maintains a hash table of every string seen so far. It keeps the heap
//! *distinct* (each string stored once, so columns get unique tokens) and
//! tracks domain statistics as a side effect. The table maps string hashes
//! to candidate tokens and confirms with a heap comparison — the "heap
//! collision comparisons" whose cost the paper weighs against the I/O
//! saved. The accelerator gives up once the entry count passes its
//! threshold (2³¹ in the paper; configurable here so tests and benches can
//! exercise the give-up path).

use crate::heap::StringHeap;
use std::collections::HashMap;
use tde_types::Collation;

/// Default give-up threshold (paper §5.1.4).
pub const DEFAULT_GIVE_UP: u64 = 1 << 31;

/// Deduplicating accelerator over a [`StringHeap`].
#[derive(Debug)]
pub struct HeapAccelerator {
    table: HashMap<u64, Vec<u64>>,
    give_up_at: u64,
    active: bool,
    collation: Collation,
    inserts: u64,
    collisions: u64,
    sorted_so_far: bool,
    last: Option<String>,
}

impl HeapAccelerator {
    /// A new accelerator with the paper's give-up threshold.
    pub fn new(collation: Collation) -> HeapAccelerator {
        HeapAccelerator::with_threshold(collation, DEFAULT_GIVE_UP)
    }

    /// A new accelerator with a custom give-up threshold.
    pub fn with_threshold(collation: Collation, give_up_at: u64) -> HeapAccelerator {
        HeapAccelerator {
            table: HashMap::new(),
            give_up_at,
            active: true,
            collation,
            inserts: 0,
            collisions: 0,
            sorted_so_far: true,
            last: None,
        }
    }

    /// Whether the accelerator is still deduplicating.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Whether every string so far arrived in non-descending collation
    /// order (fortuitous sortedness, visible in Fig 6's no-encoding bars).
    pub fn input_was_sorted(&self) -> bool {
        self.sorted_so_far
    }

    /// Distinct strings interned while active.
    pub fn distinct_count(&self) -> u64 {
        self.table.values().map(|v| v.len() as u64).sum()
    }

    /// Heap comparisons performed to confirm hash matches.
    pub fn collision_comparisons(&self) -> u64 {
        self.collisions
    }

    /// Intern `s`: return the existing token when the heap already holds
    /// the string, otherwise append it. Once past the threshold the
    /// accelerator deactivates and every string is appended verbatim.
    pub fn intern(&mut self, heap: &mut StringHeap, s: &str) -> u64 {
        self.inserts += 1;
        if let Some(prev) = &self.last {
            if self.sorted_so_far && self.collation.compare(prev, s) == std::cmp::Ordering::Greater
            {
                self.sorted_so_far = false;
            }
        }
        if self.last.as_deref() != Some(s) {
            self.last = Some(s.to_owned());
        }
        if !self.active {
            return heap.append(s);
        }
        let hash = self.collation.hash(s);
        if let Some(tokens) = self.table.get(&hash) {
            for &t in tokens {
                self.collisions += 1;
                if heap.get_raw(t) == s {
                    return t;
                }
            }
        }
        let token = heap.append(s);
        self.table.entry(hash).or_default().push(token);
        if heap.len() >= self.give_up_at {
            self.active = false;
            self.table = HashMap::new(); // release the memory
        }
        token
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedupes() {
        let mut heap = StringHeap::new();
        let mut acc = HeapAccelerator::new(Collation::Binary);
        let a = acc.intern(&mut heap, "x");
        let b = acc.intern(&mut heap, "y");
        let c = acc.intern(&mut heap, "x");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(heap.len(), 2);
        assert_eq!(acc.distinct_count(), 2);
    }

    #[test]
    fn gives_up_past_threshold() {
        let mut heap = StringHeap::new();
        let mut acc = HeapAccelerator::with_threshold(Collation::Binary, 3);
        for s in ["a", "b", "c"] {
            acc.intern(&mut heap, s);
        }
        assert!(!acc.is_active());
        // Duplicates are no longer caught.
        acc.intern(&mut heap, "a");
        assert_eq!(heap.len(), 4);
    }

    #[test]
    fn tracks_input_order() {
        let mut heap = StringHeap::new();
        let mut acc = HeapAccelerator::new(Collation::Binary);
        for s in ["a", "b", "b", "c"] {
            acc.intern(&mut heap, s);
        }
        assert!(acc.input_was_sorted());
        acc.intern(&mut heap, "a");
        assert!(!acc.input_was_sorted());
    }

    #[test]
    fn collation_aware_dedup() {
        let mut heap = StringHeap::new();
        let mut acc = HeapAccelerator::new(Collation::Binary);
        let a = acc.intern(&mut heap, "Hello");
        let b = acc.intern(&mut heap, "hello");
        assert_ne!(a, b, "binary collation treats cases as distinct");
    }

    #[test]
    fn hash_collisions_resolved_by_heap_comparison() {
        // Force shared buckets by inserting many strings; dedup must stay
        // exact regardless of hash behaviour.
        let mut heap = StringHeap::new();
        let mut acc = HeapAccelerator::new(Collation::Binary);
        let mut tokens = Vec::new();
        for i in 0..1000 {
            tokens.push(acc.intern(&mut heap, &format!("s{i}")));
        }
        for (i, &expected) in tokens.iter().enumerate() {
            assert_eq!(acc.intern(&mut heap, &format!("s{i}")), expected);
        }
        assert_eq!(heap.len(), 1000);
    }
}

//! The single-file database format (paper §2.3.3).
//!
//! A TDE database must be choosable in a file-selection dialog: one file.
//! Extracts are read-only, so the writer simply concatenates every table's
//! column streams (with their heaps and dictionaries) behind a directory.
//! Compression applied at the column level reduces the size — and thus the
//! cost — of producing this file, which is the storage half of Fig 5.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "TDE1" | format version u32 | table count u32
//! per table: name | row count u64 | column count u32
//!   per column: name | dtype u8 | compression tag u8 | metadata
//!               | stream bytes | [dictionary] | [heap bytes | sorted u8]
//! ```
//!
//! Strings and byte blobs are u64-length-prefixed.

use crate::column::{Column, Compression};
use crate::heap::StringHeap;
use crate::table::Table;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;
use tde_encodings::metadata::Knowledge;
use tde_encodings::{ColumnMetadata, EncodedStream};
use tde_types::{DataType, Width};

const MAGIC: &[u8; 4] = b"TDE1";
const VERSION: u32 = 1;

/// A collection of tables stored in (or loaded from) one file.
#[derive(Debug, Clone, Default)]
pub struct Database {
    /// The tables.
    pub tables: Vec<Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Add a table.
    pub fn add_table(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Find a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Serialize to one file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Serialize into any writer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.tables.len() as u32).to_le_bytes())?;
        for t in &self.tables {
            write_str(w, &t.name)?;
            w.write_all(&t.row_count().to_le_bytes())?;
            w.write_all(&(t.columns.len() as u32).to_le_bytes())?;
            for c in &t.columns {
                write_column(w, c)?;
            }
        }
        Ok(())
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Database> {
        let bytes = std::fs::read(path)?;
        Database::read_from(&mut bytes.as_slice())
    }

    /// Deserialize from any reader.
    pub fn read_from(r: &mut impl Read) -> io::Result<Database> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = read_u32(r)?;
        if version != VERSION {
            return Err(corrupt("unsupported version"));
        }
        let ntables = read_u32(r)? as usize;
        let mut tables = Vec::with_capacity(ntables);
        for _ in 0..ntables {
            let name = read_str(r)?;
            let _rows = read_u64(r)?;
            let ncols = read_u32(r)? as usize;
            let mut columns = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                columns.push(read_column(r)?);
            }
            tables.push(Table::new(name, columns));
        }
        Ok(Database { tables })
    }

    /// Size of the serialized file in bytes.
    pub fn serialized_size(&self) -> u64 {
        let mut counter = CountingWriter::default();
        self.write_to(&mut counter)
            .expect("counting writer cannot fail");
        counter.bytes
    }
}

/// Writer that only counts (for size reporting without I/O).
#[derive(Default)]
struct CountingWriter {
    bytes: u64,
}

impl Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes += buf.len() as u64;
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt database file: {msg}"),
    )
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    w.write_all(&(s.len() as u64).to_le_bytes())?;
    w.write_all(s.as_bytes())
}

fn write_bytes(w: &mut impl Write, b: &[u8]) -> io::Result<()> {
    w.write_all(&(b.len() as u64).to_le_bytes())?;
    w.write_all(b)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_i64(r: &mut impl Read) -> io::Result<i64> {
    Ok(read_u64(r)? as i64)
}

fn read_bytes(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let len = read_u64(r)? as usize;
    let mut b = vec![0u8; len];
    r.read_exact(&mut b)?;
    Ok(b)
}

fn read_str(r: &mut impl Read) -> io::Result<String> {
    String::from_utf8(read_bytes(r)?).map_err(|_| corrupt("non-UTF-8 string"))
}

fn write_knowledge(w: &mut impl Write, k: Knowledge) -> io::Result<()> {
    w.write_all(&[match k {
        Knowledge::Unknown => 0,
        Knowledge::True => 1,
        Knowledge::False => 2,
    }])
}

fn read_knowledge(r: &mut impl Read) -> io::Result<Knowledge> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(match b[0] {
        0 => Knowledge::Unknown,
        1 => Knowledge::True,
        2 => Knowledge::False,
        _ => return Err(corrupt("bad knowledge byte")),
    })
}

fn write_opt_i64(w: &mut impl Write, v: Option<i64>) -> io::Result<()> {
    match v {
        None => w.write_all(&[0]),
        Some(x) => {
            w.write_all(&[1])?;
            w.write_all(&x.to_le_bytes())
        }
    }
}

fn read_opt_i64(r: &mut impl Read) -> io::Result<Option<i64>> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(match b[0] {
        0 => None,
        _ => Some(read_i64(r)?),
    })
}

fn write_metadata(w: &mut impl Write, m: &ColumnMetadata) -> io::Result<()> {
    write_knowledge(w, m.sorted_asc)?;
    write_knowledge(w, m.dense)?;
    write_knowledge(w, m.unique)?;
    write_knowledge(w, m.has_nulls)?;
    write_knowledge(w, m.sorted_heap_tokens)?;
    write_opt_i64(w, m.min)?;
    write_opt_i64(w, m.max)?;
    write_opt_i64(w, m.cardinality.map(|c| c as i64))?;
    w.write_all(&[m.width.bytes() as u8])
}

fn read_metadata(r: &mut impl Read) -> io::Result<ColumnMetadata> {
    let sorted_asc = read_knowledge(r)?;
    let dense = read_knowledge(r)?;
    let unique = read_knowledge(r)?;
    let has_nulls = read_knowledge(r)?;
    let sorted_heap_tokens = read_knowledge(r)?;
    let min = read_opt_i64(r)?;
    let max = read_opt_i64(r)?;
    let cardinality = read_opt_i64(r)?.map(|c| c as u64);
    let mut wb = [0u8; 1];
    r.read_exact(&mut wb)?;
    let width = Width::from_bytes(wb[0] as usize).ok_or_else(|| corrupt("bad width"))?;
    Ok(ColumnMetadata {
        sorted_asc,
        dense,
        unique,
        min,
        max,
        cardinality,
        has_nulls,
        sorted_heap_tokens,
        width,
    })
}

fn write_column(w: &mut impl Write, c: &Column) -> io::Result<()> {
    write_str(w, &c.name)?;
    w.write_all(&[c.dtype.tag(), c.compression.tag()])?;
    write_metadata(w, &c.metadata)?;
    write_bytes(w, c.data.as_bytes())?;
    match &c.compression {
        Compression::None => Ok(()),
        Compression::Array { dictionary, sorted } => {
            w.write_all(&(dictionary.len() as u64).to_le_bytes())?;
            for &v in dictionary {
                w.write_all(&v.to_le_bytes())?;
            }
            w.write_all(&[u8::from(*sorted)])
        }
        Compression::Heap { heap, sorted } => {
            write_bytes(w, heap.as_bytes())?;
            w.write_all(&[u8::from(*sorted)])
        }
    }
}

fn read_column(r: &mut impl Read) -> io::Result<Column> {
    let name = read_str(r)?;
    let mut tags = [0u8; 2];
    r.read_exact(&mut tags)?;
    let dtype = DataType::from_tag(tags[0]).ok_or_else(|| corrupt("bad dtype"))?;
    let metadata = read_metadata(r)?;
    let stream_bytes = read_bytes(r)?;
    let data = EncodedStream::from_buf(stream_bytes);
    let compression = match tags[1] {
        0 => Compression::None,
        1 => {
            let n = read_u64(r)? as usize;
            let mut dictionary = Vec::with_capacity(n);
            for _ in 0..n {
                dictionary.push(read_i64(r)?);
            }
            let mut s = [0u8; 1];
            r.read_exact(&mut s)?;
            Compression::Array {
                dictionary,
                sorted: s[0] != 0,
            }
        }
        2 => {
            let heap = StringHeap::from_bytes(read_bytes(r)?);
            let mut s = [0u8; 1];
            r.read_exact(&mut s)?;
            Compression::Heap {
                heap: Arc::new(heap),
                sorted: s[0] != 0,
            }
        }
        _ => return Err(corrupt("bad compression tag")),
    };
    Ok(Column {
        name,
        dtype,
        data,
        compression,
        metadata,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ColumnBuilder, EncodingPolicy};
    use tde_types::Value;

    fn sample_db() -> Database {
        let mut ints = ColumnBuilder::new("qty", DataType::Integer, EncodingPolicy::default());
        let mut dates = ColumnBuilder::new("day", DataType::Date, EncodingPolicy::default());
        let mut names = ColumnBuilder::new("name", DataType::Str, EncodingPolicy::default());
        for i in 0..5000i64 {
            ints.append_i64(i % 50);
            dates.append_i64(9000 + i / 100);
            names.append_str(Some(["red", "green", "blue"][i as usize % 3]));
        }
        let t = Table::new(
            "orders",
            vec![
                ints.finish().column,
                dates.finish().column,
                names.finish().column,
            ],
        );
        let mut db = Database::new();
        db.add_table(t);
        db
    }

    #[test]
    fn roundtrip_through_memory() {
        let db = sample_db();
        let mut buf = Vec::new();
        db.write_to(&mut buf).unwrap();
        let db2 = Database::read_from(&mut buf.as_slice()).unwrap();
        let t1 = db.table("orders").unwrap();
        let t2 = db2.table("orders").unwrap();
        assert_eq!(t2.row_count(), 5000);
        for row in (0..5000).step_by(777) {
            for (c1, c2) in t1.columns.iter().zip(&t2.columns) {
                assert_eq!(c1.value(row), c2.value(row), "col {} row {row}", c1.name);
            }
        }
        // Metadata survives.
        let day = t2.column("day").unwrap();
        assert!(day.metadata.sorted_asc.is_true());
    }

    #[test]
    fn roundtrip_through_file() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("tde_file_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("orders.tde");
        db.save(&path).unwrap();
        let db2 = Database::load(&path).unwrap();
        assert_eq!(db2.table("orders").unwrap().row_count(), 5000);
        assert_eq!(
            db2.table("orders")
                .unwrap()
                .column("name")
                .unwrap()
                .value(1),
            Value::Str("green".into())
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serialized_size_matches_write() {
        let db = sample_db();
        let mut buf = Vec::new();
        db.write_to(&mut buf).unwrap();
        assert_eq!(db.serialized_size(), buf.len() as u64);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Database::read_from(&mut &b"NOPE"[..]).is_err());
        assert!(Database::read_from(&mut &b"TDE1\xFF\xFF\xFF\xFF"[..]).is_err());
    }

    #[test]
    fn compressed_file_is_smaller_than_baseline() {
        // The single-file copy burden (§2.3.3): encodings shrink it.
        let build = |policy: EncodingPolicy| {
            let mut b = ColumnBuilder::new("v", DataType::Integer, policy);
            for i in 0..50_000i64 {
                b.append_i64(i % 10);
            }
            let mut db = Database::new();
            db.add_table(Table::new("t", vec![b.finish().column]));
            db.serialized_size()
        };
        let enc = build(EncodingPolicy::default());
        let raw = build(EncodingPolicy::baseline());
        assert!(enc * 4 < raw, "encoded {enc} should be far under raw {raw}");
    }
}

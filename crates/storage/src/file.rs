//! The single-file database format (paper §2.3.3).
//!
//! A TDE database must be choosable in a file-selection dialog: one file.
//! Extracts are read-only, so the writer simply concatenates every table's
//! column streams (with their heaps and dictionaries) behind a directory.
//! Compression applied at the column level reduces the size — and thus the
//! cost — of producing this file, which is the storage half of Fig 5.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "TDE1" | format version u32 | table count u32
//! per table: name | row count u64 | column count u32
//!   per column: name | dtype u8 | compression tag u8 | metadata
//!               | stream bytes | [dictionary] | [heap bytes | sorted u8]
//! ```
//!
//! Strings and byte blobs are u64-length-prefixed.
//!
//! This v1 format is *eager*: [`Database::load`] deserializes every
//! column of every table. The v2 paged format (crate `tde-pager`) stores
//! the same per-column payloads at block-aligned offsets behind a footer
//! directory so columns can be demand-loaded; both formats share the
//! [`crate::wire`] primitives.
//!
//! The reader treats its input as untrusted: truncated files, bad magic,
//! bad tags and absurd length prefixes all surface as [`io::Error`] —
//! never a panic or an unbounded allocation (see the corruption-matrix
//! test below).

use crate::column::{Column, Compression};
use crate::heap::StringHeap;
use crate::table::Table;
use crate::wire::{
    corrupt, read_bytes, read_i64, read_metadata, read_str, read_u32, read_u64, validate_stream,
    write_bytes, write_metadata, write_str, MAX_PREALLOC,
};
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;
use tde_encodings::EncodedStream;
use tde_types::DataType;

const MAGIC: &[u8; 4] = b"TDE1";
const VERSION: u32 = 1;

/// A collection of tables stored in (or loaded from) one file.
#[derive(Debug, Clone, Default)]
pub struct Database {
    /// The tables.
    pub tables: Vec<Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Add a table.
    pub fn add_table(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Find a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Serialize to one file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Serialize into any writer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.tables.len() as u32).to_le_bytes())?;
        for t in &self.tables {
            write_str(w, &t.name)?;
            w.write_all(&t.row_count().to_le_bytes())?;
            w.write_all(&(t.columns.len() as u32).to_le_bytes())?;
            for c in &t.columns {
                write_column(w, c)?;
            }
        }
        Ok(())
    }

    /// Load from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Database> {
        let bytes = std::fs::read(path)?;
        Database::read_from(&mut bytes.as_slice())
    }

    /// Deserialize from any reader. The input is untrusted: corruption of
    /// any kind yields an [`io::Error`].
    pub fn read_from(r: &mut impl Read) -> io::Result<Database> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = read_u32(r)?;
        if version != VERSION {
            return Err(corrupt("unsupported version"));
        }
        let ntables = read_u32(r)? as usize;
        // Capacity capped: a lying count fails at EOF, not at allocation.
        let mut tables = Vec::with_capacity(ntables.min(1024));
        for _ in 0..ntables {
            let name = read_str(r)?;
            let rows = read_u64(r)?;
            let ncols = read_u32(r)? as usize;
            let mut columns = Vec::with_capacity(ncols.min(4096));
            for _ in 0..ncols {
                columns.push(read_column(r, rows)?);
            }
            // `Table::new` asserts equal column lengths; `read_column`
            // already validated each against the header row count, so the
            // constructor cannot panic on corrupt input.
            tables.push(Table::new(name, columns));
        }
        Ok(Database { tables })
    }

    /// Size of the serialized file in bytes.
    pub fn serialized_size(&self) -> u64 {
        let mut counter = CountingWriter::default();
        self.write_to(&mut counter)
            .expect("counting writer cannot fail");
        counter.bytes
    }
}

/// Writer that only counts (for size reporting without I/O).
#[derive(Default)]
struct CountingWriter {
    bytes: u64,
}

impl Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes += buf.len() as u64;
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn write_column(w: &mut impl Write, c: &Column) -> io::Result<()> {
    write_str(w, &c.name)?;
    w.write_all(&[c.dtype.tag(), c.compression.tag()])?;
    write_metadata(w, &c.metadata)?;
    write_bytes(w, c.data.as_bytes())?;
    match &c.compression {
        Compression::None => Ok(()),
        Compression::Array { dictionary, sorted } => {
            w.write_all(&(dictionary.len() as u64).to_le_bytes())?;
            for &v in dictionary {
                w.write_all(&v.to_le_bytes())?;
            }
            w.write_all(&[u8::from(*sorted)])
        }
        Compression::Heap { heap, sorted } => {
            write_bytes(w, heap.as_bytes())?;
            w.write_all(&[u8::from(*sorted)])
        }
    }
}

fn read_column(r: &mut impl Read, expected_rows: u64) -> io::Result<Column> {
    let name = read_str(r)?;
    let mut tags = [0u8; 2];
    r.read_exact(&mut tags)?;
    let dtype = DataType::from_tag(tags[0]).ok_or_else(|| corrupt("bad dtype"))?;
    let metadata = read_metadata(r)?;
    let stream_bytes = read_bytes(r)?;
    validate_stream(&stream_bytes, expected_rows)?;
    let data = EncodedStream::from_buf(stream_bytes);
    let compression = match tags[1] {
        0 => Compression::None,
        1 => {
            let n = read_u64(r)? as usize;
            let mut dictionary = Vec::with_capacity(n.min(MAX_PREALLOC / 8));
            for _ in 0..n {
                dictionary.push(read_i64(r)?);
            }
            let mut s = [0u8; 1];
            r.read_exact(&mut s)?;
            Compression::Array {
                dictionary,
                sorted: s[0] != 0,
            }
        }
        2 => {
            let heap = StringHeap::from_bytes(read_bytes(r)?);
            let mut s = [0u8; 1];
            r.read_exact(&mut s)?;
            Compression::Heap {
                heap: Arc::new(heap),
                sorted: s[0] != 0,
            }
        }
        _ => return Err(corrupt("bad compression tag")),
    };
    Ok(Column {
        name,
        dtype,
        data,
        compression,
        metadata,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ColumnBuilder, EncodingPolicy};
    use tde_types::Value;

    fn sample_db() -> Database {
        let mut ints = ColumnBuilder::new("qty", DataType::Integer, EncodingPolicy::default());
        let mut dates = ColumnBuilder::new("day", DataType::Date, EncodingPolicy::default());
        let mut names = ColumnBuilder::new("name", DataType::Str, EncodingPolicy::default());
        for i in 0..5000i64 {
            ints.append_i64(i % 50);
            dates.append_i64(9000 + i / 100);
            names.append_str(Some(["red", "green", "blue"][i as usize % 3]));
        }
        let t = Table::new(
            "orders",
            vec![
                ints.finish().column,
                dates.finish().column,
                names.finish().column,
            ],
        );
        let mut db = Database::new();
        db.add_table(t);
        db
    }

    /// A second table so multi-table directory arithmetic is exercised.
    fn two_table_db() -> Database {
        let mut db = sample_db();
        let mut seq = ColumnBuilder::new("seq", DataType::Integer, EncodingPolicy::default());
        let mut tag = ColumnBuilder::new("tag", DataType::Str, EncodingPolicy::default());
        for i in 0..1200i64 {
            seq.append_i64(i);
            tag.append_str(Some(["aa", "bb", "cc", "dd"][i as usize % 4]));
        }
        db.add_table(Table::new(
            "tags",
            vec![seq.finish().column, tag.finish().column],
        ));
        db
    }

    #[test]
    fn roundtrip_through_memory() {
        let db = sample_db();
        let mut buf = Vec::new();
        db.write_to(&mut buf).unwrap();
        let db2 = Database::read_from(&mut buf.as_slice()).unwrap();
        let t1 = db.table("orders").unwrap();
        let t2 = db2.table("orders").unwrap();
        assert_eq!(t2.row_count(), 5000);
        for row in (0..5000).step_by(777) {
            for (c1, c2) in t1.columns.iter().zip(&t2.columns) {
                assert_eq!(c1.value(row), c2.value(row), "col {} row {row}", c1.name);
            }
        }
        // Metadata survives.
        let day = t2.column("day").unwrap();
        assert!(day.metadata.sorted_asc.is_true());
    }

    #[test]
    fn roundtrip_through_file() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("tde_file_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("orders.tde");
        db.save(&path).unwrap();
        let db2 = Database::load(&path).unwrap();
        assert_eq!(db2.table("orders").unwrap().row_count(), 5000);
        assert_eq!(
            db2.table("orders")
                .unwrap()
                .column("name")
                .unwrap()
                .value(1),
            Value::Str("green".into())
        );
        std::fs::remove_file(&path).ok();
    }

    /// `serialized_size` must agree with the writer byte-for-byte across
    /// every compression shape (plain, dictionary, heap) and multiple
    /// tables — the v2 directory derives segment extents from the same
    /// write path, so drift here would corrupt paged offsets.
    #[test]
    fn serialized_size_matches_write() {
        for db in [Database::new(), sample_db(), two_table_db()] {
            let mut buf = Vec::new();
            db.write_to(&mut buf).unwrap();
            assert_eq!(db.serialized_size(), buf.len() as u64);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Database::read_from(&mut &b"NOPE"[..]).is_err());
        assert!(Database::read_from(&mut &b"TDE1\xFF\xFF\xFF\xFF"[..]).is_err());
    }

    /// Corruption matrix: no prefix truncation, tag flip or absurd length
    /// prefix may panic, over-allocate or succeed — each must surface as
    /// a clean `io::Error`.
    #[test]
    fn corruption_matrix() {
        let db = two_table_db();
        let mut buf = Vec::new();
        db.write_to(&mut buf).unwrap();

        // Every truncation point fails cleanly (dense near the start where
        // all the structural fields live, sampled beyond).
        for cut in (0..buf.len().min(256)).chain((256..buf.len()).step_by(211)) {
            assert!(
                Database::read_from(&mut &buf[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }

        // Bad magic / unsupported version.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(Database::read_from(&mut bad.as_slice()).is_err());
        let mut bad = buf.clone();
        bad[4] = 9;
        assert!(Database::read_from(&mut bad.as_slice()).is_err());

        // Absurd table count: claims 4 billion tables, carries one byte.
        let mut bad = buf[..8].to_vec();
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        bad.push(0);
        assert!(Database::read_from(&mut bad.as_slice()).is_err());

        // Absurd name-length prefix (u64::MAX) right after the counts.
        let mut bad = buf[..12].to_vec();
        bad.extend_from_slice(&u64::MAX.to_le_bytes());
        bad.extend_from_slice(b"x");
        assert!(Database::read_from(&mut bad.as_slice()).is_err());

        // Flip every byte of the structural prefix one at a time; whatever
        // the reader makes of it, it must not panic. (Some flips only move
        // payload bytes and still parse — that is fine; the property under
        // test is "no panic, no OOM".)
        for at in 0..buf.len().min(96) {
            let mut bad = buf.clone();
            bad[at] ^= 0xFF;
            let _ = Database::read_from(&mut bad.as_slice());
        }

        // Mismatched column lengths: patch the table row count so columns
        // disagree with the directory — must error, not panic in
        // `Table::new`.
        let mut bad = buf.clone();
        // Row count of table "orders" sits after magic(4)+ver(4)+count(4)
        // +name(8+6).
        let off = 4 + 4 + 4 + 8 + "orders".len();
        bad[off..off + 8].copy_from_slice(&1u64.to_le_bytes());
        assert!(Database::read_from(&mut bad.as_slice()).is_err());
    }

    #[test]
    fn compressed_file_is_smaller_than_baseline() {
        // The single-file copy burden (§2.3.3): encodings shrink it.
        let build = |policy: EncodingPolicy| {
            let mut b = ColumnBuilder::new("v", DataType::Integer, policy);
            for i in 0..50_000i64 {
                b.append_i64(i % 10);
            }
            let mut db = Database::new();
            db.add_table(Table::new("t", vec![b.finish().column]));
            db.serialized_size()
        };
        let enc = build(EncodingPolicy::default());
        let raw = build(EncodingPolicy::baseline());
        assert!(enc * 4 < raw, "encoded {enc} should be far under raw {raw}");
    }
}

//! Column builders: the storage half of the FlowTable operator
//! (paper §3.3–3.4).
//!
//! A [`ColumnBuilder`] accepts blocks of values, feeds them through the
//! dynamic encoder (and, for strings, through the heap accelerator), and
//! on `finish` applies the paper's post-processing manipulations:
//!
//! 1. optional conversion to the optimal encoding (§3.2),
//! 2. heap sorting through the encoding dictionary (§3.4.3 / §6.3),
//! 3. type narrowing via header edits (§3.4.1 / §6.5),
//! 4. metadata extraction (§3.4.2 / §6.4).
//!
//! Each builder is independent, which is what lets FlowTable distribute
//! column encoding across cores (§3.3).

use crate::accelerator::HeapAccelerator;
use crate::column::{Column, Compression};
use crate::convert;
use crate::heap::StringHeap;
use std::sync::Arc;
use tde_encodings::manipulate;
use tde_encodings::metadata::Knowledge;
use tde_encodings::stats::AllowedAlgorithms;
use tde_encodings::{Algorithm, ColumnMetadata, DynamicEncoder, BLOCK_SIZE};
use tde_types::sentinel::{null_real, NULL_I64, NULL_TOKEN};
use tde_types::{Collation, DataType, Value, Width};

/// Knobs controlling how columns are built — the axes the paper's
/// experiments sweep (encoding on/off, acceleration on/off) plus the
/// strategic optimizer's restrictions (§4.3).
#[derive(Debug, Clone, Copy)]
pub struct EncodingPolicy {
    /// Whether lightweight encodings are applied at all.
    pub encodings: bool,
    /// Whether string columns use the heap accelerator.
    pub acceleration: bool,
    /// Which algorithms the dynamic encoder may choose.
    pub allow: AllowedAlgorithms,
    /// Whether to convert to the optimal encoding at the end of the load.
    pub convert_to_optimal: bool,
    /// Whether to sort small string heaps through the encoding dictionary.
    pub sort_heaps: bool,
    /// Whether to narrow column widths via header manipulation.
    pub narrow: bool,
    /// Collation for string columns.
    pub collation: Collation,
    /// Give-up threshold for the accelerator.
    pub accelerator_threshold: u64,
}

impl Default for EncodingPolicy {
    fn default() -> EncodingPolicy {
        EncodingPolicy {
            encodings: true,
            acceleration: true,
            allow: AllowedAlgorithms::all(),
            convert_to_optimal: true,
            sort_heaps: true,
            narrow: true,
            collation: Collation::Binary,
            accelerator_threshold: crate::accelerator::DEFAULT_GIVE_UP,
        }
    }
}

impl EncodingPolicy {
    /// Everything off: the paper's baseline configuration.
    pub fn baseline() -> EncodingPolicy {
        EncodingPolicy {
            encodings: false,
            acceleration: false,
            sort_heaps: false,
            narrow: false,
            ..EncodingPolicy::default()
        }
    }

    /// Inner-join-side policy: only cheap-random-access encodings
    /// (paper §4.3).
    pub fn inner_side() -> EncodingPolicy {
        EncodingPolicy {
            allow: AllowedAlgorithms::random_access(),
            ..EncodingPolicy::default()
        }
    }
}

/// A finished column plus everything learned while building it.
#[derive(Debug)]
pub struct BuiltColumn {
    /// The column.
    pub column: Column,
    /// Mid-load encoding changes (experiment E9).
    pub reencodings: u32,
    /// Whether the end-of-load optimal conversion fired.
    pub final_converted: bool,
}

/// Streaming builder for one column.
#[derive(Debug)]
pub struct ColumnBuilder {
    name: String,
    dtype: DataType,
    policy: EncodingPolicy,
    enc: DynamicEncoder,
    pending: Vec<i64>,
    heap: Option<StringHeap>,
    accel: Option<HeapAccelerator>,
}

impl ColumnBuilder {
    /// A builder for a column of `dtype` under `policy`.
    pub fn new(name: impl Into<String>, dtype: DataType, policy: EncodingPolicy) -> ColumnBuilder {
        let name = name.into();
        // Heap tokens are unsigned offsets; everything else is signed.
        let signed = !dtype.is_string();
        let mut enc = DynamicEncoder::new(Width::W8, signed, policy.allow, policy.encodings)
            .labeled(name.as_str());
        if dtype.is_string() {
            // Heap tokens are offsets, not dense indexes: small domains
            // should land on dictionary encoding (paper §6.3), which is
            // what makes heap sorting and token remapping possible.
            enc = enc.prefer_dictionary();
        }
        let (heap, accel) = if dtype.is_string() {
            let accel = policy.acceleration.then(|| {
                HeapAccelerator::with_threshold(policy.collation, policy.accelerator_threshold)
            });
            (Some(StringHeap::new()), accel)
        } else {
            (None, None)
        };
        ColumnBuilder {
            name,
            dtype,
            policy,
            enc,
            pending: Vec::with_capacity(BLOCK_SIZE),
            heap,
            accel,
        }
    }

    /// Rows appended so far.
    pub fn len(&self) -> u64 {
        self.enc.len() + self.pending.len() as u64
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push_raw(&mut self, v: i64) {
        self.pending.push(v);
        if self.pending.len() == BLOCK_SIZE {
            self.enc.append_block(&self.pending);
            self.pending.clear();
        }
    }

    /// Append already-storage-encoded values: scalars with sentinel NULLs,
    /// f64 bit patterns, or heap tokens (strings must instead go through
    /// [`ColumnBuilder::append_str`]).
    pub fn append_raw(&mut self, vals: &[i64]) {
        for &v in vals {
            self.push_raw(v);
        }
    }

    /// Append one integral scalar (Integer/Date/Timestamp/Bool domain).
    pub fn append_i64(&mut self, v: i64) {
        debug_assert!(!self.dtype.is_string() && self.dtype != DataType::Real);
        self.push_raw(v);
    }

    /// Append one real as its bit pattern.
    pub fn append_f64(&mut self, v: f64) {
        debug_assert_eq!(self.dtype, DataType::Real);
        self.push_raw(v.to_bits() as i64);
    }

    /// Append one string (or NULL), interning through the accelerator
    /// when one is attached.
    pub fn append_str(&mut self, s: Option<&str>) {
        debug_assert!(self.dtype.is_string());
        let token = match s {
            None => NULL_TOKEN,
            Some(s) => {
                let heap = self.heap.as_mut().expect("string builder has a heap");
                match &mut self.accel {
                    Some(acc) => acc.intern(heap, s),
                    None => heap.append(s),
                }
            }
        };
        self.push_raw(token as i64);
    }

    /// Append a boxed value (slow path for convenience APIs).
    pub fn append_value(&mut self, v: &Value) {
        match (self.dtype, v) {
            (DataType::Str, Value::Str(s)) => self.append_str(Some(s)),
            (DataType::Str, Value::Null) => self.append_str(None),
            (DataType::Real, Value::Null) => self.append_f64(null_real()),
            (DataType::Real, _) => self.append_f64(
                v.as_f64()
                    .unwrap_or_else(|| panic!("type mismatch for {v}")),
            ),
            (_, Value::Null) => self.append_i64(NULL_I64),
            _ => self.append_i64(
                v.as_i64()
                    .unwrap_or_else(|| panic!("type mismatch for {v}")),
            ),
        }
    }

    /// Finish the column, applying the §3.4 post-processing manipulations.
    pub fn finish(mut self) -> BuiltColumn {
        if !self.pending.is_empty() {
            let tail = std::mem::take(&mut self.pending);
            self.enc.append_block(&tail);
        }
        let policy = self.policy;
        let result = self.enc.finish(policy.convert_to_optimal);
        let mut stream = result.stream;
        let mut metadata = if policy.encodings {
            // Full extraction from the encoding statistics (§3.4.2).
            ColumnMetadata::from_stats(&result.stats, Width::W8)
        } else {
            ColumnMetadata::unknown()
        };
        if self.dtype.is_string() && policy.encodings {
            // String NULLs are stored as NULL_TOKEN (0), not NULL_I64, so
            // the sentinel count in the statistics never sees them. Real
            // tokens are heap offsets past the reserved null slot, so a
            // zero minimum is exactly "a NULL is present".
            metadata.has_nulls = Knowledge::from_bool(
                result.stats.count > 0 && result.stats.min == NULL_TOKEN as i64,
            );
        }

        let compression = if let Some(heap) = self.heap.take() {
            let mut sorted = heap.is_empty();
            // Fortuitous sortedness: the strings arrived in order
            // (the no-encoding bars of Fig 6).
            if let Some(acc) = &self.accel {
                if acc.is_active() {
                    metadata.merge(&ColumnMetadata {
                        cardinality: Some(heap.len()),
                        ..ColumnMetadata::unknown()
                    });
                    if acc.input_was_sorted() {
                        sorted = true;
                    }
                }
            }
            let mut heap = heap;
            if policy.sort_heaps
                && !sorted
                && stream.algorithm() == Algorithm::Dictionary
                && self.accel.as_ref().is_some_and(HeapAccelerator::is_active)
            {
                // The token stream is dictionary-encoded and the heap is
                // distinct: sort it through the dictionary (§3.4.3) in
                // time proportional to the domain, not the rows.
                heap = convert::sort_heap_via_dictionary(&mut stream, &heap, policy.collation);
                sorted = true;
                // The remap invalidates every token-domain claim derived
                // from the append-order statistics: order-dependent
                // properties are lost, the envelope is recomputed from the
                // remapped dictionary entries. Uniqueness survives (the
                // remap is a bijection on tokens).
                let entries = stream.dict_entries().expect("dictionary stream");
                metadata.sorted_asc = Knowledge::Unknown;
                metadata.dense = Knowledge::Unknown;
                metadata.min = entries.iter().min().copied();
                metadata.max = entries.iter().max().copied();
            }
            Compression::Heap {
                heap: Arc::new(heap),
                sorted,
            }
        } else {
            Compression::None
        };

        if policy.narrow && policy.encodings {
            let w = manipulate::narrow(&mut stream);
            // Delta streams carry no envelope in the header, but the load
            // statistics prove the range; record it in the width field.
            if stream.algorithm() == Algorithm::Delta && self.dtype != DataType::Real {
                let sw = Width::for_signed_range(result.stats.min, result.stats.max, true);
                if sw < w {
                    manipulate::set_width(&mut stream, sw);
                }
            }
            metadata.width = stream.width();
        }
        // Width metadata for reals is meaningless (bit patterns).
        if self.dtype == DataType::Real {
            metadata = ColumnMetadata {
                width: Width::W8,
                ..ColumnMetadata::unknown()
            };
        }
        if let Compression::Heap { sorted, .. } = &compression {
            if *sorted {
                metadata.sorted_heap_tokens = Knowledge::True;
            }
        }

        BuiltColumn {
            column: Column {
                name: self.name,
                dtype: self.dtype,
                data: stream,
                compression,
                metadata,
            },
            reencodings: result.reencodings,
            final_converted: result.final_converted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_ints(vals: &[i64], policy: EncodingPolicy) -> BuiltColumn {
        let mut b = ColumnBuilder::new("x", DataType::Integer, policy);
        b.append_raw(vals);
        b.finish()
    }

    #[test]
    fn integer_column_narrows() {
        let vals: Vec<i64> = (0..10_000).map(|i| i % 100).collect();
        let built = build_ints(&vals, EncodingPolicy::default());
        assert_eq!(built.column.metadata.width, Width::W1);
        assert_eq!(built.column.data.decode_all(), vals);
    }

    #[test]
    fn baseline_stays_wide_and_unencoded() {
        let vals: Vec<i64> = (0..5000).map(|i| i % 100).collect();
        let built = build_ints(&vals, EncodingPolicy::baseline());
        assert_eq!(built.column.data.algorithm(), Algorithm::None);
        assert_eq!(built.column.metadata.width, Width::W8);
        assert_eq!(built.column.metadata.detected_count(), 0);
    }

    #[test]
    fn string_column_dedupes_and_sorts_heap() {
        let mut b = ColumnBuilder::new("s", DataType::Str, EncodingPolicy::default());
        let words = ["delta", "alpha", "charlie", "bravo"];
        for i in 0..4000 {
            b.append_str(Some(words[i % 4]));
        }
        let built = b.finish();
        let col = &built.column;
        match &col.compression {
            Compression::Heap { heap, sorted } => {
                assert!(*sorted);
                assert!(heap.is_sorted(Collation::Binary));
                assert_eq!(heap.len(), 4);
            }
            other => panic!("expected heap compression, got {other:?}"),
        }
        // Values survive the heap rebuild.
        assert_eq!(col.value(0), Value::Str("delta".into()));
        assert_eq!(col.value(1), Value::Str("alpha".into()));
        // Sorted heap means token order is string order.
        let ta = col.data.get(1); // alpha
        let tb = col.data.get(3); // bravo
        let tc = col.data.get(2); // charlie
        let td = col.data.get(0); // delta
        assert!(ta < tb && tb < tc && tc < td);
    }

    #[test]
    fn string_null_detection_uses_token_sentinel() {
        let mut b = ColumnBuilder::new("s", DataType::Str, EncodingPolicy::default());
        b.append_str(Some("x"));
        b.append_str(None);
        assert!(b.finish().column.metadata.has_nulls.is_true());
        let mut b = ColumnBuilder::new("s", DataType::Str, EncodingPolicy::default());
        b.append_str(Some("x"));
        b.append_str(Some("y"));
        assert_eq!(b.finish().column.metadata.has_nulls, Knowledge::False);
    }

    #[test]
    fn heap_sort_invalidates_append_order_token_claims() {
        // Strings arrive in reverse lexical order: append-order tokens
        // ascend, but the §3.4.3 heap sort remaps them to descending
        // ranks. Order-dependent claims must not survive the remap — a
        // stale sorted_asc would let the tactical optimizer run ordered
        // aggregation over unsorted tokens.
        let mut b = ColumnBuilder::new("s", DataType::Str, EncodingPolicy::default());
        for w in ["ccc", "bbb", "aaa"] {
            for _ in 0..10 {
                b.append_str(Some(w));
            }
        }
        let col = b.finish().column;
        assert!(col.metadata.sorted_heap_tokens.is_true());
        let raws = col.data.decode_all();
        assert!(raws.windows(2).any(|w| w[1] < w[0]));
        assert!(!col.metadata.sorted_asc.is_true());
        let (min, max) = (col.metadata.min.unwrap(), col.metadata.max.unwrap());
        assert!(raws.iter().all(|&t| min <= t && t <= max));
    }

    #[test]
    fn string_nulls_are_token_zero() {
        let mut b = ColumnBuilder::new("s", DataType::Str, EncodingPolicy::default());
        b.append_str(Some("x"));
        b.append_str(None);
        let built = b.finish();
        assert_eq!(built.column.value(0), Value::Str("x".into()));
        assert_eq!(built.column.value(1), Value::Null);
    }

    #[test]
    fn unaccelerated_strings_duplicate() {
        let policy = EncodingPolicy {
            acceleration: false,
            ..EncodingPolicy::default()
        };
        let mut b = ColumnBuilder::new("s", DataType::Str, policy);
        for _ in 0..10 {
            b.append_str(Some("dup"));
        }
        let built = b.finish();
        let heap = built.column.heap().unwrap();
        assert_eq!(heap.len(), 10); // no dedup without the accelerator
    }

    #[test]
    fn real_column_roundtrip() {
        let mut b = ColumnBuilder::new("r", DataType::Real, EncodingPolicy::default());
        for v in [1.0, 2.5, -3.75, 1.0] {
            b.append_f64(v);
        }
        b.append_value(&Value::Null);
        let built = b.finish();
        assert_eq!(built.column.value(1), Value::Real(2.5));
        assert_eq!(built.column.value(4), Value::Null);
    }

    #[test]
    fn date_column_dense_metadata() {
        let vals: Vec<i64> = (8000..9000).collect(); // 1000 consecutive days
        let mut b = ColumnBuilder::new("d", DataType::Date, EncodingPolicy::default());
        b.append_raw(&vals);
        let built = b.finish();
        assert!(built.column.metadata.dense.is_true());
        assert!(built.column.metadata.sorted_asc.is_true());
        assert_eq!(built.column.data.algorithm(), Algorithm::Affine);
    }

    #[test]
    fn pending_buffer_flushes_across_blocks() {
        // Appends of odd sizes must still produce whole + final partial
        // blocks in order.
        let mut b = ColumnBuilder::new("x", DataType::Integer, EncodingPolicy::default());
        let vals: Vec<i64> = (0..2500).collect();
        for chunk in vals.chunks(7) {
            b.append_raw(chunk);
        }
        let built = b.finish();
        assert_eq!(built.column.data.decode_all(), vals);
    }

    #[test]
    fn value_append_roundtrip() {
        let mut b = ColumnBuilder::new("d", DataType::Date, EncodingPolicy::default());
        b.append_value(&Value::date(1995, 6, 1));
        b.append_value(&Value::Null);
        let built = b.finish();
        assert_eq!(built.column.value(0), Value::date(1995, 6, 1));
        assert_eq!(built.column.value(1), Value::Null);
        assert!(built.column.metadata.has_nulls.is_true());
    }
}

//! String heaps (paper §2.3.2, §5.1.4).
//!
//! A heap is a byte arena of string entries, each a 4-byte length header
//! followed by the character data. A column's *token* for a string is the
//! byte offset of its entry — tokens are therefore not dense, which is why
//! small-domain token streams typically end up dictionary-*encoded*
//! (paper §6.3), and why a freshly built heap can be re-ordered and the
//! tokens rewritten purely through the encoding dictionary.
//!
//! Token 0 is reserved for NULL (the heap starts with a zero-length
//! entry), matching the engine-wide sentinel convention.

use tde_types::sentinel::NULL_TOKEN;
use tde_types::Collation;

/// Size of the per-entry length header.
pub const ENTRY_HEADER: usize = 4;

/// A variable-width string arena addressed by byte-offset tokens.
#[derive(Debug, Clone, Default)]
pub struct StringHeap {
    bytes: Vec<u8>,
    entries: u64,
}

impl StringHeap {
    /// An empty heap containing only the NULL entry at token 0.
    pub fn new() -> StringHeap {
        let mut heap = StringHeap {
            bytes: Vec::new(),
            entries: 0,
        };
        let t = heap.push_entry("");
        debug_assert_eq!(t, NULL_TOKEN);
        heap
    }

    fn push_entry(&mut self, s: &str) -> u64 {
        let token = self.bytes.len() as u64;
        self.bytes
            .extend_from_slice(&(s.len() as u32).to_le_bytes());
        self.bytes.extend_from_slice(s.as_bytes());
        self.entries += 1;
        token
    }

    /// Append a string, returning its token. No deduplication — that is
    /// the accelerator's job.
    pub fn append(&mut self, s: &str) -> u64 {
        self.push_entry(s)
    }

    /// Fetch the string for a token. Token 0 (NULL) yields `None`.
    pub fn get(&self, token: u64) -> Option<&str> {
        if token == NULL_TOKEN {
            return None;
        }
        Some(self.get_raw(token))
    }

    /// Fetch any entry including the NULL entry (which is empty).
    pub fn get_raw(&self, token: u64) -> &str {
        let at = token as usize;
        let len =
            u32::from_le_bytes(self.bytes[at..at + ENTRY_HEADER].try_into().unwrap()) as usize;
        std::str::from_utf8(&self.bytes[at + ENTRY_HEADER..at + ENTRY_HEADER + len])
            .expect("heap corruption: non-UTF-8 entry")
    }

    /// Number of entries, excluding the reserved NULL entry.
    pub fn len(&self) -> u64 {
        self.entries - 1
    }

    /// Whether the heap holds no real entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total heap size in bytes.
    pub fn byte_size(&self) -> usize {
        self.bytes.len()
    }

    /// Iterate `(token, string)` over real entries in token (storage) order.
    pub fn iter(&self) -> HeapIter<'_> {
        // Skip the NULL entry.
        HeapIter {
            heap: self,
            at: ENTRY_HEADER,
        }
    }

    /// Whether the entries are in ascending collation order — sorted heaps
    /// make tokens directly comparable (paper §2.3.4).
    pub fn is_sorted(&self, collation: Collation) -> bool {
        let mut prev: Option<&str> = None;
        for (_, s) in self.iter() {
            if let Some(p) = prev {
                if collation.compare(p, s) == std::cmp::Ordering::Greater {
                    return false;
                }
            }
            prev = Some(s);
        }
        true
    }

    /// Raw heap bytes (for the single-file writer).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Rebuild from raw bytes (single-file reader).
    pub fn from_bytes(bytes: Vec<u8>) -> StringHeap {
        let mut entries = 0u64;
        let mut at = 0usize;
        while at + ENTRY_HEADER <= bytes.len() {
            let len = u32::from_le_bytes(bytes[at..at + ENTRY_HEADER].try_into().unwrap()) as usize;
            at += ENTRY_HEADER + len;
            entries += 1;
        }
        assert_eq!(at, bytes.len(), "heap bytes corrupt");
        StringHeap { bytes, entries }
    }
}

/// Iterator over heap entries in storage order.
pub struct HeapIter<'a> {
    heap: &'a StringHeap,
    at: usize,
}

impl<'a> Iterator for HeapIter<'a> {
    type Item = (u64, &'a str);

    fn next(&mut self) -> Option<(u64, &'a str)> {
        if self.at >= self.heap.bytes.len() {
            return None;
        }
        let token = self.at as u64;
        let s = self.heap.get_raw(token);
        self.at += ENTRY_HEADER + s.len();
        Some((token, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_get() {
        let mut h = StringHeap::new();
        let a = h.append("hello");
        let b = h.append("world");
        assert_eq!(h.get(a), Some("hello"));
        assert_eq!(h.get(b), Some("world"));
        assert_eq!(h.get(NULL_TOKEN), None);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn tokens_are_offsets() {
        let mut h = StringHeap::new();
        let a = h.append("abc");
        let b = h.append("de");
        // NULL entry occupies 4 bytes; "abc" is 4 + 3.
        assert_eq!(a, 4);
        assert_eq!(b, 4 + 4 + 3);
    }

    #[test]
    fn fixed_width_strings_have_affine_tokens() {
        // The c_name phenomenon (paper §6.2): equal-length unique strings
        // produce equally spaced tokens.
        let mut h = StringHeap::new();
        let tokens: Vec<u64> = (0..100)
            .map(|i| h.append(&format!("Customer#{i:09}")))
            .collect();
        let deltas: Vec<u64> = tokens.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(deltas.iter().all(|&d| d == deltas[0]));
    }

    #[test]
    fn iteration_order_and_sortedness() {
        let mut h = StringHeap::new();
        h.append("b");
        h.append("a");
        let collected: Vec<&str> = h.iter().map(|(_, s)| s).collect();
        assert_eq!(collected, vec!["b", "a"]);
        assert!(!h.is_sorted(Collation::Binary));

        let mut s = StringHeap::new();
        s.append("a");
        s.append("b");
        assert!(s.is_sorted(Collation::Binary));
    }

    #[test]
    fn empty_heap_is_sorted() {
        assert!(StringHeap::new().is_sorted(Collation::Binary));
    }

    #[test]
    fn bytes_roundtrip() {
        let mut h = StringHeap::new();
        h.append("x");
        h.append("yy");
        h.append(""); // empty string is a real entry distinct from NULL
        let h2 = StringHeap::from_bytes(h.as_bytes().to_vec());
        assert_eq!(h2.len(), 3);
        let strings: Vec<&str> = h2.iter().map(|(_, s)| s).collect();
        assert_eq!(strings, vec!["x", "yy", ""]);
    }

    #[test]
    fn unicode_entries() {
        let mut h = StringHeap::new();
        let t = h.append("héllo wörld");
        assert_eq!(h.get(t), Some("héllo wörld"));
    }

    #[test]
    fn case_fold_sortedness() {
        let mut h = StringHeap::new();
        h.append("Apple");
        h.append("banana");
        h.append("Cherry");
        assert!(h.is_sorted(Collation::CaseFold));
        assert!(!h.is_sorted(Collation::Binary)); // 'C' < 'b' in bytes
    }
}

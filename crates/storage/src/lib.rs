//! Storage layer: string heaps, columns, tables and the single-file
//! database format (paper §2.3.2–2.3.3).
//!
//! The TDE storage layer distinguishes *compression* from *encoding*:
//!
//! * **Compression** is dictionary compression at the column level: the
//!   main data column is always fixed width and holds either uncompressed
//!   scalars, indexes into a fixed-width dictionary (*array* compression)
//!   or offsets into a variable-width heap (*heap* compression).
//! * **Encodings** (crate `tde-encodings`) sit *below* that: the
//!   fixed-width main data column — scalars, indexes or offsets alike — is
//!   itself stored as an encoded stream behind a paged interface.
//!
//! This separation is what lets the query optimizer reason about
//! compression (invisible joins over the dictionary, paper §4.1) while
//! encodings stay concealed behind the stream interface.

pub mod accelerator;
pub mod builder;
pub mod column;
pub mod convert;
pub mod file;
pub mod heap;
pub mod table;
pub mod wire;

pub use accelerator::HeapAccelerator;
pub use builder::{BuiltColumn, ColumnBuilder, EncodingPolicy};
pub use column::{Column, Compression};
pub use file::Database;
pub use heap::StringHeap;
pub use table::{ColumnTelemetry, Table};

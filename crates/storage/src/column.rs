//! Columns: fixed-width main data plus optional dictionary compression
//! (paper §2.3.2).
//!
//! The main data column is always fixed width and consists of either
//! uncompressed scalars, indexes into a fixed-width dictionary (*array*
//! compression) or offsets into a variable-width heap (*heap*
//! compression). The main data itself is an [`EncodedStream`], so the two
//! compression levels compose: e.g. a dictionary-compressed date column
//! whose index stream is delta-encoded (the paper's §4.3 example).

use crate::heap::StringHeap;
use std::sync::Arc;
use tde_encodings::{ColumnMetadata, EncodedStream};
use tde_types::sentinel::NULL_TOKEN;
use tde_types::{DataType, Value};

/// Column-level dictionary compression (paper §2.3.2).
#[derive(Debug, Clone)]
pub enum Compression {
    /// The main data holds uncompressed scalar values.
    None,
    /// Array compression: the main data holds indexes into a fixed-width
    /// scalar dictionary.
    Array {
        /// Dictionary values; entry `i` is the scalar for index `i`. For
        /// a frame-of-reference conversion this may contain values that do
        /// not actually occur in the column (paper §3.4.3).
        dictionary: Vec<i64>,
        /// Whether the dictionary values are in ascending order, making
        /// indexes order-preserving proxies for the values.
        sorted: bool,
    },
    /// Heap compression: the main data holds byte-offset tokens into a
    /// string heap.
    Heap {
        /// The shared heap.
        heap: Arc<StringHeap>,
        /// Whether heap storage order is collation order — sorted heaps
        /// make tokens directly comparable (paper §2.3.4).
        sorted: bool,
    },
}

impl Compression {
    /// Short tag for explain output and the file format.
    pub fn tag(&self) -> u8 {
        match self {
            Compression::None => 0,
            Compression::Array { .. } => 1,
            Compression::Heap { .. } => 2,
        }
    }

    /// Whether this is heap compression.
    pub fn is_heap(&self) -> bool {
        matches!(self, Compression::Heap { .. })
    }
}

/// A stored column.
#[derive(Debug, Clone)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Logical data type.
    pub dtype: DataType,
    /// The fixed-width main data: scalars, dictionary indexes or heap
    /// tokens, stored as an encoded stream.
    pub data: EncodedStream,
    /// Column-level dictionary compression.
    pub compression: Compression,
    /// Extracted metadata (paper §3.4.2) describing the *stored* values
    /// (tokens/indexes for compressed columns, scalars otherwise).
    pub metadata: ColumnMetadata,
}

impl Column {
    /// A plain scalar column.
    pub fn scalar(name: impl Into<String>, dtype: DataType, data: EncodedStream) -> Column {
        Column {
            name: name.into(),
            dtype,
            data,
            compression: Compression::None,
            metadata: ColumnMetadata::unknown(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> u64 {
        self.data.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the value at `row` (slow path: result assembly, tests).
    pub fn value(&self, row: u64) -> Value {
        let raw = self.data.get(row);
        match &self.compression {
            Compression::None => match self.dtype {
                DataType::Real => {
                    let f = f64::from_bits(raw as u64);
                    if tde_types::is_null_real(f) {
                        Value::Null
                    } else {
                        Value::Real(f)
                    }
                }
                dt => Value::from_i64(dt, raw),
            },
            Compression::Array { dictionary, .. } => {
                let scalar = dictionary[raw as usize];
                match self.dtype {
                    DataType::Real => {
                        let f = f64::from_bits(scalar as u64);
                        if tde_types::is_null_real(f) {
                            Value::Null
                        } else {
                            Value::Real(f)
                        }
                    }
                    dt => Value::from_i64(dt, scalar),
                }
            }
            Compression::Heap { heap, .. } => {
                if raw as u64 == NULL_TOKEN {
                    Value::Null
                } else {
                    Value::Str(heap.get_raw(raw as u64).to_owned())
                }
            }
        }
    }

    /// The heap, when heap-compressed.
    pub fn heap(&self) -> Option<&Arc<StringHeap>> {
        match &self.compression {
            Compression::Heap { heap, .. } => Some(heap),
            _ => None,
        }
    }

    /// Physical size: encoded main data plus dictionary/heap storage —
    /// what the column contributes to the single database file.
    pub fn physical_size(&self) -> u64 {
        let aux = match &self.compression {
            Compression::None => 0,
            Compression::Array { dictionary, .. } => (dictionary.len() * 8) as u64,
            Compression::Heap { heap, .. } => heap.byte_size() as u64,
        };
        self.data.physical_size() as u64 + aux
    }

    /// Logical (un-encoded) size: rows × element width plus
    /// dictionary/heap storage.
    pub fn logical_size(&self) -> u64 {
        let aux = match &self.compression {
            Compression::None => 0,
            Compression::Array { dictionary, .. } => (dictionary.len() * 8) as u64,
            Compression::Heap { heap, .. } => heap.byte_size() as u64,
        };
        self.data.logical_size() + aux
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_encodings::dynamic::encode_all;
    use tde_types::sentinel::NULL_I64;
    use tde_types::Width;

    #[test]
    fn scalar_column_values() {
        let r = encode_all(&[10, NULL_I64, 30], Width::W8, true);
        let col = Column::scalar("x", DataType::Integer, r.stream);
        assert_eq!(col.value(0), Value::Int(10));
        assert_eq!(col.value(1), Value::Null);
        assert_eq!(col.value(2), Value::Int(30));
        assert_eq!(col.len(), 3);
    }

    #[test]
    fn real_column_bit_patterns() {
        let vals = [1.5f64, -0.25, f64::from_bits(tde_types::NULL_REAL_BITS)];
        let raw: Vec<i64> = vals.iter().map(|f| f.to_bits() as i64).collect();
        let r = encode_all(&raw, Width::W8, false);
        let col = Column::scalar("r", DataType::Real, r.stream);
        assert_eq!(col.value(0), Value::Real(1.5));
        assert_eq!(col.value(1), Value::Real(-0.25));
        assert_eq!(col.value(2), Value::Null);
    }

    #[test]
    fn array_compressed_column() {
        // Data holds indexes 0..3 into a scalar dictionary.
        let r = encode_all(&[0, 1, 2, 1, 0], Width::W8, false);
        let col = Column {
            name: "d".into(),
            dtype: DataType::Integer,
            data: r.stream,
            compression: Compression::Array {
                dictionary: vec![100, 200, 300],
                sorted: true,
            },
            metadata: ColumnMetadata::unknown(),
        };
        assert_eq!(col.value(0), Value::Int(100));
        assert_eq!(col.value(3), Value::Int(200));
        assert_eq!(col.value(4), Value::Int(100));
    }

    #[test]
    fn heap_compressed_column() {
        let mut heap = StringHeap::new();
        let a = heap.append("alpha") as i64;
        let b = heap.append("beta") as i64;
        let r = encode_all(&[a, b, 0, a], Width::W8, false);
        let col = Column {
            name: "s".into(),
            dtype: DataType::Str,
            data: r.stream,
            compression: Compression::Heap {
                heap: Arc::new(heap),
                sorted: true,
            },
            metadata: ColumnMetadata::unknown(),
        };
        assert_eq!(col.value(0), Value::Str("alpha".into()));
        assert_eq!(col.value(1), Value::Str("beta".into()));
        assert_eq!(col.value(2), Value::Null);
        assert_eq!(col.value(3), Value::Str("alpha".into()));
    }

    #[test]
    fn sizes() {
        let r = encode_all(&(0..10_000).collect::<Vec<_>>(), Width::W8, true);
        let col = Column::scalar("seq", DataType::Integer, r.stream);
        // Affine: physical is tiny, logical is rows × 8.
        assert_eq!(col.logical_size(), 80_000);
        assert!(col.physical_size() < 100);
    }
}

//! Encoding becomes compression (paper §3.4.3).
//!
//! Three conversions exploit the dictionary/frame headers to re-shape a
//! column in time proportional to its *domain* rather than its rows:
//!
//! * **Heap sorting through the encoding dictionary**: when a string
//!   column's token stream is dictionary-encoded, the distinct tokens live
//!   in the entry table. Sorting the (few) distinct strings, rebuilding the
//!   heap in sorted order and writing the new tokens back into the entry
//!   table leaves every row untouched and yields comparable tokens.
//! * **Dictionary encoding → dictionary (array) compression**: the entry
//!   table becomes the compression dictionary and the packed indexes
//!   become the main data — valuable for scalar dimensions such as dates
//!   with few values but expensive calculations.
//! * **Frame-of-reference → sorted scalar dictionary**: the frame and bit
//!   width define the envelope `[frame, frame + 2^bits)`; a sorted
//!   dictionary is generated from it (possibly containing values not in
//!   the column) and the packed offsets become the indexes.

use crate::column::{Column, Compression};
use crate::heap::StringHeap;
use tde_encodings::header::{self, HeaderView};
use tde_encodings::metadata::Knowledge;
use tde_encodings::{frame, manipulate, Algorithm, EncodedStream};
use tde_types::sentinel::NULL_TOKEN;
use tde_types::{Collation, Width};

/// Sort a string heap through the encoding dictionary of its token stream
/// (paper §3.4.3). `stream` must be dictionary-encoded and `heap` distinct
/// (accelerated). Returns the new sorted heap; the stream's entry table is
/// remapped in place and its packed row data is untouched.
pub fn sort_heap_via_dictionary(
    stream: &mut EncodedStream,
    heap: &StringHeap,
    collation: Collation,
) -> StringHeap {
    let entries = stream
        .dict_entries()
        .expect("token stream must be dictionary-encoded");
    // Collect the distinct strings (NULL token stays NULL).
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by(|&a, &b| {
        let (ta, tb) = (entries[a] as u64, entries[b] as u64);
        match (ta == NULL_TOKEN, tb == NULL_TOKEN) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Less, // NULL sorts first
            (false, true) => std::cmp::Ordering::Greater,
            (false, false) => collation.compare(heap.get_raw(ta), heap.get_raw(tb)),
        }
    });
    // Build the new heap in sorted order and record each entry's new token.
    tde_obs::metrics::conversion("heap-sort-via-dictionary");
    tde_obs::emit(|| tde_obs::Event::Conversion {
        column: String::new(),
        route: "heap-sort-via-dictionary",
        detail: format!(
            "{} dictionary entr(ies) sorted; row data untouched",
            entries.len()
        ),
    });
    let mut sorted_heap = StringHeap::new();
    let mut new_entries = vec![0i64; entries.len()];
    for &i in &order {
        let old = entries[i] as u64;
        new_entries[i] = if old == NULL_TOKEN {
            NULL_TOKEN as i64
        } else {
            sorted_heap.append(heap.get_raw(old)) as i64
        };
    }
    manipulate::remap_dict_entries(stream, &new_entries);
    sorted_heap
}

/// Convert a dictionary-*encoded* scalar column into a dictionary-
/// *compressed* one (paper §3.4.3): the entry table becomes the
/// compression dictionary (sorted, so indexes are order-preserving) and
/// the packed indexes become the main data. Cost: O(2^bits) header work
/// plus one header copy; the packed body is reused byte-for-byte.
pub fn dict_encoding_to_compression(col: &mut Column) {
    assert!(
        matches!(col.compression, Compression::None),
        "column is already compressed"
    );
    let h = col.data.header();
    assert_eq!(
        h.algorithm,
        Algorithm::Dictionary,
        "column data is not dictionary-encoded"
    );
    let entries = col.data.dict_entries().expect("dictionary entries");

    // Sort the dictionary and remap the entry table to ranks, so the index
    // stream decodes directly to sorted-dictionary positions.
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by_key(|&i| entries[i]);
    let mut dictionary = Vec::with_capacity(entries.len());
    let mut rank_of = vec![0i64; entries.len()];
    for (rank, &i) in order.iter().enumerate() {
        dictionary.push(entries[i]);
        rank_of[i] = rank as i64;
    }
    manipulate::remap_dict_entries(&mut col.data, &rank_of);
    // The stream now decodes to ranks — exactly the index stream we want.
    // Its element width can narrow to the rank range.
    manipulate::narrow(&mut col.data);

    tde_obs::metrics::conversion("dict-encoding->array-compression");
    tde_obs::emit(|| tde_obs::Event::Conversion {
        column: col.name.clone(),
        route: "dict-encoding->array-compression",
        detail: format!(
            "entry table of {} value(s) became the sorted dictionary; packed body reused",
            dictionary.len()
        ),
    });
    col.compression = Compression::Array {
        dictionary,
        sorted: true,
    };
    col.metadata.cardinality = Some(entries.len() as u64);
    col.metadata.width = col.data.width();
}

/// Convert a frame-of-reference column into a dictionary-compressed one
/// with a *sorted* scalar dictionary generated from the header envelope
/// (paper §3.4.3). The dictionary may contain values that are not actually
/// present in the column; the packed offsets become the indexes verbatim.
pub fn for_encoding_to_compression(col: &mut Column) {
    assert!(
        matches!(col.compression, Compression::None),
        "column is already compressed"
    );
    let h = col.data.header();
    assert_eq!(
        h.algorithm,
        Algorithm::FrameOfReference,
        "column data is not FoR-encoded"
    );
    assert!(
        h.bits <= tde_encodings::DICT_MAX_BITS,
        "envelope too wide for a dictionary"
    );
    let base = frame::frame_value(col.data.as_bytes());
    let dictionary: Vec<i64> = (0..(1i64 << h.bits)).map(|i| base + i).collect();

    // Rewrite the header so the same packed body decodes to offsets
    // (frame 0) — those offsets are the dictionary indexes.
    let mut buf = col.data.as_bytes().to_vec();
    header::put_i64(&mut buf, frame::OFF_FRAME, 0);
    buf[header::OFF_FLAGS] &= !header::FLAG_SIGNED; // indexes are unsigned
    let mut stream = EncodedStream::from_buf(buf);
    let target = Width::for_unsigned_max((dictionary.len() - 1) as u64);
    if target < stream.width() {
        manipulate::set_width(&mut stream, target);
    }

    tde_obs::metrics::conversion("for-encoding->array-compression");
    tde_obs::emit(|| tde_obs::Event::Conversion {
        column: col.name.clone(),
        route: "for-encoding->array-compression",
        detail: format!(
            "envelope [{base}, {base}+{}) generated a sorted dictionary of {} value(s)",
            dictionary.len(),
            dictionary.len()
        ),
    });
    col.data = stream;
    col.compression = Compression::Array {
        dictionary,
        sorted: true,
    };
    col.metadata.width = col.data.width();
}

/// Run-length decomposition route to dictionary compression (paper
/// §3.4.3 last paragraph): decompose an RLE column into value and count
/// streams, dictionary-compress the (few) run values, and rebuild an RLE
/// token stream with the original counts. The result is a scalar
/// dictionary-compressed column whose token stream is run-length encoded.
pub fn rle_to_dict_compression(col: &mut Column) {
    assert!(
        matches!(col.compression, Compression::None),
        "column is already compressed"
    );
    assert_eq!(
        col.data.algorithm(),
        Algorithm::RunLength,
        "column data is not RLE"
    );
    let (values, counts) = manipulate::rle_decompose(&col.data);

    let mut dictionary: Vec<i64> = values.clone();
    dictionary.sort_unstable();
    dictionary.dedup();
    let index_of = |v: i64| dictionary.binary_search(&v).expect("value in dictionary") as i64;
    let tokens: Vec<i64> = values.iter().map(|&v| index_of(v)).collect();

    tde_obs::metrics::conversion("rle->dict-compression");
    tde_obs::emit(|| tde_obs::Event::Conversion {
        column: col.name.clone(),
        route: "rle->dict-compression",
        detail: format!(
            "{} run(s) decomposed; {} distinct value(s) dictionary-compressed",
            values.len(),
            dictionary.len()
        ),
    });
    col.data = manipulate::rle_rebuild(&tokens, &counts, false);
    col.metadata.cardinality = Some(dictionary.len() as u64);
    col.metadata.width = col.data.width();
    col.compression = Compression::Array {
        dictionary,
        sorted: true,
    };
}

/// Heavyweight AlterColumn-style conversion (paper §3.4.3 last
/// paragraph): re-encode a scalar column as a dictionary regardless of its
/// current encoding, then promote to dictionary compression. O(rows) — the
/// cheap header routes above are preferred when they apply. Returns false
/// (column untouched) when the domain exceeds the dictionary limit.
pub fn reencode_as_dictionary(col: &mut Column) -> bool {
    use std::collections::HashSet;
    assert!(
        matches!(col.compression, Compression::None),
        "column is already compressed"
    );
    // Cheap route for RLE columns: decompose runs instead of rows.
    if col.data.algorithm() == Algorithm::RunLength {
        let (values, _) = manipulate::rle_decompose(&col.data);
        let distinct: HashSet<i64> = values.iter().copied().collect();
        if distinct.len() > (1 << tde_encodings::DICT_MAX_BITS) {
            return false;
        }
        rle_to_dict_compression(col);
        return true;
    }
    let data = col.data.decode_all();
    let distinct: HashSet<i64> = data.iter().copied().collect();
    if distinct.is_empty() || distinct.len() > (1 << tde_encodings::DICT_MAX_BITS) {
        return false;
    }
    let bits = tde_encodings::bitpack::bits_for_max(distinct.len() as u64 - 1).max(1);
    let mut stream = EncodedStream::new_dict(Width::W8, true, bits);
    for chunk in data.chunks(tde_encodings::BLOCK_SIZE) {
        stream
            .append_block(chunk)
            .expect("sized dictionary accepts the domain");
    }
    col.data = stream;
    dict_encoding_to_compression(col);
    true
}

/// The forced O(rows) route: decode every row and re-encode as a
/// dictionary, ignoring the run-decomposition shortcut. Exists so the §8
/// rewrite-cost ablation can compare the two routes; production callers
/// should use [`reencode_as_dictionary`].
pub fn reencode_as_dictionary_full(col: &mut Column) -> bool {
    use std::collections::HashSet;
    assert!(
        matches!(col.compression, Compression::None),
        "column is already compressed"
    );
    let data = col.data.decode_all();
    let distinct: HashSet<i64> = data.iter().copied().collect();
    if distinct.is_empty() || distinct.len() > (1 << tde_encodings::DICT_MAX_BITS) {
        return false;
    }
    let bits = tde_encodings::bitpack::bits_for_max(distinct.len() as u64 - 1).max(1);
    let mut stream = EncodedStream::new_dict(Width::W8, true, bits);
    for chunk in data.chunks(tde_encodings::BLOCK_SIZE) {
        stream
            .append_block(chunk)
            .expect("sized dictionary accepts the domain");
    }
    col.data = stream;
    dict_encoding_to_compression(col);
    true
}

/// Mark the metadata consequences of a sorted heap on a column.
pub fn assert_sorted_tokens(col: &mut Column) {
    col.metadata.sorted_heap_tokens = Knowledge::True;
}

/// Validate internal consistency of a converted column (testing aid):
/// every index must be inside the dictionary.
pub fn validate_array_compression(col: &Column) -> bool {
    let Compression::Array { dictionary, .. } = &col.compression else {
        return false;
    };
    let n = dictionary.len() as i64;
    col.data.decode_all().iter().all(|&i| i >= 0 && i < n)
}

/// Re-check that the stream header and the heap agree (testing aid).
pub fn validate_heap_tokens(stream: &EncodedStream, heap: &StringHeap) -> bool {
    let h: HeaderView = stream.header();
    let _ = h;
    stream.decode_all().iter().all(|&t| {
        t as u64 == NULL_TOKEN || {
            let t = t as u64;
            (t as usize) < heap.byte_size() && {
                // get_raw panics on bad offsets; probe carefully.
                heap.get(t).is_some()
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_encodings::BLOCK_SIZE;
    use tde_types::DataType;

    #[test]
    fn dict_to_compression_preserves_values() {
        // A date-like column: few distinct wide values.
        let days = [9000i64, 9100, 9050, 9000, 9100, 9200];
        let mut data: Vec<i64> = Vec::new();
        for i in 0..3000 {
            data.push(days[i % days.len()]);
        }
        let mut stream = EncodedStream::new_dict(Width::W8, true, 3);
        for c in data.chunks(BLOCK_SIZE) {
            stream.append_block(c).unwrap();
        }
        let mut col = Column::scalar("d", DataType::Date, stream);
        dict_encoding_to_compression(&mut col);
        assert!(validate_array_compression(&col));
        match &col.compression {
            Compression::Array { dictionary, sorted } => {
                assert!(*sorted);
                assert_eq!(dictionary, &vec![9000, 9050, 9100, 9200]);
            }
            _ => panic!("expected array compression"),
        }
        for (i, &expected) in data.iter().enumerate().step_by(97) {
            assert_eq!(col.value(i as u64).as_i64(), Some(expected));
        }
        // The index stream narrowed to one byte.
        assert_eq!(col.data.width(), Width::W1);
    }

    #[test]
    fn for_to_compression_envelope_dictionary() {
        let data: Vec<i64> = (0..2000).map(|i| 500 + (i % 30)).collect();
        let mut stream = EncodedStream::new_frame(Width::W8, true, 500, 5);
        for c in data.chunks(BLOCK_SIZE) {
            stream.append_block(c).unwrap();
        }
        let body_before = manipulate::packed_body(&stream).to_vec();
        let mut col = Column::scalar("d", DataType::Integer, stream);
        for_encoding_to_compression(&mut col);
        match &col.compression {
            Compression::Array { dictionary, sorted } => {
                assert!(*sorted);
                // Envelope dictionary covers [500, 532), including values
                // that never occur (30 and 31 offsets).
                assert_eq!(dictionary.len(), 32);
                assert_eq!(dictionary[0], 500);
            }
            _ => panic!("expected array compression"),
        }
        // Body reused byte-for-byte.
        assert_eq!(manipulate::packed_body(&col.data), &body_before[..]);
        for (i, &expected) in data.iter().enumerate().step_by(131) {
            assert_eq!(col.value(i as u64).as_i64(), Some(expected));
        }
    }

    #[test]
    fn rle_to_dict_preserves_values_and_runs() {
        let mut data = Vec::new();
        for v in [700i64, 300, 700, 100] {
            data.extend(std::iter::repeat_n(v, 900));
        }
        let mut stream = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W2);
        for c in data.chunks(BLOCK_SIZE) {
            stream.append_block(c).unwrap();
        }
        let mut col = Column::scalar("v", DataType::Integer, stream);
        rle_to_dict_compression(&mut col);
        assert!(validate_array_compression(&col));
        assert_eq!(col.data.algorithm(), Algorithm::RunLength);
        match &col.compression {
            Compression::Array { dictionary, .. } => {
                assert_eq!(dictionary, &vec![100, 300, 700]);
            }
            _ => panic!(),
        }
        for (i, &expected) in data.iter().enumerate().step_by(251) {
            assert_eq!(col.value(i as u64).as_i64(), Some(expected));
        }
    }

    #[test]
    fn heap_sort_via_dictionary() {
        let mut heap = StringHeap::new();
        let mut tokens = Vec::new();
        for s in ["zeta", "alpha", "mike"] {
            tokens.push(heap.append(s) as i64);
        }
        // Token stream referencing the three strings plus a NULL.
        let rows = [
            tokens[0],
            tokens[1],
            tokens[2],
            NULL_TOKEN as i64,
            tokens[1],
        ];
        let mut stream = EncodedStream::new_dict(Width::W8, false, 3);
        stream.append_block(&rows).unwrap();
        let sorted = sort_heap_via_dictionary(&mut stream, &heap, Collation::Binary);
        assert!(sorted.is_sorted(Collation::Binary));
        assert!(validate_heap_tokens(&stream, &sorted));
        // Row values are preserved.
        let decoded = stream.decode_all();
        assert_eq!(sorted.get(decoded[0] as u64), Some("zeta"));
        assert_eq!(sorted.get(decoded[1] as u64), Some("alpha"));
        assert_eq!(sorted.get(decoded[2] as u64), Some("mike"));
        assert_eq!(decoded[3] as u64, NULL_TOKEN);
        assert_eq!(sorted.get(decoded[4] as u64), Some("alpha"));
        // And tokens now compare like strings.
        assert!(decoded[1] < decoded[2] && decoded[2] < decoded[0]);
    }
}

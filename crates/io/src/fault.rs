//! Deterministic fault injection over the real filesystem.
//!
//! [`FaultIo`] wraps [`RealIo`](crate::RealIo) and injects faults from a
//! seeded [`FaultPlan`]. Everything is counter-driven, never wall-clock
//! or RNG-per-call, so a failing configuration replays identically from
//! its seed:
//!
//! * **Short reads** — every Nth `read_at` returns roughly half the
//!   requested bytes.
//! * **Transient errors** — every Nth `read_at` fails with
//!   [`io::ErrorKind::Interrupted`]; the retry discipline in
//!   [`read_exact_at`](crate::read_exact_at) must absorb these.
//! * **Hard read failures** — the next N reads fail outright
//!   (non-retryable), for poisoning buffer-pool load slots.
//! * **ENOSPC** — writes fail once cumulative bytes exceed a budget.
//! * **Rename failures** — the first N renames fail (transiently: the
//!   backend stays usable, so temp-file cleanup is exercised).
//! * **Dropped fsyncs** — `sync_all` silently does nothing.
//! * **Crash at write boundary k** — mutating operations (create, each
//!   buffered write, fsync, rename) are numbered; operation k tears
//!   (writes a seeded prefix, for writes) or is suppressed (for
//!   create/fsync/rename), and every later mutating operation fails as
//!   if the process were dead. Reads also fail post-crash; a harness
//!   reopens with a fresh backend to model recovery.
//!
//! Injected faults are counted both locally ([`FaultStats`]) and in the
//! process-wide metrics registry (`tde_io_faults_injected_total{kind}`),
//! and land as instants on the query timeline when tracing is on.

use crate::{IoFile, IoWriter, RealIo, StorageIo};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Seeded, deterministic fault schedule. `..Default::default()` disables
/// every fault; enable only what a test needs.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Mixed into torn-write prefix lengths so different seeds tear at
    /// different byte offsets.
    pub seed: u64,
    /// Every Nth `read_at` (1-based) returns a short read. Use N ≥ 2.
    pub short_read_period: Option<u64>,
    /// Every Nth `read_at` fails with `Interrupted`. Use N ≥ 2 so a
    /// bounded retry always succeeds.
    pub transient_read_period: Option<u64>,
    /// Cumulative write budget in bytes; writes beyond it fail with
    /// [`io::ErrorKind::StorageFull`].
    pub enospc_after_bytes: Option<u64>,
    /// Fail the first N renames with a transient error.
    pub fail_renames: u64,
    /// Turn `sync_all` into a silent no-op.
    pub drop_fsync: bool,
    /// Crash at mutating-operation index k (0-based). See module docs.
    pub crash_at_op: Option<u64>,
}

/// Snapshot of the faults a [`FaultIo`] has injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Total `read_at` calls observed.
    pub reads: u64,
    /// Short reads injected.
    pub short_reads: u64,
    /// Transient (`Interrupted`) read errors injected.
    pub transient_read_errors: u64,
    /// Hard (non-retryable) read errors injected.
    pub hard_read_errors: u64,
    /// Mutating operations observed (create / write / fsync / rename).
    pub mutating_ops: u64,
    /// Writes rejected with `StorageFull`.
    pub enospc_errors: u64,
    /// Renames failed.
    pub renames_failed: u64,
    /// Fsyncs silently dropped.
    pub fsyncs_dropped: u64,
    /// Did the crash fire?
    pub crashed: bool,
}

#[derive(Debug)]
struct State {
    plan: FaultPlan,
    inner: RealIo,
    reads: AtomicU64,
    short_reads: AtomicU64,
    transient_read_errors: AtomicU64,
    hard_read_errors: AtomicU64,
    /// Countdown of pending hard read failures (armed by tests).
    hard_reads_armed: AtomicU64,
    mut_ops: AtomicU64,
    bytes_written: AtomicU64,
    enospc_errors: AtomicU64,
    renames_failed: AtomicU64,
    fsyncs_dropped: AtomicU64,
    crashed: AtomicBool,
}

impl State {
    fn crash_error(&self) -> io::Error {
        io::Error::other("injected crash: backend is dead")
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.crashed.load(Ordering::SeqCst) {
            Err(self.crash_error())
        } else {
            Ok(())
        }
    }

    /// Number the next mutating operation; if it is the crash boundary,
    /// flip into the dead state and report it.
    fn next_mutating_op(&self) -> io::Result<(u64, bool)> {
        self.check_alive()?;
        let k = self.mut_ops.fetch_add(1, Ordering::SeqCst);
        let crash_here = self.plan.crash_at_op == Some(k);
        if crash_here {
            self.crashed.store(true, Ordering::SeqCst);
            tde_obs::metrics::io_fault_injected("crash");
            tde_obs::timeline::io_fault("crash");
        }
        Ok((k, crash_here))
    }
}

/// A fault-injecting [`StorageIo`] backend over the real filesystem.
/// Clones share state: fault counters and the crash flag span every file
/// opened through the same `FaultIo`.
#[derive(Debug, Clone)]
pub struct FaultIo {
    state: Arc<State>,
}

impl FaultIo {
    /// Wrap the real filesystem with the given fault plan.
    pub fn new(plan: FaultPlan) -> FaultIo {
        FaultIo {
            state: Arc::new(State {
                plan,
                inner: RealIo,
                reads: AtomicU64::new(0),
                short_reads: AtomicU64::new(0),
                transient_read_errors: AtomicU64::new(0),
                hard_read_errors: AtomicU64::new(0),
                hard_reads_armed: AtomicU64::new(0),
                mut_ops: AtomicU64::new(0),
                bytes_written: AtomicU64::new(0),
                enospc_errors: AtomicU64::new(0),
                renames_failed: AtomicU64::new(0),
                fsyncs_dropped: AtomicU64::new(0),
                crashed: AtomicBool::new(false),
            }),
        }
    }

    /// A fault-free instance that only counts operations — used to
    /// discover how many write boundaries a save performs before
    /// sweeping `crash_at_op` over them.
    pub fn counting() -> FaultIo {
        FaultIo::new(FaultPlan::default())
    }

    /// Arm the next `n` `read_at` calls to fail with a hard
    /// (non-retryable) error. Counted in
    /// [`FaultStats::hard_read_errors`].
    pub fn arm_hard_read_failures(&self, n: u64) {
        self.state.hard_reads_armed.store(n, Ordering::SeqCst);
    }

    /// Mutating operations observed so far (create / write / fsync /
    /// rename). After a fault-free save this is the boundary count to
    /// sweep `crash_at_op` over.
    pub fn ops_observed(&self) -> u64 {
        self.state.mut_ops.load(Ordering::SeqCst)
    }

    /// Did the planned crash boundary fire?
    pub fn crashed(&self) -> bool {
        self.state.crashed.load(Ordering::SeqCst)
    }

    /// Snapshot the injected-fault counters.
    pub fn stats(&self) -> FaultStats {
        let s = &self.state;
        FaultStats {
            reads: s.reads.load(Ordering::SeqCst),
            short_reads: s.short_reads.load(Ordering::SeqCst),
            transient_read_errors: s.transient_read_errors.load(Ordering::SeqCst),
            hard_read_errors: s.hard_read_errors.load(Ordering::SeqCst),
            mutating_ops: s.mut_ops.load(Ordering::SeqCst),
            enospc_errors: s.enospc_errors.load(Ordering::SeqCst),
            renames_failed: s.renames_failed.load(Ordering::SeqCst),
            fsyncs_dropped: s.fsyncs_dropped.load(Ordering::SeqCst),
            crashed: s.crashed.load(Ordering::SeqCst),
        }
    }
}

#[derive(Debug)]
struct FaultFile {
    inner: Box<dyn IoFile>,
    state: Arc<State>,
}

impl IoFile for FaultFile {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        let st = &self.state;
        st.check_alive()?;
        // 1-based read number, driving the counter-periodic faults below.
        let k = st.reads.fetch_add(1, Ordering::SeqCst) + 1;
        // Hard failures first: they model a genuinely bad sector, which
        // no retry discipline should paper over.
        if st
            .hard_reads_armed
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            st.hard_read_errors.fetch_add(1, Ordering::SeqCst);
            tde_obs::metrics::io_fault_injected("hard-read");
            tde_obs::timeline::io_fault("hard-read");
            return Err(io::Error::other("injected hard read failure"));
        }
        if let Some(p) = st.plan.transient_read_period {
            if p >= 1 && k.is_multiple_of(p) {
                st.transient_read_errors.fetch_add(1, Ordering::SeqCst);
                tde_obs::metrics::io_fault_injected("transient-read");
                tde_obs::timeline::io_fault("transient-read");
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "injected transient read error",
                ));
            }
        }
        if let Some(p) = st.plan.short_read_period {
            if p >= 1 && k.is_multiple_of(p) && buf.len() > 1 {
                st.short_reads.fetch_add(1, Ordering::SeqCst);
                tde_obs::metrics::io_fault_injected("short-read");
                tde_obs::timeline::io_fault("short-read");
                let half = (buf.len() / 2).max(1);
                return self.inner.read_at(&mut buf[..half], offset);
            }
        }
        self.inner.read_at(buf, offset)
    }

    fn len(&self) -> io::Result<u64> {
        self.state.check_alive()?;
        self.inner.len()
    }
}

#[derive(Debug)]
struct FaultWriter {
    inner: Box<dyn IoWriter>,
    state: Arc<State>,
}

impl io::Write for FaultWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let st = Arc::clone(&self.state);
        if let Some(limit) = st.plan.enospc_after_bytes {
            st.check_alive()?;
            if st.bytes_written.load(Ordering::SeqCst) + buf.len() as u64 > limit {
                st.enospc_errors.fetch_add(1, Ordering::SeqCst);
                tde_obs::metrics::io_fault_injected("enospc");
                tde_obs::timeline::io_fault("enospc");
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "injected ENOSPC: write budget exhausted",
                ));
            }
        }
        let (k, crash_here) = st.next_mutating_op()?;
        if crash_here {
            // Torn write: a seeded prefix of this buffer reaches the
            // file before the "power goes out".
            let keep = (splitmix(st.plan.seed ^ k) % (buf.len() as u64 + 1)) as usize;
            if keep > 0 {
                self.inner.write_all(&buf[..keep]).ok();
                self.inner.flush().ok();
            }
            return Err(st.crash_error());
        }
        self.inner.write_all(buf)?;
        st.bytes_written
            .fetch_add(buf.len() as u64, Ordering::SeqCst);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.state.check_alive()?;
        self.inner.flush()
    }
}

impl IoWriter for FaultWriter {
    fn sync_all(&mut self) -> io::Result<()> {
        let st = Arc::clone(&self.state);
        let (_, crash_here) = st.next_mutating_op()?;
        if crash_here {
            return Err(st.crash_error());
        }
        if st.plan.drop_fsync {
            st.fsyncs_dropped.fetch_add(1, Ordering::SeqCst);
            tde_obs::metrics::io_fault_injected("fsync-drop");
            tde_obs::timeline::io_fault("fsync-drop");
            return Ok(());
        }
        self.inner.sync_all()
    }
}

impl StorageIo for FaultIo {
    fn open(&self, path: &Path) -> io::Result<Box<dyn IoFile>> {
        self.state.check_alive()?;
        Ok(Box::new(FaultFile {
            inner: self.state.inner.open(path)?,
            state: Arc::clone(&self.state),
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn IoWriter>> {
        let (_, crash_here) = self.state.next_mutating_op()?;
        if crash_here {
            return Err(self.state.crash_error());
        }
        Ok(Box::new(FaultWriter {
            inner: self.state.inner.create(path)?,
            state: Arc::clone(&self.state),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let (_, crash_here) = self.state.next_mutating_op()?;
        if crash_here {
            return Err(self.state.crash_error());
        }
        if self
            .state
            .renames_failed
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.state.plan.fail_renames).then_some(n + 1)
            })
            .is_ok()
        {
            tde_obs::metrics::io_fault_injected("rename");
            tde_obs::timeline::io_fault("rename");
            return Err(io::Error::other("injected rename failure"));
        }
        self.state.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        // Not a numbered boundary: cleanup only runs on error paths, and
        // numbering it would make boundary counts diverge between the
        // counting pass and the crash sweep. A dead backend still
        // refuses, so crash mode realistically strands the temp file.
        self.state.check_alive()?;
        self.state.inner.remove_file(path)
    }
}

/// splitmix64 — a tiny seeded mixer for torn-write prefix lengths.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read_exact_at;
    use std::io::Write;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("tde_io_fault_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn write_file(io: &dyn StorageIo, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut w = io.create(path)?;
        w.write_all(bytes)?;
        w.flush()?;
        w.sync_all()
    }

    #[test]
    fn transient_and_short_reads_are_absorbed_by_retry() {
        let path = tmp("retry.bin");
        let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        write_file(&RealIo, &path, &payload).unwrap();
        let io = FaultIo::new(FaultPlan {
            transient_read_period: Some(2),
            short_read_period: Some(3),
            ..Default::default()
        });
        let f = io.open(&path).unwrap();
        let mut buf = vec![0u8; payload.len()];
        for (i, chunk) in buf.chunks_mut(1000).enumerate() {
            read_exact_at(&*f, chunk, (i * 1000) as u64, "test").unwrap();
        }
        assert_eq!(buf, payload);
        let stats = io.stats();
        assert!(stats.transient_read_errors > 0, "{stats:?}");
        assert!(stats.short_reads > 0, "{stats:?}");
    }

    #[test]
    fn hard_read_failures_are_not_retried() {
        let path = tmp("hard.bin");
        write_file(&RealIo, &path, &[7u8; 64]).unwrap();
        let io = FaultIo::new(FaultPlan::default());
        let f = io.open(&path).unwrap();
        io.arm_hard_read_failures(2);
        let mut buf = [0u8; 8];
        assert!(read_exact_at(&*f, &mut buf, 0, "test").is_err());
        assert!(read_exact_at(&*f, &mut buf, 0, "test").is_err());
        read_exact_at(&*f, &mut buf, 0, "test").unwrap();
        assert_eq!(io.stats().hard_read_errors, 2);
    }

    #[test]
    fn enospc_fires_at_the_budget() {
        let path = tmp("enospc.bin");
        let io = FaultIo::new(FaultPlan {
            enospc_after_bytes: Some(10),
            ..Default::default()
        });
        let mut w = io.create(&path).unwrap();
        w.write_all(&[0u8; 8]).unwrap();
        let err = w.write_all(&[0u8; 8]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(io.stats().enospc_errors, 1);
    }

    #[test]
    fn crash_boundary_kills_the_backend() {
        let path = tmp("crash.bin");
        // Boundary 0 is the create itself.
        let io = FaultIo::new(FaultPlan {
            crash_at_op: Some(0),
            ..Default::default()
        });
        assert!(io.create(&path).is_err());
        assert!(io.crashed());
        assert!(io.open(&path).is_err(), "dead backend must refuse reads");
        assert!(io.remove_file(&path).is_err());

        // Boundary 1 is the first write: the file exists but holds at
        // most a torn prefix.
        let io = FaultIo::new(FaultPlan {
            seed: 42,
            crash_at_op: Some(1),
            ..Default::default()
        });
        let mut w = io.create(&path).unwrap();
        assert!(w.write_all(&[9u8; 100]).is_err());
        assert!(io.crashed());
        let on_disk = std::fs::read(&path).unwrap();
        assert!(on_disk.len() < 100, "torn write must be a strict prefix");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn counting_mode_reports_boundaries_and_injects_nothing() {
        let path = tmp("count.bin");
        let io = FaultIo::counting();
        write_file(&io, &path, &[1u8; 32]).unwrap();
        // create + write + sync = 3 mutating ops (flush of a raw file
        // write is not numbered).
        assert_eq!(io.ops_observed(), 3);
        let stats = io.stats();
        assert_eq!(
            stats.short_reads + stats.transient_read_errors + stats.enospc_errors,
            0
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rename_failures_are_transient() {
        let a = tmp("ren_a.bin");
        let b = tmp("ren_b.bin");
        write_file(&RealIo, &a, &[3u8; 16]).unwrap();
        let io = FaultIo::new(FaultPlan {
            fail_renames: 1,
            ..Default::default()
        });
        assert!(io.rename(&a, &b).is_err());
        io.rename(&a, &b).unwrap();
        assert_eq!(io.stats().renames_failed, 1);
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn dropped_fsync_is_silent() {
        let path = tmp("fsync.bin");
        let io = FaultIo::new(FaultPlan {
            drop_fsync: true,
            ..Default::default()
        });
        write_file(&io, &path, &[5u8; 16]).unwrap();
        assert_eq!(io.stats().fsyncs_dropped, 1);
        std::fs::remove_file(&path).ok();
    }
}

//! Storage I/O abstraction for the paged engine.
//!
//! Every byte the pager reads or writes flows through a [`StorageIo`]
//! backend. The production backend ([`RealIo`]) is a thin veneer over the
//! filesystem: `pread` on unix, seek-under-mutex elsewhere, `fsync` and
//! atomic `rename` for the save path. The testing backend
//! ([`fault::FaultIo`]) wraps the same filesystem but injects seeded,
//! deterministic faults — short reads, transient `EINTR`-style errors,
//! `ENOSPC`, torn writes, dropped fsyncs, and a "crash at write boundary
//! k" mode — so the crash-consistency harness can replay a save with a
//! failure at every boundary and prove the reopen invariant (old state or
//! new state, never a hybrid).
//!
//! The crate also owns the segment [`checksum`] (FNV-1a 64) and the
//! [`ChecksumMismatch`] error the pager raises instead of handing
//! corrupted bytes to the decoders. FNV-1a's per-byte step
//! `h ← (h ⊕ b) · p` is a bijection on the 64-bit state for any fixed
//! byte, so two equal-length inputs differing in any one byte *always*
//! hash differently: single-byte corruption detection is deterministic,
//! not probabilistic.
//!
//! Read retries are centralized in [`read_exact_at`]: short reads resume
//! where they left off, transient errors are retried with bounded
//! backoff, and every retry is counted in `tde_io_retries_total`.

pub mod fault;

use std::fmt;
use std::io;
use std::path::Path;

pub use fault::{FaultIo, FaultPlan, FaultStats};

/// A read-only handle supporting positioned reads.
///
/// `read_at` has `pread` semantics: it may return fewer bytes than
/// requested and must not disturb any shared cursor. Callers that need
/// the whole range use [`read_exact_at`], which handles short reads and
/// transient errors.
#[allow(clippy::len_without_is_empty)] // fallible len: is_empty has no natural shape
pub trait IoFile: Send + Sync + fmt::Debug {
    /// One positioned read; may be short, may fail transiently with
    /// [`io::ErrorKind::Interrupted`].
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize>;
    /// Total file length in bytes.
    fn len(&self) -> io::Result<u64>;
}

/// A write handle for the save path: sequential writes plus a durability
/// barrier.
pub trait IoWriter: io::Write + Send + fmt::Debug {
    /// Flush file contents (and metadata) to stable storage.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// A storage backend: opens files for positioned reads, creates files
/// for sequential writes, and performs the rename/unlink pair the atomic
/// save protocol needs.
pub trait StorageIo: Send + Sync + fmt::Debug {
    /// Open an existing file for positioned reads.
    fn open(&self, path: &Path) -> io::Result<Box<dyn IoFile>>;
    /// Create (truncate) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn IoWriter>>;
    /// Atomically replace `to` with `from` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file (best-effort cleanup of temporaries).
    fn remove_file(&self, path: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------------------
// Real filesystem backend
// ---------------------------------------------------------------------------

/// The production backend: plain filesystem calls, no faults.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

#[derive(Debug)]
struct RealFile {
    #[cfg(unix)]
    file: std::fs::File,
    #[cfg(not(unix))]
    file: parking_lot::Mutex<std::fs::File>,
}

impl IoFile for RealFile {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut f = self.file.lock();
            f.seek(SeekFrom::Start(offset))?;
            f.read(buf)
        }
    }

    fn len(&self) -> io::Result<u64> {
        #[cfg(unix)]
        {
            Ok(self.file.metadata()?.len())
        }
        #[cfg(not(unix))]
        {
            Ok(self.file.lock().metadata()?.len())
        }
    }
}

#[derive(Debug)]
struct RealWriter {
    file: std::fs::File,
}

impl io::Write for RealWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.file.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }
}

impl IoWriter for RealWriter {
    fn sync_all(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }
}

impl StorageIo for RealIo {
    fn open(&self, path: &Path) -> io::Result<Box<dyn IoFile>> {
        let file = std::fs::File::open(path)?;
        #[cfg(unix)]
        {
            Ok(Box::new(RealFile { file }))
        }
        #[cfg(not(unix))]
        {
            Ok(Box::new(RealFile {
                file: parking_lot::Mutex::new(file),
            }))
        }
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn IoWriter>> {
        Ok(Box::new(RealWriter {
            file: std::fs::File::create(path)?,
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

// ---------------------------------------------------------------------------
// Retrying reads
// ---------------------------------------------------------------------------

/// How many transient ([`io::ErrorKind::Interrupted`]) failures a single
/// [`read_exact_at`] call absorbs before giving up.
pub const MAX_READ_RETRIES: u32 = 8;

/// Fill `buf` from `offset`, resuming short reads and retrying transient
/// errors with bounded backoff. `op` labels the retry counter
/// (`tde_io_retries_total{op=...}`) and the error message.
pub fn read_exact_at(
    f: &dyn IoFile,
    buf: &mut [u8],
    offset: u64,
    op: &'static str,
) -> io::Result<()> {
    let mut pos = 0usize;
    let mut retries = 0u32;
    while pos < buf.len() {
        match f.read_at(&mut buf[pos..], offset + pos as u64) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("unexpected end of file reading {op} segment"),
                ))
            }
            Ok(n) => pos += n, // short reads just resume; progress resets nothing
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                retries += 1;
                if retries > MAX_READ_RETRIES {
                    return Err(io::Error::other(format!(
                        "{op} read failed after {MAX_READ_RETRIES} retries: {e}"
                    )));
                }
                tde_obs::metrics::io_retry(op);
                tde_obs::timeline::io_retry(op);
                if retries > 2 {
                    // Bounded exponential backoff, capped at ~1 ms.
                    std::thread::sleep(std::time::Duration::from_micros(1u64 << retries.min(10)));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Checksums
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit checksum over a byte slice.
///
/// Each step is a bijection on the hash state, so any single-byte
/// substitution in equal-length inputs is detected deterministically.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Typed payload of a checksum-verification failure, carried inside an
/// [`io::Error`] of kind [`io::ErrorKind::InvalidData`]. Recover it with
/// [`checksum_mismatch_details`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChecksumMismatch {
    /// Which segment kind failed ("stream", "dictionary", "heap",
    /// "delta", "tombstone", "directory").
    pub segment: &'static str,
    /// Checksum recorded in the directory.
    pub expected: u64,
    /// Checksum of the bytes actually read.
    pub actual: u64,
}

impl fmt::Display for ChecksumMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "checksum mismatch in {} segment: directory says {:#018x}, bytes hash to {:#018x}",
            self.segment, self.expected, self.actual
        )
    }
}

impl std::error::Error for ChecksumMismatch {}

/// Build the [`io::Error`] for a failed segment verification.
pub fn checksum_mismatch(segment: &'static str, expected: u64, actual: u64) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        ChecksumMismatch {
            segment,
            expected,
            actual,
        },
    )
}

/// Is this error a segment checksum failure?
pub fn is_checksum_mismatch(e: &io::Error) -> bool {
    checksum_mismatch_details(e).is_some()
}

/// The typed payload of a checksum failure, if this error carries one.
pub fn checksum_mismatch_details(e: &io::Error) -> Option<&ChecksumMismatch> {
    e.get_ref().and_then(|inner| inner.downcast_ref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_detects_every_single_byte_substitution() {
        let base: Vec<u8> = (0..257u32).map(|i| (i % 251) as u8).collect();
        let h = checksum(&base);
        for at in 0..base.len() {
            for delta in [1u8, 0x80, 0xFF] {
                let mut mutated = base.clone();
                mutated[at] = mutated[at].wrapping_add(delta);
                assert_ne!(
                    checksum(&mutated),
                    h,
                    "substitution at byte {at} (+{delta}) must change the checksum"
                );
            }
        }
    }

    #[test]
    fn checksum_error_is_typed_and_recoverable() {
        let e = checksum_mismatch("stream", 1, 2);
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(is_checksum_mismatch(&e));
        let d = checksum_mismatch_details(&e).unwrap();
        assert_eq!((d.segment, d.expected, d.actual), ("stream", 1, 2));
        assert!(e.to_string().contains("checksum mismatch in stream"));
        let other = io::Error::new(io::ErrorKind::InvalidData, "not a checksum error");
        assert!(!is_checksum_mismatch(&other));
    }

    #[test]
    fn real_io_roundtrip_and_positioned_reads() {
        let dir = std::env::temp_dir().join("tde_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("real.bin");
        let io = RealIo;
        {
            use std::io::Write;
            let mut w = io.create(&path).unwrap();
            w.write_all(b"hello, positioned world").unwrap();
            w.sync_all().unwrap();
        }
        let f = io.open(&path).unwrap();
        assert_eq!(f.len().unwrap(), 23);
        let mut buf = [0u8; 10];
        read_exact_at(&*f, &mut buf, 7, "test").unwrap();
        assert_eq!(&buf, b"positioned");
        // Reading past EOF is an UnexpectedEof, not a panic.
        let mut buf = [0u8; 8];
        let err = read_exact_at(&*f, &mut buf, 20, "test").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        let renamed = dir.join("real2.bin");
        io.rename(&path, &renamed).unwrap();
        assert!(io.open(&path).is_err());
        io.remove_file(&renamed).unwrap();
    }
}

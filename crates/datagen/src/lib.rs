//! Workload generators for the paper's experiments (§5.2–5.3).
//!
//! The paper evaluates on TPC-H dbgen output (SF-1 and SF-30), a 25 GB FAA
//! on-time "Flights" extract, and artificial run-length tables of 1 M and
//! 1 B rows. None of those artifacts are available here, so this crate
//! regenerates their *shapes* (see DESIGN.md §2 for the substitution
//! rationale):
//!
//! * [`tpch`] — all eight TPC-H tables as `|`-separated text with dbgen's
//!   key structure, value domains and string shapes (fixed-width
//!   `Customer#%09d` names, random-word comments, the 1992–1998 date
//!   ranges, …).
//! * [`flights`] — FAA on-time-style rows: small-domain string columns
//!   (carriers, airports), low-cardinality integers, a leading date
//!   column, and *no* large random string column.
//! * [`rle`] — the §5.3 tables: two uniformly distributed `[0, 100)`
//!   columns, sorted ascending on both, at a configurable row count.

pub mod flights;
pub mod rle;
pub mod tpch;
pub mod words;

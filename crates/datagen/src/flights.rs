//! FAA on-time ("Flights") style generator (paper §5.2).
//!
//! The paper's Flights extract is ten years of FAA on-time flight data:
//! 67 M rows, 25 GB of text. Its compression-relevant signature — called
//! out explicitly in §5.2 and §6.2 — is that *all* string columns have
//! small domains (carrier codes, airport codes, tail numbers) and there is
//! no large random string column like `l_comment`. Rows are emitted in
//! date order, which is typical for such extracts and what makes the date
//! column delta/RLE-friendly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use tde_types::datetime::{days_from_ymd, ymd_from_days};
use tde_types::DataType;

/// Two-letter carrier codes (the real domain is ~14).
pub const CARRIERS: [&str; 14] = [
    "AA", "AS", "B6", "CO", "DL", "EV", "F9", "FL", "HA", "MQ", "NW", "OO", "UA", "WN",
];

/// Airport codes (the real domain is ~300; 60 preserves the small-domain
/// property at our scale).
pub const AIRPORTS: [&str; 60] = [
    "ATL", "LAX", "ORD", "DFW", "DEN", "JFK", "SFO", "SEA", "LAS", "MCO", "EWR", "CLT", "PHX",
    "IAH", "MIA", "BOS", "MSP", "FLL", "DTW", "PHL", "LGA", "BWI", "SLC", "SAN", "IAD", "DCA",
    "MDW", "TPA", "PDX", "HNL", "STL", "HOU", "AUS", "OAK", "MSY", "RDU", "SJC", "SNA", "DAL",
    "SMF", "SAT", "RSW", "PIT", "CLE", "IND", "MCI", "CMH", "OGG", "PBI", "BDL", "CVG", "JAX",
    "ANC", "BUF", "ABQ", "ONT", "OMA", "BUR", "MEM", "OKC",
];

/// Column names and logical types of the generated file.
pub fn schema() -> Vec<(&'static str, DataType)> {
    use DataType::*;
    vec![
        ("flight_date", Date),
        ("carrier", Str),
        ("flight_num", Integer),
        ("tail_num", Str),
        ("origin", Str),
        ("dest", Str),
        ("crs_dep_time", Integer),
        ("dep_delay", Integer),
        ("arr_delay", Integer),
        ("distance", Integer),
        ("cancelled", Bool),
    ]
}

/// Write `rows` flight records (comma-separated, with a header row) into
/// `path`. Rows span ten years of dates in ascending order.
pub fn write_file(path: impl AsRef<Path>, rows: u64, seed: u64) -> io::Result<PathBuf> {
    let path = path.as_ref().to_path_buf();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut w = BufWriter::with_capacity(1 << 20, std::fs::File::create(&path)?);
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<&str> = schema().iter().map(|(n, _)| *n).collect();
    writeln!(w, "{}", names.join(","))?;

    let start = days_from_ymd(1998, 1, 1);
    let end = days_from_ymd(2007, 12, 31);
    let span = (end - start) as u64 + 1;
    for i in 0..rows {
        // Ascending dates: row i belongs to day floor(i * span / rows).
        let date = start + (i as i64 * span as i64) / rows.max(1) as i64;
        let (y, m, d) = ymd_from_days(date);
        let carrier = CARRIERS[rng.gen_range(0..CARRIERS.len())];
        let tail = format!(
            "N{:03}{}",
            rng.gen_range(0..500),
            carrier.as_bytes()[0] as char
        );
        let origin_idx = rng.gen_range(0..AIRPORTS.len());
        let origin = AIRPORTS[origin_idx];
        // Sample dest from the 59 non-origin airports directly (a retry
        // that re-included the origin was how this used to go wrong).
        let mut dest_idx = rng.gen_range(0..AIRPORTS.len() - 1);
        if dest_idx >= origin_idx {
            dest_idx += 1;
        }
        let dest = AIRPORTS[dest_idx];
        let dep_time = rng.gen_range(5..23) * 100 + rng.gen_range(0..60);
        let cancelled = rng.gen_bool(0.02);
        let dep_delay: i64 = if cancelled {
            0
        } else {
            rng.gen_range(-10..120)
        };
        let arr_delay = if cancelled {
            0
        } else {
            dep_delay + rng.gen_range(-15..30)
        };
        writeln!(
            w,
            "{y:04}-{m:02}-{d:02},{carrier},{},{tail},{origin},{dest},{dep_time},{dep_delay},{arr_delay},{},{}",
            rng.gen_range(1..7000),
            rng.gen_range(100..2800),
            if cancelled { "true" } else { "false" },
        )?;
    }
    w.flush()?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_row_shape() {
        let p = std::env::temp_dir().join("tde_flights_test/f.csv");
        write_file(&p, 500, 11).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap().split(',').count(), schema().len());
        for line in lines {
            assert_eq!(line.split(',').count(), schema().len(), "{line:?}");
        }
        assert_eq!(text.lines().count(), 501);
    }

    #[test]
    fn dates_are_ascending() {
        let p = std::env::temp_dir().join("tde_flights_test/sorted.csv");
        write_file(&p, 1000, 5).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        let dates: Vec<&str> = text
            .lines()
            .skip(1)
            .map(|l| l.split(',').next().unwrap())
            .collect();
        assert!(dates.windows(2).all(|w| w[0] <= w[1]));
        assert!(dates[0].starts_with("1998"));
        assert!(dates.last().unwrap().starts_with("2007"));
    }

    #[test]
    fn string_domains_are_small() {
        let p = std::env::temp_dir().join("tde_flights_test/domains.csv");
        write_file(&p, 2000, 5).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        let carriers: std::collections::HashSet<&str> = text
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap())
            .collect();
        assert!(carriers.len() <= CARRIERS.len());
        let origins: std::collections::HashSet<&str> = text
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(4).unwrap())
            .collect();
        assert!(origins.len() <= AIRPORTS.len());
    }

    #[test]
    fn origin_never_equals_dest() {
        let p = std::env::temp_dir().join("tde_flights_test/od.csv");
        write_file(&p, 3000, 5).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        for line in text.lines().skip(1) {
            let f: Vec<&str> = line.split(',').collect();
            assert_ne!(f[4], f[5]);
        }
    }
}

//! Word pools and text synthesis shared by the generators.

use rand::rngs::StdRng;
use rand::Rng;

/// Vocabulary for comment text, loosely modelled on dbgen's grammar pools.
pub const WORDS: &[&str] = &[
    "furiously",
    "slyly",
    "carefully",
    "quickly",
    "blithely",
    "express",
    "regular",
    "special",
    "final",
    "ironic",
    "pending",
    "bold",
    "even",
    "silent",
    "daring",
    "unusual",
    "close",
    "quiet",
    "accounts",
    "packages",
    "deposits",
    "requests",
    "instructions",
    "foxes",
    "pinto",
    "beans",
    "theodolites",
    "dependencies",
    "platelets",
    "ideas",
    "asymptotes",
    "somas",
    "dugouts",
    "realms",
    "sauternes",
    "warthogs",
    "sheaves",
    "sentiments",
    "sleep",
    "wake",
    "haggle",
    "nag",
    "cajole",
    "doze",
    "boost",
    "engage",
    "detect",
    "integrate",
    "among",
    "above",
    "beneath",
    "against",
    "according",
    "to",
    "the",
    "of",
];

/// Colors for part names (dbgen's P_NAME pool).
pub const COLORS: &[&str] = &[
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "indian",
    "ivory",
    "khaki",
];

/// Generate a comment of `min..=max` characters from the word pool.
pub fn comment(rng: &mut StdRng, min: usize, max: usize) -> String {
    let target = rng.gen_range(min..=max);
    let mut out = String::with_capacity(target + 12);
    while out.len() < target {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    out.truncate(target);
    // Avoid a trailing space after truncation.
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// A phone number in dbgen's `CC-NNN-NNN-NNNN` shape.
pub fn phone(rng: &mut StdRng, nation: i64) -> String {
    format!(
        "{:02}-{:03}-{:03}-{:04}",
        10 + nation,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    )
}

/// A random alphanumeric address of varying length.
pub fn address(rng: &mut StdRng) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,";
    let len = rng.gen_range(10..40);
    (0..len)
        .map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn comment_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let c = comment(&mut rng, 10, 43);
            assert!(c.len() <= 43, "{c:?} too long");
            assert!(!c.ends_with(' '));
            assert!(!c.is_empty());
        }
    }

    #[test]
    fn phone_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = phone(&mut rng, 7);
        assert_eq!(p.len(), 15);
        assert!(p.starts_with("17-"));
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(comment(&mut a, 5, 30), comment(&mut b, 5, 30));
    }
}

//! Artificial run-length tables (paper §5.3).
//!
//! Two columns — *primary* and *secondary* — of uniformly distributed
//! values in `[0, 100)`, with the table sorted ascending on both columns.
//! Sorting makes both columns runs of equal values: the primary column has
//! ~100 runs of `rows/100` values; the secondary column has ~100 runs of
//! `rows/10⁴` values *inside each primary run*.
//!
//! The paper's crossover (Fig 10) lives in the secondary run length: at
//! 1 M rows the secondary runs are ~100 values — smaller than the block
//! iteration size, so ordered retrieval degrades; at 1 B rows they are
//! ~100 k values and ordered retrieval wins ~3×. We reproduce both regimes
//! at 1 M and a configurable "large" row count (runs only need to clear
//! the 1024-value block size, which 32 M rows does with runs of ~3200).
//!
//! Rather than materializing and sorting `rows` pairs, the generator draws
//! the multinomial cell counts directly, producing the sorted table's runs
//! in O(100²) — that is also exactly the (value, count) structure the
//! run-length encoder would discover.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The value domain: uniform in `[0, DOMAIN)`.
pub const DOMAIN: i64 = 100;

/// The sorted table, in run form.
#[derive(Debug, Clone)]
pub struct RleTable {
    /// Total rows.
    pub rows: u64,
    /// `counts[p][s]` = number of rows with primary `p` and secondary `s`.
    pub counts: Vec<Vec<u64>>,
}

impl RleTable {
    /// Generate the sorted table for `rows` rows.
    pub fn generate(rows: u64, seed: u64) -> RleTable {
        let mut rng = StdRng::seed_from_u64(seed);
        let cells = (DOMAIN * DOMAIN) as u64;
        // Exact multinomial via sequential draws is O(rows); approximate
        // with mean ± jitter for large tables (the distribution detail is
        // irrelevant — only run lengths matter) but stay exact in total.
        let mut counts = vec![vec![0u64; DOMAIN as usize]; DOMAIN as usize];
        let mean = rows / cells;
        let mut assigned = 0u64;
        for row in counts.iter_mut() {
            for cell in row.iter_mut() {
                let jitter = if mean > 10 {
                    rng.gen_range(0..=(mean / 5).max(1) * 2) as i64 - (mean / 5).max(1) as i64
                } else {
                    0
                };
                let c = (mean as i64 + jitter).max(0) as u64;
                *cell = c;
                assigned += c;
            }
        }
        // Distribute the remainder (or trim the excess) uniformly.
        while assigned < rows {
            let p = rng.gen_range(0..DOMAIN as usize);
            let s = rng.gen_range(0..DOMAIN as usize);
            counts[p][s] += 1;
            assigned += 1;
        }
        while assigned > rows {
            let p = rng.gen_range(0..DOMAIN as usize);
            let s = rng.gen_range(0..DOMAIN as usize);
            if counts[p][s] > 0 {
                counts[p][s] -= 1;
                assigned -= 1;
            }
        }
        RleTable { rows, counts }
    }

    /// Runs of the primary column: `(value, count)` in table order.
    pub fn primary_runs(&self) -> Vec<(i64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(p, row)| (p as i64, row.iter().sum()))
            .filter(|&(_, c)| c > 0)
            .collect()
    }

    /// Runs of the secondary column: `(value, count)` in table order —
    /// the secondary restarts from 0 within every primary group.
    pub fn secondary_runs(&self) -> Vec<(i64, u64)> {
        let mut runs = Vec::with_capacity((DOMAIN * DOMAIN) as usize);
        for row in &self.counts {
            for (s, &c) in row.iter().enumerate() {
                if c > 0 {
                    runs.push((s as i64, c));
                }
            }
        }
        runs
    }

    /// Average secondary run length — the quantity that decides the Fig 10
    /// crossover against the block iteration size.
    pub fn avg_secondary_run(&self) -> f64 {
        let runs = self.secondary_runs();
        if runs.is_empty() {
            return 0.0;
        }
        self.rows as f64 / runs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_exact() {
        let t = RleTable::generate(1_000_000, 3);
        assert_eq!(t.primary_runs().iter().map(|r| r.1).sum::<u64>(), 1_000_000);
        assert_eq!(
            t.secondary_runs().iter().map(|r| r.1).sum::<u64>(),
            1_000_000
        );
    }

    #[test]
    fn primary_runs_are_sorted_and_long() {
        let t = RleTable::generate(1_000_000, 3);
        let runs = t.primary_runs();
        assert_eq!(runs.len(), 100);
        assert!(runs.windows(2).all(|w| w[0].0 < w[1].0));
        for &(_, c) in &runs {
            assert!(c > 5_000, "primary runs should be ~10k, got {c}");
        }
    }

    #[test]
    fn secondary_run_length_regimes() {
        // 1M rows: secondary runs ≈ 100 < block size (degraded regime).
        let small = RleTable::generate(1_000_000, 3);
        assert!(
            small.avg_secondary_run() < 512.0,
            "{}",
            small.avg_secondary_run()
        );
        // 32M rows: secondary runs ≈ 3200 > block size (winning regime).
        let large = RleTable::generate(32_000_000, 3);
        assert!(
            large.avg_secondary_run() > 2048.0,
            "{}",
            large.avg_secondary_run()
        );
    }

    #[test]
    fn secondary_restarts_per_primary_group() {
        let t = RleTable::generate(100_000, 5);
        let runs = t.secondary_runs();
        // ~100 descending restarts — count positions where value drops.
        let restarts = runs.windows(2).filter(|w| w[1].0 <= w[0].0).count();
        assert!(
            restarts >= 99,
            "expected ~100 groups, saw {restarts} restarts"
        );
    }

    #[test]
    fn small_tables_work() {
        let t = RleTable::generate(50, 1);
        assert_eq!(t.secondary_runs().iter().map(|r| r.1).sum::<u64>(), 50);
    }
}

//! TPC-H dbgen-style flat-file generator (paper §5.2).
//!
//! Emits the eight TPC-H tables as `|`-separated, `|`-terminated text in
//! dbgen's row format. The generator is not spec-exact, but it preserves
//! every property the paper's compression experiments exploit:
//!
//! * fixed-width unique names (`Customer#%09d`, `Supplier#%09d`,
//!   `Clerk#%09d`) whose heap tokens become affine-encodable (§6.2);
//! * small-domain flag/enum columns (return flags, ship modes, segments);
//! * dates confined to 1992-01-01 … 1998-12-31;
//! * a large low-duplication `l_comment` column that defeats both the
//!   accelerator and heap sorting (§6.2, §6.3);
//! * primary keys that are dense ascending integers.

use crate::words;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use tde_types::datetime::days_from_ymd;
use tde_types::DataType;

/// The eight TPC-H tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpchTable {
    /// 5 rows.
    Region,
    /// 25 rows.
    Nation,
    /// SF × 10 000 rows.
    Supplier,
    /// SF × 150 000 rows.
    Customer,
    /// SF × 200 000 rows.
    Part,
    /// SF × 800 000 rows.
    Partsupp,
    /// SF × 1 500 000 rows.
    Orders,
    /// ≈ SF × 6 000 000 rows.
    Lineitem,
}

impl TpchTable {
    /// All tables, smallest first.
    pub const ALL: [TpchTable; 8] = [
        TpchTable::Region,
        TpchTable::Nation,
        TpchTable::Supplier,
        TpchTable::Customer,
        TpchTable::Part,
        TpchTable::Partsupp,
        TpchTable::Orders,
        TpchTable::Lineitem,
    ];

    /// dbgen file name (without directory).
    pub fn file_name(self) -> &'static str {
        match self {
            TpchTable::Region => "region.tbl",
            TpchTable::Nation => "nation.tbl",
            TpchTable::Supplier => "supplier.tbl",
            TpchTable::Customer => "customer.tbl",
            TpchTable::Part => "part.tbl",
            TpchTable::Partsupp => "partsupp.tbl",
            TpchTable::Orders => "orders.tbl",
            TpchTable::Lineitem => "lineitem.tbl",
        }
    }

    /// Table name.
    pub fn name(self) -> &'static str {
        self.file_name().trim_end_matches(".tbl")
    }

    /// Column names and logical types — the ground-truth schema used to
    /// check TextScan's type inference.
    pub fn schema(self) -> Vec<(&'static str, DataType)> {
        use DataType::*;
        match self {
            TpchTable::Region => vec![
                ("r_regionkey", Integer),
                ("r_name", Str),
                ("r_comment", Str),
            ],
            TpchTable::Nation => vec![
                ("n_nationkey", Integer),
                ("n_name", Str),
                ("n_regionkey", Integer),
                ("n_comment", Str),
            ],
            TpchTable::Supplier => vec![
                ("s_suppkey", Integer),
                ("s_name", Str),
                ("s_address", Str),
                ("s_nationkey", Integer),
                ("s_phone", Str),
                ("s_acctbal", Real),
                ("s_comment", Str),
            ],
            TpchTable::Customer => vec![
                ("c_custkey", Integer),
                ("c_name", Str),
                ("c_address", Str),
                ("c_nationkey", Integer),
                ("c_phone", Str),
                ("c_acctbal", Real),
                ("c_mktsegment", Str),
                ("c_comment", Str),
            ],
            TpchTable::Part => vec![
                ("p_partkey", Integer),
                ("p_name", Str),
                ("p_mfgr", Str),
                ("p_brand", Str),
                ("p_type", Str),
                ("p_size", Integer),
                ("p_container", Str),
                ("p_retailprice", Real),
                ("p_comment", Str),
            ],
            TpchTable::Partsupp => vec![
                ("ps_partkey", Integer),
                ("ps_suppkey", Integer),
                ("ps_availqty", Integer),
                ("ps_supplycost", Real),
                ("ps_comment", Str),
            ],
            TpchTable::Orders => vec![
                ("o_orderkey", Integer),
                ("o_custkey", Integer),
                ("o_orderstatus", Str),
                ("o_totalprice", Real),
                ("o_orderdate", Date),
                ("o_orderpriority", Str),
                ("o_clerk", Str),
                ("o_shippriority", Integer),
                ("o_comment", Str),
            ],
            TpchTable::Lineitem => vec![
                ("l_orderkey", Integer),
                ("l_partkey", Integer),
                ("l_suppkey", Integer),
                ("l_linenumber", Integer),
                ("l_quantity", Integer),
                ("l_extendedprice", Real),
                ("l_discount", Real),
                ("l_tax", Real),
                ("l_returnflag", Str),
                ("l_linestatus", Str),
                ("l_shipdate", Date),
                ("l_commitdate", Date),
                ("l_receiptdate", Date),
                ("l_shipinstruct", Str),
                ("l_shipmode", Str),
                ("l_comment", Str),
            ],
        }
    }

    /// Row count at scale factor `sf`.
    pub fn rows(self, sf: f64) -> u64 {
        let base = match self {
            TpchTable::Region => return 5,
            TpchTable::Nation => return 25,
            TpchTable::Supplier => 10_000.0,
            TpchTable::Customer => 150_000.0,
            TpchTable::Part => 200_000.0,
            TpchTable::Partsupp => 800_000.0,
            TpchTable::Orders => 1_500_000.0,
            TpchTable::Lineitem => 1_500_000.0, // orders; lines multiply below
        };
        (base * sf).max(1.0) as u64
    }
}

const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const INSTRUCTIONS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const CONTAINERS1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
const CONTAINERS2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
const TYPES1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPES2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPES3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// First order date (1992-01-01) as days since the epoch.
pub fn start_date() -> i64 {
    days_from_ymd(1992, 1, 1)
}

/// Last ship date (1998-12-31) as days since the epoch.
pub fn end_date() -> i64 {
    days_from_ymd(1998, 12, 31)
}

fn fmt_date(days: i64) -> String {
    let (y, m, d) = tde_types::datetime::ymd_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

fn money(rng: &mut StdRng, lo: i64, hi: i64) -> String {
    let cents = rng.gen_range(lo * 100..=hi * 100);
    format!("{}.{:02}", cents / 100, (cents % 100).abs())
}

/// Write one table at scale factor `sf` into `dir`, returning the path.
/// Deterministic for a given `(table, sf, seed)`.
pub fn write_table(
    dir: impl AsRef<Path>,
    table: TpchTable,
    sf: f64,
    seed: u64,
) -> io::Result<PathBuf> {
    let path = dir.as_ref().join(table.file_name());
    let mut w = BufWriter::with_capacity(1 << 20, std::fs::File::create(&path)?);
    let mut rng = StdRng::seed_from_u64(seed ^ (table as u64) << 32);
    match table {
        TpchTable::Region => {
            for (i, name) in REGIONS.iter().enumerate() {
                writeln!(w, "{i}|{name}|{}|", words::comment(&mut rng, 30, 110))?;
            }
        }
        TpchTable::Nation => {
            for (i, name) in NATIONS.iter().enumerate() {
                writeln!(
                    w,
                    "{i}|{name}|{}|{}|",
                    i % 5,
                    words::comment(&mut rng, 30, 110)
                )?;
            }
        }
        TpchTable::Supplier => {
            for k in 1..=table.rows(sf) {
                let nation = rng.gen_range(0..25);
                writeln!(
                    w,
                    "{k}|Supplier#{k:09}|{}|{nation}|{}|{}|{}|",
                    words::address(&mut rng),
                    words::phone(&mut rng, nation),
                    money(&mut rng, -999, 9999),
                    words::comment(&mut rng, 25, 100)
                )?;
            }
        }
        TpchTable::Customer => {
            for k in 1..=table.rows(sf) {
                let nation = rng.gen_range(0..25);
                writeln!(
                    w,
                    "{k}|Customer#{k:09}|{}|{nation}|{}|{}|{}|{}|",
                    words::address(&mut rng),
                    words::phone(&mut rng, nation),
                    money(&mut rng, -999, 9999),
                    SEGMENTS[rng.gen_range(0..SEGMENTS.len())],
                    words::comment(&mut rng, 29, 116)
                )?;
            }
        }
        TpchTable::Part => {
            for k in 1..=table.rows(sf) {
                let mfgr = rng.gen_range(1..=5);
                let name: Vec<&str> = (0..5)
                    .map(|_| words::COLORS[rng.gen_range(0..words::COLORS.len())])
                    .collect();
                writeln!(
                    w,
                    "{k}|{}|Manufacturer#{mfgr}|Brand#{mfgr}{}|{} {} {}|{}|{} {}|{}|{}|",
                    name.join(" "),
                    rng.gen_range(1..=5),
                    TYPES1[rng.gen_range(0..TYPES1.len())],
                    TYPES2[rng.gen_range(0..TYPES2.len())],
                    TYPES3[rng.gen_range(0..TYPES3.len())],
                    rng.gen_range(1..=50),
                    CONTAINERS1[rng.gen_range(0..CONTAINERS1.len())],
                    CONTAINERS2[rng.gen_range(0..CONTAINERS2.len())],
                    money(&mut rng, 900, 2000),
                    words::comment(&mut rng, 5, 22)
                )?;
            }
        }
        TpchTable::Partsupp => {
            let parts = TpchTable::Part.rows(sf);
            let suppliers = TpchTable::Supplier.rows(sf).max(1);
            for p in 1..=parts {
                for s in 0..4u64 {
                    let supp = (p + s * (suppliers / 4).max(1)) % suppliers + 1;
                    writeln!(
                        w,
                        "{p}|{supp}|{}|{}|{}|",
                        rng.gen_range(1..10_000),
                        money(&mut rng, 1, 1000),
                        words::comment(&mut rng, 49, 198)
                    )?;
                }
            }
        }
        TpchTable::Orders => {
            let customers = TpchTable::Customer.rows(sf).max(1);
            let span = end_date() - 90 - start_date();
            for k in 1..=table.rows(sf) {
                // dbgen leaves key gaps; model them by spacing keys ×4.
                let okey = k * 4;
                let date = start_date() + rng.gen_range(0..=span);
                writeln!(
                    w,
                    "{okey}|{}|{}|{}|{}|{}|Clerk#{:09}|0|{}|",
                    rng.gen_range(1..=customers),
                    ["O", "F", "P"][rng.gen_range(0..3)],
                    money(&mut rng, 1000, 400_000),
                    fmt_date(date),
                    PRIORITIES[rng.gen_range(0..PRIORITIES.len())],
                    rng.gen_range(1..=(1000.0 * sf.max(0.01)) as u64),
                    words::comment(&mut rng, 19, 78)
                )?;
            }
        }
        TpchTable::Lineitem => {
            let parts = TpchTable::Part.rows(sf).max(1);
            let suppliers = TpchTable::Supplier.rows(sf).max(1);
            let span = end_date() - 90 - start_date();
            for k in 1..=TpchTable::Orders.rows(sf) {
                let okey = k * 4;
                let odate = start_date() + rng.gen_range(0..=span);
                let nlines = rng.gen_range(1..=7);
                for line in 1..=nlines {
                    let ship = odate + rng.gen_range(1..=121);
                    let commit = odate + rng.gen_range(30..=90);
                    let receipt = ship + rng.gen_range(1..=30);
                    let qty = rng.gen_range(1..=50);
                    writeln!(
                        w,
                        "{okey}|{}|{}|{line}|{qty}|{}|0.{:02}|0.0{}|{}|{}|{}|{}|{}|{}|{}|{}|",
                        rng.gen_range(1..=parts),
                        rng.gen_range(1..=suppliers),
                        money(&mut rng, 901 * qty, 2000 * qty),
                        rng.gen_range(0..=10),
                        rng.gen_range(0..=8),
                        if ship > days_from_ymd(1995, 6, 17) {
                            "N"
                        } else if rng.gen_bool(0.5) {
                            "R"
                        } else {
                            "A"
                        },
                        if ship > days_from_ymd(1995, 6, 17) {
                            "O"
                        } else {
                            "F"
                        },
                        fmt_date(ship),
                        fmt_date(commit),
                        fmt_date(receipt),
                        INSTRUCTIONS[rng.gen_range(0..INSTRUCTIONS.len())],
                        MODES[rng.gen_range(0..MODES.len())],
                        words::comment(&mut rng, 10, 43)
                    )?;
                }
            }
        }
    }
    w.flush()?;
    Ok(path)
}

/// Write every table at `sf` into `dir`.
pub fn write_all(dir: impl AsRef<Path>, sf: f64, seed: u64) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir.as_ref())?;
    TpchTable::ALL
        .iter()
        .map(|&t| write_table(dir.as_ref(), t, sf, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join("tde_tpch_tests").join(name);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn region_and_nation_are_fixed() {
        let dir = tmpdir("fixed");
        let p = write_table(&dir, TpchTable::Region, 1.0, 7).unwrap();
        let text = std::fs::read_to_string(p).unwrap();
        assert_eq!(text.lines().count(), 5);
        assert!(text.lines().next().unwrap().starts_with("0|AFRICA|"));
        let p = write_table(&dir, TpchTable::Nation, 1.0, 7).unwrap();
        assert_eq!(std::fs::read_to_string(p).unwrap().lines().count(), 25);
    }

    #[test]
    fn field_counts_match_schema() {
        let dir = tmpdir("fields");
        for t in TpchTable::ALL {
            let p = write_table(&dir, t, 0.001, 3).unwrap();
            let text = std::fs::read_to_string(p).unwrap();
            let ncols = t.schema().len();
            for line in text.lines().take(20) {
                // Rows are |-separated and |-terminated.
                assert_eq!(
                    line.split('|').count(),
                    ncols + 1,
                    "table {} line {line:?}",
                    t.name()
                );
                assert!(line.ends_with('|'));
            }
        }
    }

    #[test]
    fn customer_names_are_fixed_width_unique() {
        let dir = tmpdir("names");
        let p = write_table(&dir, TpchTable::Customer, 0.01, 3).unwrap();
        let text = std::fs::read_to_string(p).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut len = None;
        for line in text.lines() {
            let name = line.split('|').nth(1).unwrap();
            assert!(seen.insert(name.to_owned()), "duplicate {name}");
            let l = len.get_or_insert(name.len());
            assert_eq!(*l, name.len(), "names must be fixed-width");
        }
        assert_eq!(seen.len(), 1500);
    }

    #[test]
    fn lineitem_dates_in_range() {
        let dir = tmpdir("dates");
        let p = write_table(&dir, TpchTable::Lineitem, 0.0005, 3).unwrap();
        let text = std::fs::read_to_string(p).unwrap();
        assert!(text.lines().count() >= 750); // ≈ orders × 4 lines
        for line in text.lines() {
            let ship = line.split('|').nth(10).unwrap();
            assert!(("1992-01-01"..="1999-12-31").contains(&ship), "{ship}");
            let comment = line.split('|').nth(15).unwrap();
            assert!(comment.len() <= 43);
        }
    }

    #[test]
    fn deterministic() {
        let dir = tmpdir("det");
        let a = std::fs::read(write_table(&dir, TpchTable::Orders, 0.001, 9).unwrap()).unwrap();
        let b = std::fs::read(write_table(&dir, TpchTable::Orders, 0.001, 9).unwrap()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scale_factor_scales_rows() {
        assert_eq!(TpchTable::Customer.rows(1.0), 150_000);
        assert_eq!(TpchTable::Customer.rows(0.01), 1_500);
        assert_eq!(TpchTable::Region.rows(30.0), 5);
    }
}

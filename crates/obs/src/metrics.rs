//! Always-on engine metrics: a process-wide registry of named
//! instruments.
//!
//! Where [`crate::Trace`] records *one query at a time* (installed by
//! `explain_analyze`, uninstalled when it returns), the metrics registry
//! is **always on**: counters, gauges and histograms accumulate over the
//! whole process lifetime, across every query, load and cache event.
//! `tde-stats` exports the registry in Prometheus text exposition format
//! and JSON; the bench harnesses snapshot it into `BenchReport`s.
//!
//! **Overhead contract** (the same one [`crate::emit`] documents): when
//! the registry is disabled (`TDE_METRICS=0`), every instrumentation
//! helper in this module is a single relaxed atomic load followed by an
//! early return. When enabled, hot-path call sites sit on per-block,
//! per-segment or per-operator paths — never per row — and bump relaxed
//! atomics through pre-resolved handles; only *registration* (first use
//! of a name/label pair) takes the registry lock.
//!
//! Naming follows Prometheus conventions: every instrument is prefixed
//! `tde_`, monotonic counters end in `_total`, byte counters in
//! `_bytes_total`, and duration histograms in `_ns` (nanosecond units).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex, OnceLock};

// ---------------------------------------------------------------------
// Instruments.
// ---------------------------------------------------------------------

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter (detached unless registered).
    pub fn new() -> Arc<Counter> {
        Arc::new(Counter::default())
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (pool residency, open
/// files, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge (detached unless registered).
    pub fn new() -> Arc<Gauge> {
        Arc::new(Gauge::default())
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Smallest finite bucket bound: `2^MIN_EXP`.
const MIN_EXP: u32 = 8;
/// Values at or above `2^MAX_EXP` fall into the implicit `+Inf` bucket.
const MAX_EXP: u32 = 38;
/// Linear sub-buckets per power-of-two group.
const SUB_BUCKETS: usize = 4;
/// Finite bucket count: one underflow bucket plus 4 per group.
const BUCKETS: usize = 1 + (MAX_EXP - MIN_EXP) as usize * SUB_BUCKETS;

/// A log-linear-bucket histogram for latency-shaped values.
///
/// Power-of-two groups between `2^8` and `2^38` (≈256 ns to ≈4.6 min
/// when observing nanoseconds), each split into 4 linear sub-buckets;
/// one underflow bucket below, an implicit `+Inf` bucket above. Bucket
/// placement is two shifts and a mask — no floating point, no search.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// A fresh histogram (detached unless registered).
    pub fn new() -> Arc<Histogram> {
        Arc::new(Histogram::default())
    }

    /// The finite bucket index for `v`, or `None` for the `+Inf` bucket.
    fn bucket_index(v: u64) -> Option<usize> {
        if v < (1u64 << MIN_EXP) {
            return Some(0);
        }
        if v >= (1u64 << MAX_EXP) {
            return None;
        }
        let group = 63 - v.leading_zeros(); // floor(log2 v), in MIN_EXP..MAX_EXP
        let sub = ((v >> (group - 2)) & 3) as usize;
        Some(1 + (group - MIN_EXP) as usize * SUB_BUCKETS + sub)
    }

    /// The inclusive upper bound of finite bucket `idx` (the Prometheus
    /// `le` value: every observation in the bucket is `<=` this).
    pub fn bucket_bound(idx: usize) -> u64 {
        if idx == 0 {
            return (1u64 << MIN_EXP) - 1;
        }
        let group = MIN_EXP + ((idx - 1) / SUB_BUCKETS) as u32;
        let sub = ((idx - 1) % SUB_BUCKETS) as u64;
        (1u64 << group) + (sub + 1) * (1u64 << (group - 2)) - 1
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        if let Some(idx) = Self::bucket_index(v) {
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cumulative += n;
                buckets.push((Self::bucket_bound(i), cumulative));
            }
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// A point-in-time view of one histogram: `(upper_bound, cumulative
/// count)` for every non-empty finite bucket, in increasing bound order.
/// `count - buckets.last().1` observations fell into `+Inf`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty finite buckets as `(upper_bound, cumulative_count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (0..=1) from the bucket bounds: the
    /// upper bound of the first bucket whose cumulative count covers the
    /// rank. Observations in `+Inf` report the largest finite bound.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        for &(bound, cum) in &self.buckets {
            if cum >= rank {
                return bound;
            }
        }
        self.buckets.last().map_or(0, |&(b, _)| b)
    }
}

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

/// A registered instrument handle.
#[derive(Debug, Clone)]
pub enum Handle {
    /// A counter.
    Counter(Arc<Counter>),
    /// A gauge.
    Gauge(Arc<Gauge>),
    /// A histogram.
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Instrument {
    help: &'static str,
    handle: Handle,
}

/// Identifies one instrument: name plus sorted label pairs.
pub type InstrumentKey = (String, Vec<(String, String)>);

/// A process-wide (or, in tests, local) registry of named instruments.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: AtomicBool,
    inner: Mutex<BTreeMap<InstrumentKey, Instrument>>,
}

fn lock_inner(
    m: &Mutex<BTreeMap<InstrumentKey, Instrument>>,
) -> std::sync::MutexGuard<'_, BTreeMap<InstrumentKey, Instrument>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn key_of(name: &str, labels: &[(&str, &str)]) -> InstrumentKey {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect();
    l.sort();
    (name.to_owned(), l)
}

impl MetricsRegistry {
    /// A fresh, enabled registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            enabled: AtomicBool::new(true),
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether instrumentation is on. One relaxed atomic load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn instrumentation on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turn instrumentation off. Registered instruments keep their
    /// values; guarded helpers become single-load no-ops.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Register (or fetch) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Register (or fetch) a labeled counter.
    pub fn counter_with(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        let mut inner = lock_inner(&self.inner);
        match &inner
            .entry(key_of(name, labels))
            .or_insert_with(|| Instrument {
                help,
                handle: Handle::Counter(Counter::new()),
            })
            .handle
        {
            Handle::Counter(c) => c.clone(),
            // Kind clash: hand back a detached instrument rather than
            // panicking inside engine code.
            _ => Counter::new(),
        }
    }

    /// Register (or fetch) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Register (or fetch) a labeled gauge.
    pub fn gauge_with(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        let mut inner = lock_inner(&self.inner);
        match &inner
            .entry(key_of(name, labels))
            .or_insert_with(|| Instrument {
                help,
                handle: Handle::Gauge(Gauge::new()),
            })
            .handle
        {
            Handle::Gauge(g) => g.clone(),
            _ => Gauge::new(),
        }
    }

    /// Register (or fetch) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &'static str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Register (or fetch) a labeled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let mut inner = lock_inner(&self.inner);
        match &inner
            .entry(key_of(name, labels))
            .or_insert_with(|| Instrument {
                help,
                handle: Handle::Histogram(Histogram::new()),
            })
            .handle
        {
            Handle::Histogram(h) => h.clone(),
            _ => Histogram::new(),
        }
    }

    /// Bump a labeled counter if enabled; a single relaxed load when
    /// disabled. For per-operator/per-segment paths where caching the
    /// handle is impractical.
    #[inline]
    pub fn bump(&self, name: &str, help: &'static str, labels: &[(&str, &str)], n: u64) {
        if !self.is_enabled() {
            return;
        }
        self.counter_with(name, help, labels).add(n);
    }

    /// A point-in-time snapshot of every registered instrument, in
    /// sorted (name, labels) order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = lock_inner(&self.inner);
        let samples = inner
            .iter()
            .map(|((name, labels), inst)| Sample {
                name: name.clone(),
                labels: labels.clone(),
                help: inst.help,
                value: match &inst.handle {
                    Handle::Counter(c) => SampleValue::Counter(c.get()),
                    Handle::Gauge(g) => SampleValue::Gauge(g.get()),
                    Handle::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        MetricsSnapshot { samples }
    }
}

/// The value of one sampled instrument.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram distribution.
    Histogram(HistogramSnapshot),
}

/// One sampled instrument.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Instrument name (`tde_…`).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Help text registered with the instrument.
    pub help: &'static str,
    /// Sampled value.
    pub value: SampleValue,
}

impl Sample {
    /// The sample's fully-qualified key, `name{k="v",…}` (bare name when
    /// unlabeled) — used for counter deltas and bench snapshots.
    pub fn key(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", crate::json_escape(v)))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// A point-in-time view of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Every registered instrument, sorted by (name, labels).
    pub samples: Vec<Sample>,
}

impl MetricsSnapshot {
    /// Counter increments between `earlier` and `self`, keyed by
    /// [`Sample::key`]. Counters absent earlier are reported whole;
    /// zero deltas are omitted. Saturating, so a counter reset (process
    /// restart mid-comparison) reads as zero, not a panic.
    pub fn counter_deltas(&self, earlier: &MetricsSnapshot) -> Vec<(String, u64)> {
        type SampleKey<'a> = (&'a String, &'a Vec<(String, String)>);
        let before: BTreeMap<SampleKey, u64> = earlier
            .samples
            .iter()
            .filter_map(|s| match s.value {
                SampleValue::Counter(v) => Some(((&s.name, &s.labels), v)),
                _ => None,
            })
            .collect();
        self.samples
            .iter()
            .filter_map(|s| match s.value {
                SampleValue::Counter(v) => {
                    let prev = before.get(&(&s.name, &s.labels)).copied().unwrap_or(0);
                    let delta = v.saturating_sub(prev);
                    (delta > 0).then(|| (s.key(), delta))
                }
                _ => None,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// The process-wide registry and the engine's instrument catalog.
// ---------------------------------------------------------------------

static GLOBAL: LazyLock<MetricsRegistry> = LazyLock::new(|| {
    let r = MetricsRegistry::new();
    if matches!(
        std::env::var("TDE_METRICS").as_deref(),
        Ok("0") | Ok("off") | Ok("false")
    ) {
        r.disable();
    }
    r
});

/// The process-wide registry.
pub fn global() -> &'static MetricsRegistry {
    &GLOBAL
}

/// Whether the process-wide registry is enabled. One relaxed atomic
/// load (plus the one-time lazy init) — safe on any engine path.
#[inline]
pub fn enabled() -> bool {
    GLOBAL.is_enabled()
}

fn cached_counter<'a>(
    cell: &'a OnceLock<Arc<Counter>>,
    name: &'static str,
    help: &'static str,
) -> &'a Arc<Counter> {
    cell.get_or_init(|| GLOBAL.counter(name, help))
}

fn cached_histogram<'a>(
    cell: &'a OnceLock<Arc<Histogram>>,
    name: &'static str,
    help: &'static str,
) -> &'a Arc<Histogram> {
    cell.get_or_init(|| GLOBAL.histogram(name, help))
}

/// `tde_queries_total` — queries executed through `tde_core::Query`.
pub fn queries_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    cached_counter(&C, "tde_queries_total", "Queries executed")
}

/// `tde_queries_failed_total` — queries whose execution returned an
/// error (they bump this instead of vanishing from the counters).
pub fn queries_failed_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    cached_counter(&C, "tde_queries_failed_total", "Queries that failed")
}

/// `tde_slow_queries_total` — queries past the `TDE_SLOW_QUERY_NS`
/// threshold.
pub fn slow_queries_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    cached_counter(
        &C,
        "tde_slow_queries_total",
        "Queries slower than TDE_SLOW_QUERY_NS",
    )
}

/// `tde_query_rows_total` — rows produced by query roots.
pub fn query_rows_total() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    cached_counter(&C, "tde_query_rows_total", "Rows produced by queries")
}

/// `tde_query_latency_ns` — end-to-end query latency (plan + execute).
pub fn query_latency_ns() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    cached_histogram(
        &H,
        "tde_query_latency_ns",
        "End-to-end query latency in nanoseconds (plan + execute)",
    )
}

/// `tde_segment_load_ns` — v2 segment demand-load latency.
pub fn segment_load_ns() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    cached_histogram(
        &H,
        "tde_segment_load_ns",
        "Paged (v2) segment demand-load latency in nanoseconds",
    )
}

/// Per-operator-kind counters, pre-resolved at lowering time so the
/// per-block path is two relaxed `fetch_add`s.
#[derive(Debug, Clone)]
pub struct OperatorCounters {
    /// `tde_operator_blocks_total{op=…}`.
    pub blocks: Arc<Counter>,
    /// `tde_operator_rows_total{op=…}`.
    pub rows: Arc<Counter>,
}

/// Resolve the per-operator-kind counters, or `None` when the registry
/// is disabled (callers then skip wrapping entirely).
pub fn operator_counters(op: &str) -> Option<OperatorCounters> {
    if !enabled() {
        return None;
    }
    Some(OperatorCounters {
        blocks: GLOBAL.counter_with(
            "tde_operator_blocks_total",
            "Blocks produced, by operator kind",
            &[("op", op)],
        ),
        rows: GLOBAL.counter_with(
            "tde_operator_rows_total",
            "Rows produced, by operator kind",
            &[("op", op)],
        ),
    })
}

/// Tally one tactical decision: `tde_tactical_decisions_total{point,choice}`.
/// `choice` must be a *stable, low-cardinality* label (the strategy
/// name, not the reason string).
#[inline]
pub fn decision(point: &'static str, choice: &str) {
    GLOBAL.bump(
        "tde_tactical_decisions_total",
        "Tactical (run-time) decisions, by decision point and choice",
        &[("point", point), ("choice", choice)],
        1,
    );
}

/// Tally one kernel-pushdown resolution:
/// `tde_kernel_pushdown_total{encoding,kernel}`. `kernel` is the chosen
/// kernel kind or `fallback`/`forced-fallback`.
#[inline]
pub fn kernel_pushdown(encoding: &str, kernel: &str) {
    GLOBAL.bump(
        "tde_kernel_pushdown_total",
        "Predicate pushdown resolutions, by column encoding and chosen kernel",
        &[("encoding", encoding), ("kernel", kernel)],
        1,
    );
}

/// Record the end-of-scan kernel row accounting.
#[inline]
pub fn kernel_scan_rows(rows_in: u64, rows_out: u64, rows_skipped: u64) {
    if !enabled() {
        return;
    }
    static IN: OnceLock<Arc<Counter>> = OnceLock::new();
    static OUT: OnceLock<Arc<Counter>> = OnceLock::new();
    static SKIP: OnceLock<Arc<Counter>> = OnceLock::new();
    cached_counter(
        &IN,
        "tde_kernel_rows_in_total",
        "Rows considered by pushed-predicate scans",
    )
    .add(rows_in);
    cached_counter(
        &OUT,
        "tde_kernel_rows_out_total",
        "Rows matched by pushed-predicate scans",
    )
    .add(rows_out);
    cached_counter(
        &SKIP,
        "tde_kernel_rows_skipped_total",
        "Rows eliminated in the compressed domain without decode",
    )
    .add(rows_skipped);
}

/// Tally one dynamic-encoding transition: `tde_reencodings_total{phase}`
/// (`phase` is `mid-load` or `final-convert`).
#[inline]
pub fn reencode(phase: &'static str) {
    GLOBAL.bump(
        "tde_reencodings_total",
        "Dynamic-encoding transitions, by phase",
        &[("phase", phase)],
        1,
    );
}

/// Tally one §3.4.3 encoding→compression conversion:
/// `tde_conversions_total{route}`.
#[inline]
pub fn conversion(route: &'static str) {
    GLOBAL.bump(
        "tde_conversions_total",
        "Encoding/compression conversions, by route",
        &[("route", route)],
        1,
    );
}

/// Record one FlowTable column build.
#[inline]
pub fn column_built(rows: u64) {
    if !enabled() {
        return;
    }
    static COLS: OnceLock<Arc<Counter>> = OnceLock::new();
    static ROWS: OnceLock<Arc<Counter>> = OnceLock::new();
    cached_counter(
        &COLS,
        "tde_columns_built_total",
        "Columns built by FlowTable",
    )
    .inc();
    cached_counter(
        &ROWS,
        "tde_rows_encoded_total",
        "Rows encoded by FlowTable column builds",
    )
    .add(rows);
}

/// Record one v2 segment demand-load: per-segment-kind count and bytes,
/// plus the load-latency histogram.
#[inline]
pub fn segment_load(segment: &'static str, bytes: u64, nanos: u64) {
    if !enabled() {
        return;
    }
    GLOBAL.bump(
        "tde_segment_loads_total",
        "Paged (v2) segment demand-loads, by segment kind",
        &[("segment", segment)],
        1,
    );
    GLOBAL.bump(
        "tde_segment_load_bytes_total",
        "Bytes demand-loaded from paged (v2) files, by segment kind",
        &[("segment", segment)],
        bytes,
    );
    segment_load_ns().observe(nanos);
}

/// Record one segment checksum-verification failure. Fires just before
/// the pager surfaces a `ChecksumMismatch` instead of handing corrupt
/// bytes to the decoders.
#[inline]
pub fn checksum_failure(segment: &'static str) {
    GLOBAL.bump(
        "tde_segment_checksum_failures_total",
        "Segment checksum verification failures, by segment kind",
        &[("segment", segment)],
        1,
    );
}

/// Record one transient-I/O retry absorbed by the storage read path.
#[inline]
pub fn io_retry(op: &'static str) {
    GLOBAL.bump(
        "tde_io_retries_total",
        "Transient I/O errors retried by the storage read path, by operation",
        &[("op", op)],
        1,
    );
}

/// Record one injected fault from the `FaultIo` testing backend.
#[inline]
pub fn io_fault_injected(kind: &'static str) {
    GLOBAL.bump(
        "tde_io_faults_injected_total",
        "Faults injected by the FaultIo testing backend, by kind",
        &[("kind", kind)],
        1,
    );
}

/// Pre-resolved delta-store instruments (tde-delta). Gauges track the
/// *live* write-optimized state across every open store; counters
/// accumulate mutation traffic over the process lifetime.
#[derive(Debug, Clone)]
pub struct DeltaMetrics {
    /// `tde_delta_rows` (gauge) — live uncompacted delta rows.
    pub rows: Arc<Gauge>,
    /// `tde_delta_bytes` (gauge) — approximate bytes held by delta buffers.
    pub bytes: Arc<Gauge>,
    /// `tde_delta_tombstones` (gauge) — live tombstoned base rows.
    pub tombstones: Arc<Gauge>,
    /// `tde_delta_appends_total` — rows appended to delta stores.
    pub appends: Arc<Counter>,
    /// `tde_delta_deletes_total` — rows deleted through delta stores.
    pub deletes: Arc<Counter>,
}

/// The process-wide delta-store instruments.
pub fn delta_metrics() -> &'static DeltaMetrics {
    static D: OnceLock<DeltaMetrics> = OnceLock::new();
    D.get_or_init(|| DeltaMetrics {
        rows: GLOBAL.gauge("tde_delta_rows", "Live uncompacted delta rows"),
        bytes: GLOBAL.gauge(
            "tde_delta_bytes",
            "Approximate bytes held by delta-store buffers",
        ),
        tombstones: GLOBAL.gauge("tde_delta_tombstones", "Live tombstoned base rows"),
        appends: GLOBAL.counter("tde_delta_appends_total", "Rows appended to delta stores"),
        deletes: GLOBAL.counter(
            "tde_delta_deletes_total",
            "Rows deleted through delta stores",
        ),
    })
}

/// Record one delta compaction: count plus duration histogram.
#[inline]
pub fn compaction(nanos: u64) {
    if !enabled() {
        return;
    }
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    cached_counter(&C, "tde_compactions_total", "Delta compactions run").inc();
    cached_histogram(
        &H,
        "tde_compaction_duration_ns",
        "Delta compaction duration in nanoseconds",
    )
    .observe(nanos);
}

/// Tally rows a compaction re-encoded, by the encoding they landed in:
/// `tde_compaction_rows_reencoded_total{encoding}`.
#[inline]
pub fn compaction_rows_reencoded(encoding: &str, rows: u64) {
    GLOBAL.bump(
        "tde_compaction_rows_reencoded_total",
        "Rows re-encoded by delta compaction, by final encoding",
        &[("encoding", encoding)],
        rows,
    );
}

/// Pre-resolved buffer-pool instruments, folded into by
/// [`crate::CacheCounters`] so per-pool counters and the process-wide
/// registry stay in lockstep.
#[derive(Debug, Clone)]
pub struct PoolMetrics {
    /// `tde_pool_hits_total`.
    pub hits: Arc<Counter>,
    /// `tde_pool_misses_total`.
    pub misses: Arc<Counter>,
    /// `tde_pool_evictions_total`.
    pub evictions: Arc<Counter>,
    /// `tde_pool_read_bytes_total`.
    pub read_bytes: Arc<Counter>,
    /// `tde_pool_evicted_bytes_total`.
    pub evicted_bytes: Arc<Counter>,
    /// `tde_pool_resident_bytes` (gauge, summed over pools).
    pub resident_bytes: Arc<Gauge>,
}

/// The process-wide buffer-pool instruments.
pub fn pool_metrics() -> &'static PoolMetrics {
    static P: OnceLock<PoolMetrics> = OnceLock::new();
    P.get_or_init(|| PoolMetrics {
        hits: GLOBAL.counter(
            "tde_pool_hits_total",
            "Buffer-pool lookups served from cache",
        ),
        misses: GLOBAL.counter(
            "tde_pool_misses_total",
            "Buffer-pool lookups that went to disk",
        ),
        evictions: GLOBAL.counter("tde_pool_evictions_total", "Buffer-pool evictions"),
        read_bytes: GLOBAL.counter(
            "tde_pool_read_bytes_total",
            "Bytes demand-loaded through buffer pools",
        ),
        evicted_bytes: GLOBAL.counter(
            "tde_pool_evicted_bytes_total",
            "Bytes released by buffer-pool eviction",
        ),
        resident_bytes: GLOBAL.gauge(
            "tde_pool_resident_bytes",
            "Bytes currently resident across buffer pools",
        ),
    })
}

/// Pre-resolved morsel-scheduler instruments (tde-exec::morsel). One
/// resolution per process; workers touch only relaxed atomics.
#[derive(Debug, Clone)]
pub struct MorselMetrics {
    /// `tde_morsels_dispatched_total` — morsels executed by workers.
    pub dispatched: Arc<Counter>,
    /// `tde_morsels_stolen_total` — morsels taken from another worker's
    /// deque (dispatch-overlap: every stolen morsel is also dispatched).
    pub stolen: Arc<Counter>,
    /// `tde_morsel_worker_busy_ns` — per-morsel worker busy time.
    pub worker_busy_ns: Arc<Histogram>,
    /// `tde_parallel_queries_total` — queries that ran a morsel pipeline.
    pub parallel_queries: Arc<Counter>,
}

/// The process-wide morsel-scheduler instruments.
pub fn morsel_metrics() -> &'static MorselMetrics {
    static M: OnceLock<MorselMetrics> = OnceLock::new();
    M.get_or_init(|| MorselMetrics {
        dispatched: GLOBAL.counter(
            "tde_morsels_dispatched_total",
            "Morsels executed by parallel pipeline workers",
        ),
        stolen: GLOBAL.counter(
            "tde_morsels_stolen_total",
            "Morsels stolen from another worker's deque",
        ),
        worker_busy_ns: GLOBAL.histogram(
            "tde_morsel_worker_busy_ns",
            "Per-morsel worker busy time in nanoseconds",
        ),
        parallel_queries: GLOBAL.counter(
            "tde_parallel_queries_total",
            "Queries executed through a morsel-parallel pipeline",
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_basics() {
        let r = MetricsRegistry::new();
        let c = r.counter("t_c_total", "test");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name → same instrument.
        assert_eq!(r.counter("t_c_total", "test").get(), 5);
        let g = r.gauge("t_g", "test");
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        // Different labels → different instruments.
        let a = r.counter_with("t_l_total", "test", &[("k", "a")]);
        let b = r.counter_with("t_l_total", "test", &[("k", "b")]);
        a.inc();
        assert_eq!(b.get(), 0);
        // Label order is normalized.
        let ab = r.counter_with("t_m_total", "t", &[("x", "1"), ("y", "2")]);
        let ba = r.counter_with("t_m_total", "t", &[("y", "2"), ("x", "1")]);
        ab.inc();
        assert_eq!(ba.get(), 1);
    }

    #[test]
    fn kind_clash_returns_detached_instrument() {
        let r = MetricsRegistry::new();
        r.counter("t_kind", "test").inc();
        // Asking for the same name as a gauge must not panic or corrupt.
        let g = r.gauge("t_kind", "test");
        g.set(99);
        match &r.snapshot().samples[0].value {
            SampleValue::Counter(v) => assert_eq!(*v, 1),
            other => panic!("expected counter, got {other:?}"),
        }
    }

    #[test]
    fn histogram_bucket_bounds_are_monotonic_and_contiguous() {
        let mut prev = 0;
        for i in 0..BUCKETS {
            let b = Histogram::bucket_bound(i);
            assert!(b > prev, "bound {i} not increasing: {b} <= {prev}");
            prev = b;
        }
        // Last finite bound closes the last group exactly (inclusive).
        assert_eq!(Histogram::bucket_bound(BUCKETS - 1), (1u64 << MAX_EXP) - 1);
        // Every value lands in the bucket whose bound covers it.
        for v in [
            0,
            1,
            255,
            256,
            257,
            1023,
            1024,
            5000,
            1 << 20,
            (1 << 38) - 1,
        ] {
            if let Some(idx) = Histogram::bucket_index(v) {
                assert!(v <= Histogram::bucket_bound(idx), "v={v} idx={idx}");
                if idx > 0 {
                    assert!(v > Histogram::bucket_bound(idx - 1), "v={v} idx={idx}");
                }
            }
        }
        assert_eq!(Histogram::bucket_index(1u64 << MAX_EXP), None);
    }

    #[test]
    fn histogram_observe_snapshot_quantile() {
        let h = Histogram::new();
        for v in [100u64, 300, 1000, 1000, 1_000_000] {
            h.observe(v);
        }
        h.observe(1u64 << 40); // +Inf
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 100 + 300 + 1000 + 1000 + 1_000_000 + (1u64 << 40));
        // Cumulative counts are monotone and end at count-minus-overflow.
        let mut prev = 0;
        for &(_, cum) in &s.buckets {
            assert!(cum >= prev);
            prev = cum;
        }
        assert_eq!(prev, 5);
        // Median sits around the 1000-observations.
        let p50 = s.quantile(0.5);
        assert!((256..=2048).contains(&p50), "p50={p50}");
        assert!(s.mean() > 0.0);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn snapshot_and_counter_deltas() {
        let r = MetricsRegistry::new();
        let c = r.counter("t_d_total", "test");
        c.add(5);
        let before = r.snapshot();
        c.add(7);
        r.counter_with("t_new_total", "test", &[("op", "Scan")])
            .add(2);
        let after = r.snapshot();
        let deltas = after.counter_deltas(&before);
        assert_eq!(deltas.len(), 2);
        assert!(deltas.contains(&("t_d_total".to_string(), 7)));
        assert!(deltas.contains(&("t_new_total{op=\"Scan\"}".to_string(), 2)));
        // Saturating: comparing in the wrong order yields empty, not a panic.
        assert!(before.counter_deltas(&after).is_empty());
    }

    #[test]
    fn disabled_registry_bump_is_a_noop() {
        let r = MetricsRegistry::new();
        r.disable();
        r.bump("t_off_total", "test", &[], 5);
        assert!(r.snapshot().samples.is_empty(), "disabled bump registered");
        r.enable();
        r.bump("t_off_total", "test", &[], 5);
        assert_eq!(r.snapshot().samples.len(), 1);
    }

    /// The documented overhead contract: a disabled-registry instrument
    /// call is a single relaxed load and early return. Budget: 10 M
    /// guarded calls in under one second (100 ns/call — a ~50× margin
    /// over the actual cost of a relaxed load on any modern core).
    #[test]
    fn disabled_instrument_calls_stay_within_overhead_budget() {
        let r = MetricsRegistry::new();
        r.disable();
        let t0 = std::time::Instant::now();
        for i in 0..10_000_000u64 {
            r.bump(
                "t_budget_total",
                "test",
                &[("k", if i & 1 == 0 { "a" } else { "b" })],
                1,
            );
        }
        let elapsed = t0.elapsed();
        assert!(r.snapshot().samples.is_empty());
        assert!(
            elapsed < std::time::Duration::from_secs(1),
            "10M disabled instrument calls took {elapsed:?} (budget 1s)"
        );
    }
}

//! Per-query span records: structured JSON lines through a pluggable
//! sink.
//!
//! A [`QuerySpan`] is the always-on counterpart of a full
//! `explain_analyze` trace: one compact record per query — query id,
//! plan digest, phase timings, row count, and the registry counter
//! deltas the execution caused — cheap enough to emit for *every*
//! query when a sink is installed, and a no-op (one relaxed atomic
//! load) when none is.
//!
//! Sinks are process-wide and pluggable: [`JsonLinesSink`] appends one
//! JSON object per line to any writer (a span log file), [`MemorySink`]
//! collects spans for tests and embedded consumers.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json_escape;

/// One executed query, summarized.
#[derive(Debug, Clone)]
pub struct QuerySpan {
    /// Process-unique query id (monotonic).
    pub query_id: u64,
    /// FNV-1a 64 digest of the optimized plan's rendering, as 16 hex
    /// digits — stable across runs for the same plan shape, so span
    /// logs group by query template.
    pub plan_digest: String,
    /// Rows the query produced.
    pub rows_out: u64,
    /// End-to-end wall time in nanoseconds.
    pub elapsed_ns: u64,
    /// Phase timings, in order: `("plan", ns)`, `("execute", ns)`, ….
    pub phases: Vec<(&'static str, u64)>,
    /// Registry counter increments attributable to this query (keyed by
    /// `name{labels}`). Deltas are process-wide, so concurrent queries
    /// fold into each other's spans — exact per-query attribution needs
    /// `explain_analyze`.
    pub counters: Vec<(String, u64)>,
    /// The error message when the query failed (`rows_out` is then 0);
    /// `None` on success. Failed queries emit spans too, so the slow
    /// and broken tails land in the same log.
    pub error: Option<String>,
}

impl QuerySpan {
    /// The span as one JSON object (one line; no trailing newline).
    pub fn to_json(&self) -> String {
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|(name, ns)| format!("\"{}\":{ns}", json_escape(name)))
            .collect();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(key, delta)| format!("\"{}\":{delta}", json_escape(key)))
            .collect();
        let error = match &self.error {
            Some(e) => format!(",\"error\":\"{}\"", json_escape(e)),
            None => String::new(),
        };
        format!(
            "{{\"query_id\":{},\"plan_digest\":\"{}\",\"rows_out\":{},\
             \"elapsed_ns\":{},\"phases\":{{{}}},\"counters\":{{{}}}{}}}",
            self.query_id,
            json_escape(&self.plan_digest),
            self.rows_out,
            self.elapsed_ns,
            phases.join(","),
            counters.join(","),
            error
        )
    }
}

/// One slow query, summarized for the slow-query log: emitted (as a
/// JSONL record through [`SpanSink::record_slow`]) when a query's
/// `elapsed_ns` meets the `TDE_SLOW_QUERY_NS` threshold. The full
/// timeline is retained in the slow-trace ring
/// ([`crate::timeline::slow_traces`]); this record is the compact
/// pointer into it.
#[derive(Debug, Clone)]
pub struct SlowQueryRecord {
    /// Span-layer query id (keys into the trace rings).
    pub query_id: u64,
    /// Plan digest, as in [`QuerySpan`].
    pub plan_digest: String,
    /// Rows produced.
    pub rows_out: u64,
    /// End-to-end wall time in nanoseconds.
    pub elapsed_ns: u64,
    /// The threshold that fired.
    pub threshold_ns: u64,
    /// Phase timings, as in [`QuerySpan`].
    pub phases: Vec<(&'static str, u64)>,
    /// Top operators by self time (`(op, self_ns)`, largest first),
    /// from the retained timeline; empty when tracing is disabled.
    pub top_ops: Vec<(String, u64)>,
}

impl SlowQueryRecord {
    /// The record as one JSON object (one line; no trailing newline).
    /// The `"kind":"slow_query"` discriminant lets slow records share a
    /// JSONL stream with plain spans.
    pub fn to_json(&self) -> String {
        let phases: Vec<String> = self
            .phases
            .iter()
            .map(|(name, ns)| format!("\"{}\":{ns}", json_escape(name)))
            .collect();
        let top_ops: Vec<String> = self
            .top_ops
            .iter()
            .map(|(op, ns)| format!("{{\"op\":\"{}\",\"self_ns\":{ns}}}", json_escape(op)))
            .collect();
        format!(
            "{{\"kind\":\"slow_query\",\"query_id\":{},\"plan_digest\":\"{}\",\
             \"rows_out\":{},\"elapsed_ns\":{},\"threshold_ns\":{},\
             \"phases\":{{{}}},\"top_ops\":[{}]}}",
            self.query_id,
            json_escape(&self.plan_digest),
            self.rows_out,
            self.elapsed_ns,
            self.threshold_ns,
            phases.join(","),
            top_ops.join(",")
        )
    }
}

/// Receives every emitted span. Implementations must tolerate
/// concurrent calls.
pub trait SpanSink: Send + Sync {
    /// Record one span.
    fn record(&self, span: &QuerySpan);

    /// Record one slow-query log entry. Default is a no-op so existing
    /// sinks keep compiling; the bundled sinks append/collect it.
    fn record_slow(&self, record: &SlowQueryRecord) {
        let _ = record;
    }
}

/// Collects spans in memory (tests, embedded consumers).
#[derive(Debug, Default)]
pub struct MemorySink {
    spans: Mutex<Vec<QuerySpan>>,
    slow: Mutex<Vec<SlowQueryRecord>>,
}

impl MemorySink {
    /// A fresh, empty sink.
    pub fn new() -> Arc<MemorySink> {
        Arc::new(MemorySink::default())
    }

    /// A copy of every span recorded so far.
    pub fn spans(&self) -> Vec<QuerySpan> {
        self.spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// A copy of every slow-query record recorded so far.
    pub fn slow_records(&self) -> Vec<SlowQueryRecord> {
        self.slow
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

impl SpanSink for MemorySink {
    fn record(&self, span: &QuerySpan) {
        self.spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(span.clone());
    }

    fn record_slow(&self, record: &SlowQueryRecord) {
        self.slow
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(record.clone());
    }
}

/// Appends one JSON line per span to a writer (a span log file).
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    /// Wrap any writer.
    pub fn new(out: Box<dyn Write + Send>) -> Arc<JsonLinesSink> {
        Arc::new(JsonLinesSink {
            out: Mutex::new(out),
        })
    }

    /// Append to (creating if absent) a span log file.
    pub fn append_to(path: impl AsRef<std::path::Path>) -> std::io::Result<Arc<JsonLinesSink>> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonLinesSink::new(Box::new(std::io::BufWriter::new(f))))
    }
}

impl JsonLinesSink {
    fn write_line(&self, line: &str) {
        let mut out = self
            .out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Span logs are diagnostics: swallow write errors rather than
        // failing the query that triggered them.
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

impl SpanSink for JsonLinesSink {
    fn record(&self, span: &QuerySpan) {
        self.write_line(&span.to_json());
    }

    fn record_slow(&self, record: &SlowQueryRecord) {
        self.write_line(&record.to_json());
    }
}

// ---------------------------------------------------------------------
// The process-wide sink.
// ---------------------------------------------------------------------

static SINK_INSTALLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Arc<dyn SpanSink>>> = Mutex::new(None);
static NEXT_QUERY_ID: AtomicU64 = AtomicU64::new(1);

/// Install (or, with `None`, remove) the process-wide span sink.
/// Returns the previously installed sink so callers can restore it.
pub fn set_span_sink(sink: Option<Arc<dyn SpanSink>>) -> Option<Arc<dyn SpanSink>> {
    let mut slot = SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    SINK_INSTALLED.store(sink.is_some(), Ordering::Relaxed);
    std::mem::replace(&mut slot, sink)
}

/// Whether a span sink is installed. One relaxed atomic load — the
/// guard query execution checks before assembling a span.
#[inline]
pub fn span_sink_installed() -> bool {
    SINK_INSTALLED.load(Ordering::Relaxed)
}

/// Emit a span to the installed sink, if any. The closure only runs
/// when a sink is installed, so span assembly costs nothing otherwise.
#[inline]
pub fn emit_span(f: impl FnOnce() -> QuerySpan) {
    if !span_sink_installed() {
        return;
    }
    let sink = SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    if let Some(sink) = sink {
        sink.record(&f());
    }
}

/// Emit a slow-query record to the installed sink, if any. Same
/// contract as [`emit_span`]: the closure only runs with a sink
/// installed.
#[inline]
pub fn emit_slow(f: impl FnOnce() -> SlowQueryRecord) {
    if !span_sink_installed() {
        return;
    }
    let sink = SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    if let Some(sink) = sink {
        sink.record_slow(&f());
    }
}

/// The next process-unique query id.
pub fn next_query_id() -> u64 {
    NEXT_QUERY_ID.fetch_add(1, Ordering::Relaxed)
}

/// FNV-1a 64-bit hash (plan digests).
pub fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_span(id: u64) -> QuerySpan {
        QuerySpan {
            query_id: id,
            plan_digest: format!("{:016x}", fnv1a64("Scan t [a]")),
            rows_out: 3,
            elapsed_ns: 1234,
            phases: vec![("plan", 200), ("execute", 1034)],
            counters: vec![("tde_queries_total".into(), 1)],
            error: None,
        }
    }

    #[test]
    fn error_spans_and_slow_records_serialize() {
        let mut span = sample_span(9);
        span.error = Some("injected hard read failure".into());
        let json = span.to_json();
        assert!(json.contains("\"error\":\"injected hard read failure\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let rec = SlowQueryRecord {
            query_id: 9,
            plan_digest: "feedfacecafebeef".into(),
            rows_out: 3,
            elapsed_ns: 2_000_000,
            threshold_ns: 1_000_000,
            phases: vec![("plan", 200), ("execute", 1_999_800)],
            top_ops: vec![("aggregate".into(), 1_500_000), ("scan".into(), 400_000)],
        };
        let json = rec.to_json();
        assert!(json.contains("\"kind\":\"slow_query\""));
        assert!(json.contains("\"threshold_ns\":1000000"));
        assert!(json.contains("{\"op\":\"aggregate\",\"self_ns\":1500000}"));

        let sink = MemorySink::new();
        sink.record_slow(&rec);
        assert_eq!(sink.slow_records().len(), 1);
    }

    #[test]
    fn emit_without_sink_is_a_noop() {
        // May run concurrently with the install test; only assert the
        // closure is skipped when we can see the uninstalled state.
        if !span_sink_installed() {
            emit_span(|| sample_span(0));
        }
    }

    #[test]
    fn memory_sink_records_and_restores() {
        let sink = MemorySink::new();
        let prev = set_span_sink(Some(sink.clone()));
        emit_span(|| sample_span(7));
        set_span_sink(prev);
        let spans = sink.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].query_id, 7);
        let json = spans[0].to_json();
        assert!(json.contains("\"plan_digest\""));
        assert!(json.contains("\"plan\":200"));
        assert!(json.contains("\"tde_queries_total\":1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonLinesSink::new(Box::new(Shared(buf.clone())));
        sink.record(&sample_span(1));
        sink.record(&sample_span(2));
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[1].contains("\"query_id\":2"));
    }

    #[test]
    fn query_ids_are_unique_and_increasing() {
        let a = next_query_id();
        let b = next_query_id();
        assert!(b > a);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64("a"), 0xaf63dc4c8601ec8c);
        assert_ne!(fnv1a64("Scan a"), fnv1a64("Scan b"));
    }
}

//! Observability core for the TDE reproduction.
//!
//! The engine makes most of its interesting choices at *run time* — the
//! tactical optimizer picks hash strategies and join implementations from
//! encoding metadata (§2.3.4–§2.3.5), the dynamic encoder re-encodes
//! columns mid-load (§3.2), and the §3.4.3 conversions reshape columns
//! through their headers. This crate records those choices, plus
//! per-operator block/row/time counters, without perturbing the engine:
//!
//! * [`OpStats`] — three atomic counters an operator adapter bumps per
//!   block;
//! * [`Event`] — a structured record of one decision, re-encoding or
//!   conversion;
//! * [`Trace`] — an arena of operator nodes plus an event log, rendered
//!   as an annotated plan tree;
//! * a process-wide recorder ([`install`] / [`emit`]) that instrumented
//!   code reports into.
//!
//! **Overhead contract**: with no trace installed, [`emit`] is a single
//! relaxed atomic load and [`is_enabled`] likewise — instrumentation
//! points may sit on per-column or per-operator paths (never per-row) and
//! stay well under the 5 % budget the benches enforce.
//!
//! Three always-on layers sit alongside the per-query trace:
//!
//! * [`metrics`] — a process-wide registry of named counters, gauges and
//!   log-linear-bucket histograms accumulating over the whole process
//!   lifetime (exported by `tde-stats` as Prometheus text and JSON),
//!   under the same relaxed-atomic-when-disabled contract;
//! * [`span`] — one compact structured record per query (id, plan
//!   digest, phase timings, counter deltas), emitted as JSON lines
//!   through a pluggable sink;
//! * [`timeline`] — per-thread event timelines (operator spans, morsel
//!   executions, segment loads/evictions, compactions, I/O instants)
//!   drained per query into a bounded ring of [`timeline::QueryTrace`]s
//!   and exported by `tde-stats` as Chrome Trace Event Format.

pub mod metrics;
pub mod span;
pub mod timeline;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Why a dynamic-encoding transition happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReencodeKind {
    /// A block failed to insert mid-load; the stream was rewritten under
    /// a new encoding chosen from the covering statistics (§3.2).
    MidLoad,
    /// The end-of-load comparison against the optimal encoding fired and
    /// the stream was converted because it was physically smaller.
    FinalConvert,
}

impl ReencodeKind {
    fn as_str(self) -> &'static str {
        match self {
            ReencodeKind::MidLoad => "mid-load",
            ReencodeKind::FinalConvert => "final-convert",
        }
    }
}

/// One structured observation from inside the engine.
#[derive(Debug, Clone)]
pub enum Event {
    /// A tactical (run-time) decision: which implementation was chosen
    /// at `point` and the metadata that justified it.
    Decision {
        /// Decision point, e.g. `"hash-strategy"`, `"join"`.
        point: &'static str,
        /// The alternative chosen, e.g. `"Direct64K"`.
        choice: String,
        /// Why, in terms of the metadata consulted.
        reason: String,
    },
    /// A dynamic-encoding transition on one column (§3.2).
    Reencode {
        /// Column label (empty when the encoder was built bare).
        column: String,
        /// Encoding before the transition (spec debug form).
        from: String,
        /// Encoding after the transition.
        to: String,
        /// Rows inserted when the transition happened.
        rows: u64,
        /// Mid-load rewrite or end-of-load optimal conversion.
        kind: ReencodeKind,
    },
    /// An encoding→compression conversion route (§3.4.3).
    Conversion {
        /// Column name.
        column: String,
        /// Route taken, e.g. `"dict-encoding->array-compression"`.
        route: &'static str,
        /// Route-specific detail (dictionary size, envelope, …).
        detail: String,
    },
    /// The buffer pool demand-loaded one column segment from a paged
    /// database file (cache miss → disk read).
    SegmentLoad {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
        /// Segment kind: `"stream"`, `"dictionary"` or `"heap"`.
        segment: &'static str,
        /// Bytes read from disk.
        bytes: u64,
    },
    /// A scan finished running a pushed-down predicate through a
    /// compressed-domain kernel (or its decode-then-eval fallback).
    /// Emitted once per scan at end of stream — never per row.
    KernelScan {
        /// Predicate column name.
        column: String,
        /// Kernel kind (`"rle-run-skip"`, `"dict-domain"`,
        /// `"affine-closed-form"`, … or `"fallback"`).
        kernel: String,
        /// Rows the scan considered.
        rows_in: u64,
        /// Rows that matched the predicate.
        rows_out: u64,
        /// Rows eliminated in the compressed domain, without
        /// per-row decode-then-eval work.
        rows_skipped: u64,
    },
    /// A delta compaction drained one table's write-optimized buffer
    /// through the dynamic encoder into fresh compressed segments.
    Compaction {
        /// Table name.
        table: String,
        /// Delta rows drained into the rebuilt table.
        delta_rows: u64,
        /// Tombstoned base rows dropped by the rebuild.
        tombstones: u64,
        /// Rows in the rebuilt (compacted) table.
        rows_out: u64,
        /// Wall time of the compaction, in nanoseconds.
        nanos: u64,
    },
    /// A FlowTable finished building one column (§3.3).
    ColumnBuilt {
        /// Destination table name.
        table: String,
        /// Column name.
        column: String,
        /// Final encoding algorithm.
        algorithm: String,
        /// Rows encoded.
        rows: u64,
        /// Mid-load re-encoding count.
        reencodings: u32,
        /// Whether the end-of-load optimal conversion fired.
        final_converted: bool,
    },
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Event::Decision {
                point,
                choice,
                reason,
            } => {
                write!(f, "[{point}] {choice}: {reason}")
            }
            Event::Reencode {
                column,
                from,
                to,
                rows,
                kind,
            } => {
                write!(
                    f,
                    "[reencode:{}] {column}: {from} -> {to} at {rows} rows",
                    kind.as_str()
                )
            }
            Event::Conversion {
                column,
                route,
                detail,
            } => {
                write!(f, "[convert] {column}: {route} ({detail})")
            }
            Event::SegmentLoad {
                table,
                column,
                segment,
                bytes,
            } => {
                write!(
                    f,
                    "[segment-load] {table}.{column}: {segment} ({bytes} bytes)"
                )
            }
            Event::KernelScan {
                column,
                kernel,
                rows_in,
                rows_out,
                rows_skipped,
            } => {
                write!(
                    f,
                    "[kernel-scan] {column}: {kernel}, {rows_in} in, {rows_out} out, \
                     {rows_skipped} skipped"
                )
            }
            Event::Compaction {
                table,
                delta_rows,
                tombstones,
                rows_out,
                nanos,
            } => {
                write!(
                    f,
                    "[compaction] {table}: {delta_rows} delta row(s) drained, \
                     {tombstones} tombstone(s) dropped, {rows_out} rows out, {nanos} ns"
                )
            }
            Event::ColumnBuilt {
                table,
                column,
                algorithm,
                rows,
                reencodings,
                final_converted,
            } => {
                write!(
                    f,
                    "[flow-table] {table}.{column}: {algorithm}, {rows} rows, \
                     {reencodings} re-encoding(s){}",
                    if *final_converted {
                        ", final-converted"
                    } else {
                        ""
                    }
                )
            }
        }
    }
}

impl Event {
    /// The event as one JSON object (hand-rolled; the engine has no
    /// serialization dependency).
    pub fn to_json(&self) -> String {
        match self {
            Event::Decision {
                point,
                choice,
                reason,
            } => format!(
                "{{\"kind\":\"decision\",\"point\":\"{}\",\"choice\":\"{}\",\"reason\":\"{}\"}}",
                json_escape(point),
                json_escape(choice),
                json_escape(reason)
            ),
            Event::Reencode {
                column,
                from,
                to,
                rows,
                kind,
            } => format!(
                "{{\"kind\":\"reencode\",\"column\":\"{}\",\"from\":\"{}\",\"to\":\"{}\",\
                 \"rows\":{},\"phase\":\"{}\"}}",
                json_escape(column),
                json_escape(from),
                json_escape(to),
                rows,
                kind.as_str()
            ),
            Event::Conversion {
                column,
                route,
                detail,
            } => format!(
                "{{\"kind\":\"conversion\",\"column\":\"{}\",\"route\":\"{}\",\"detail\":\"{}\"}}",
                json_escape(column),
                json_escape(route),
                json_escape(detail)
            ),
            Event::SegmentLoad {
                table,
                column,
                segment,
                bytes,
            } => format!(
                "{{\"kind\":\"segment_load\",\"table\":\"{}\",\"column\":\"{}\",\
                 \"segment\":\"{}\",\"bytes\":{}}}",
                json_escape(table),
                json_escape(column),
                segment,
                bytes
            ),
            Event::KernelScan {
                column,
                kernel,
                rows_in,
                rows_out,
                rows_skipped,
            } => format!(
                "{{\"kind\":\"kernel_scan\",\"column\":\"{}\",\"kernel\":\"{}\",\
                 \"rows_in\":{},\"rows_out\":{},\"rows_skipped\":{}}}",
                json_escape(column),
                json_escape(kernel),
                rows_in,
                rows_out,
                rows_skipped
            ),
            Event::Compaction {
                table,
                delta_rows,
                tombstones,
                rows_out,
                nanos,
            } => format!(
                "{{\"kind\":\"compaction\",\"table\":\"{}\",\"delta_rows\":{},\
                 \"tombstones\":{},\"rows_out\":{},\"nanos\":{}}}",
                json_escape(table),
                delta_rows,
                tombstones,
                rows_out,
                nanos
            ),
            Event::ColumnBuilt {
                table,
                column,
                algorithm,
                rows,
                reencodings,
                final_converted,
            } => {
                format!(
                    "{{\"kind\":\"column_built\",\"table\":\"{}\",\"column\":\"{}\",\
                     \"algorithm\":\"{}\",\"rows\":{},\"reencodings\":{},\"final_converted\":{}}}",
                    json_escape(table),
                    json_escape(column),
                    json_escape(algorithm),
                    rows,
                    reencodings,
                    final_converted
                )
            }
        }
    }
}

/// Per-operator counters, bumped once per block by the instrumenting
/// adapter. Shared `Arc`s let the trace read while the operator runs.
#[derive(Debug, Default)]
pub struct OpStats {
    /// Blocks produced.
    pub blocks: AtomicU64,
    /// Rows produced.
    pub rows: AtomicU64,
    /// Wall time inside `next_block`, in nanoseconds.
    pub nanos: AtomicU64,
}

impl OpStats {
    /// Fresh zeroed counters.
    pub fn new() -> Arc<OpStats> {
        Arc::new(OpStats::default())
    }

    /// Record one produced block.
    pub fn record_block(&self, rows: u64, nanos: u64) {
        self.blocks.fetch_add(1, Ordering::Relaxed);
        self.rows.fetch_add(rows, Ordering::Relaxed);
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Record time spent producing end-of-stream (the final `None`).
    pub fn record_eos(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Snapshot: (blocks, rows, elapsed).
    pub fn snapshot(&self) -> (u64, u64, Duration) {
        (
            self.blocks.load(Ordering::Relaxed),
            self.rows.load(Ordering::Relaxed),
            Duration::from_nanos(self.nanos.load(Ordering::Relaxed)),
        )
    }
}

/// Cumulative counters for one segment cache (the pager's buffer pool).
/// Bumped with relaxed atomics on the per-segment path — never per row —
/// so they satisfy the crate's overhead contract. Shared `Arc`s let
/// EXPLAIN ANALYZE snapshot the pool while queries run.
///
/// Each record also folds into the process-wide registry's
/// `tde_pool_*` instruments (see [`metrics::pool_metrics`]) when
/// metrics are enabled, so per-pool telemetry and the process-lifetime
/// view stay in lockstep.
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Lookups served from cache.
    pub hits: AtomicU64,
    /// Lookups that went to disk.
    pub misses: AtomicU64,
    /// Entries evicted to stay inside the byte budget.
    pub evictions: AtomicU64,
    /// Bytes demand-loaded from disk.
    pub bytes_read: AtomicU64,
    /// Bytes released by eviction.
    pub bytes_evicted: AtomicU64,
}

impl CacheCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Arc<CacheCounters> {
        Arc::new(CacheCounters::default())
    }

    /// Record a cache hit.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if metrics::enabled() {
            metrics::pool_metrics().hits.inc();
        }
    }

    /// Record a miss that loaded `bytes` from disk.
    pub fn record_miss(&self, bytes: u64) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        if metrics::enabled() {
            let m = metrics::pool_metrics();
            m.misses.inc();
            m.read_bytes.add(bytes);
        }
    }

    /// Record an eviction that released `bytes`.
    pub fn record_eviction(&self, bytes: u64) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
        self.bytes_evicted.fetch_add(bytes, Ordering::Relaxed);
        if metrics::enabled() {
            let m = metrics::pool_metrics();
            m.evictions.inc();
            m.evicted_bytes.add(bytes);
        }
    }

    /// Snapshot the counters, annotated with the pool's current residency
    /// and configured budget (which the counters themselves do not track).
    pub fn snapshot(&self, bytes_cached: u64, budget_bytes: u64) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_evicted: self.bytes_evicted.load(Ordering::Relaxed),
            bytes_cached,
            budget_bytes,
        }
    }
}

/// A point-in-time view of one segment cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups served from cache.
    pub hits: u64,
    /// Lookups that went to disk.
    pub misses: u64,
    /// Entries evicted to stay inside the byte budget.
    pub evictions: u64,
    /// Bytes demand-loaded from disk.
    pub bytes_read: u64,
    /// Bytes released by eviction.
    pub bytes_evicted: u64,
    /// Bytes currently resident.
    pub bytes_cached: u64,
    /// Configured byte budget.
    pub budget_bytes: u64,
}

impl CacheSnapshot {
    /// Fraction of lookups served from cache (1.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counters between two snapshots of the same pool (`self` after,
    /// `earlier` before). Residency and budget are taken from `self`.
    /// Saturating: if the counters were reset between the snapshots (a
    /// reopened pool), the delta clamps to zero instead of panicking.
    pub fn since(&self, earlier: &CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_evicted: self.bytes_evicted.saturating_sub(earlier.bytes_evicted),
            bytes_cached: self.bytes_cached,
            budget_bytes: self.budget_bytes,
        }
    }

    /// The snapshot as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"bytes_read\":{},\
             \"bytes_evicted\":{},\"bytes_cached\":{},\"budget_bytes\":{},\
             \"hit_rate\":{:.3}}}",
            self.hits,
            self.misses,
            self.evictions,
            self.bytes_read,
            self.bytes_evicted,
            self.bytes_cached,
            self.budget_bytes,
            self.hit_rate()
        )
    }
}

impl std::fmt::Display for CacheSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} evictions={} read={}B evicted={}B \
             resident={}B budget={}B hit_rate={:.1}%",
            self.hits,
            self.misses,
            self.evictions,
            self.bytes_read,
            self.bytes_evicted,
            self.bytes_cached,
            self.budget_bytes,
            self.hit_rate() * 100.0
        )
    }
}

/// One operator in the traced plan tree.
#[derive(Debug)]
struct TraceNode {
    label: String,
    parent: Option<usize>,
    stats: Arc<OpStats>,
}

/// A read-only snapshot of one trace node.
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    /// Operator label, e.g. `"HashAggregate"`.
    pub label: String,
    /// Parent node index (`None` for the root).
    pub parent: Option<usize>,
    /// Blocks produced.
    pub blocks: u64,
    /// Rows produced.
    pub rows: u64,
    /// Wall time inside `next_block`.
    pub elapsed: Duration,
}

/// A recording of one query execution: the operator arena plus the event
/// log. Shared behind an `Arc`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct Trace {
    nodes: Mutex<Vec<TraceNode>>,
    events: Mutex<Vec<Event>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Arc<Trace> {
        Arc::new(Trace::default())
    }

    /// Add an operator node; returns its id and shared counters.
    pub fn add_node(
        &self,
        label: impl Into<String>,
        parent: Option<usize>,
    ) -> (usize, Arc<OpStats>) {
        let stats = OpStats::new();
        let mut nodes = lock(&self.nodes);
        let id = nodes.len();
        nodes.push(TraceNode {
            label: label.into(),
            parent,
            stats: stats.clone(),
        });
        (id, stats)
    }

    /// Refine a node's label after a run-time choice is known.
    pub fn set_label(&self, id: usize, label: impl Into<String>) {
        let mut nodes = lock(&self.nodes);
        if let Some(n) = nodes.get_mut(id) {
            n.label = label.into();
        }
    }

    /// Append an event.
    pub fn push_event(&self, event: Event) {
        lock(&self.events).push(event);
    }

    /// Snapshot of the event log.
    pub fn events(&self) -> Vec<Event> {
        lock(&self.events).clone()
    }

    /// Snapshot of the operator nodes (arena order; parents precede
    /// children).
    pub fn nodes(&self) -> Vec<NodeSnapshot> {
        lock(&self.nodes)
            .iter()
            .map(|n| {
                let (blocks, rows, elapsed) = n.stats.snapshot();
                NodeSnapshot {
                    label: n.label.clone(),
                    parent: n.parent,
                    blocks,
                    rows,
                    elapsed,
                }
            })
            .collect()
    }

    /// Render the operator tree annotated with per-operator counters.
    pub fn render_tree(&self) -> String {
        let nodes = self.nodes();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut roots = Vec::new();
        for (id, n) in nodes.iter().enumerate() {
            match n.parent {
                Some(p) => children[p].push(id),
                None => roots.push(id),
            }
        }
        let mut out = String::new();
        fn walk(
            id: usize,
            depth: usize,
            nodes: &[NodeSnapshot],
            children: &[Vec<usize>],
            out: &mut String,
        ) {
            let n = &nodes[id];
            let label = format!("{}{}", "  ".repeat(depth), n.label);
            out.push_str(&format!(
                "{label:<44} blocks={:<6} rows={:<9} elapsed={:.3?}\n",
                n.blocks, n.rows, n.elapsed
            ));
            for &c in &children[id] {
                walk(c, depth + 1, nodes, children, out);
            }
        }
        for r in roots {
            walk(r, 0, &nodes, &children, &mut out);
        }
        out
    }
}

// ---------------------------------------------------------------------
// Process-wide recorder.
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static CURRENT: Mutex<Option<Arc<Trace>>> = Mutex::new(None);
// Serializes installers so concurrent tests/queries cannot interleave
// their events in one another's traces.
static INSTALL: Mutex<()> = Mutex::new(());

/// Whether a trace is currently installed. One relaxed atomic load.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Record an event into the installed trace, if any. The closure only
/// runs when recording is enabled, so argument formatting costs nothing
/// on the disabled path.
#[inline]
pub fn emit(f: impl FnOnce() -> Event) {
    if !is_enabled() {
        return;
    }
    let current = lock(&CURRENT).clone();
    if let Some(trace) = current {
        trace.push_event(f());
    }
}

/// Keeps the trace installed; uninstalls on drop.
pub struct RecorderGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::Relaxed);
        *lock(&CURRENT) = None;
    }
}

/// Install `trace` as the process-wide recorder until the guard drops.
/// Installations are serialized: a second caller blocks until the first
/// guard drops, so traces never mix.
pub fn install(trace: &Arc<Trace>) -> RecorderGuard {
    let serial = INSTALL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    *lock(&CURRENT) = Some(trace.clone());
    ENABLED.store(true, Ordering::Relaxed);
    RecorderGuard { _serial: serial }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_without_trace_is_a_noop() {
        assert!(!is_enabled());
        emit(|| panic!("closure must not run while disabled"));
    }

    #[test]
    fn install_records_and_uninstall_stops() {
        let trace = Trace::new();
        {
            let _g = install(&trace);
            assert!(is_enabled());
            emit(|| Event::Decision {
                point: "test",
                choice: "a".into(),
                reason: "because".into(),
            });
        }
        assert!(!is_enabled());
        emit(|| panic!("closure must not run after guard drop"));
        let events = trace.events();
        assert_eq!(events.len(), 1);
        assert!(events[0].to_string().contains("[test] a"));
    }

    #[test]
    fn tree_renders_nested_counters() {
        let trace = Trace::new();
        let (root, rs) = trace.add_node("Aggregate", None);
        let (_child, cs) = trace.add_node("Scan t [a, b]", Some(root));
        cs.record_block(1024, 5_000);
        cs.record_block(512, 4_000);
        rs.record_block(3, 50_000);
        trace.set_label(root, "HashAggregate [strategy=Direct64K]");
        let tree = trace.render_tree();
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].contains("HashAggregate [strategy=Direct64K]"));
        assert!(lines[0].contains("rows=3"));
        assert!(lines[1].starts_with("  Scan t"));
        assert!(lines[1].contains("blocks=2"));
        assert!(lines[1].contains("rows=1536"));
    }

    #[test]
    fn cache_counters_snapshot_and_delta() {
        let c = CacheCounters::new();
        c.record_miss(100);
        c.record_miss(50);
        c.record_hit();
        c.record_eviction(50);
        let before = c.snapshot(100, 1000);
        assert_eq!(before.hits, 1);
        assert_eq!(before.misses, 2);
        assert_eq!(before.evictions, 1);
        assert_eq!(before.bytes_read, 150);
        assert_eq!(before.bytes_evicted, 50);
        c.record_hit();
        c.record_hit();
        let after = c.snapshot(100, 1000);
        let delta = after.since(&before);
        assert_eq!(delta.hits, 2);
        assert_eq!(delta.misses, 0);
        assert!((after.hit_rate() - 0.6).abs() < 1e-9);
        assert!(after.to_json().contains("\"hits\":3"));
    }

    #[test]
    fn cache_snapshot_delta_saturates_on_counter_reset() {
        // A reopened pool starts its counters from zero; a consumer
        // holding a pre-reset snapshot must get a clamped delta, not an
        // underflow panic.
        let warm = CacheCounters::new();
        warm.record_miss(500);
        warm.record_hit();
        warm.record_hit();
        let before_reset = warm.snapshot(500, 1000);
        let fresh = CacheCounters::new();
        fresh.record_hit();
        let after_reset = fresh.snapshot(0, 1000);
        let delta = after_reset.since(&before_reset);
        assert_eq!(delta.hits, 0, "2 hits before reset, 1 after: clamps to 0");
        assert_eq!(delta.misses, 0);
        assert_eq!(delta.bytes_read, 0);
        // Residency/budget always come from the later snapshot.
        assert_eq!(delta.bytes_cached, 0);
        assert_eq!(delta.budget_bytes, 1000);
    }

    #[test]
    fn cache_snapshot_warm_scan_zero_delta() {
        // A fully warm re-scan: counters move only on the hit side, and
        // the delta of an untouched pool is exactly zero everywhere.
        let c = CacheCounters::new();
        c.record_miss(100);
        let cold = c.snapshot(100, 1000);
        let idle = c.snapshot(100, 1000).since(&cold);
        assert_eq!((idle.hits, idle.misses, idle.evictions), (0, 0, 0));
        assert_eq!((idle.bytes_read, idle.bytes_evicted), (0, 0));
        assert_eq!(idle.hit_rate(), 1.0, "idle delta reads as all-hits");
        c.record_hit();
        c.record_hit();
        let warm = c.snapshot(100, 1000).since(&cold);
        assert_eq!(warm.hits, 2);
        assert_eq!(warm.misses, 0);
        assert_eq!(warm.hit_rate(), 1.0);
    }

    #[test]
    fn cache_counters_fold_into_global_pool_metrics() {
        if !metrics::enabled() {
            return; // TDE_METRICS=0 in the environment
        }
        let g = metrics::pool_metrics();
        let (h0, m0, b0) = (g.hits.get(), g.misses.get(), g.read_bytes.get());
        let c = CacheCounters::new();
        c.record_miss(640);
        c.record_hit();
        c.record_eviction(64);
        assert!(g.hits.get() > h0);
        assert!(g.misses.get() > m0);
        assert!(g.read_bytes.get() >= b0 + 640);
    }

    /// Satellite: a traced operator that panics mid-query poisons the
    /// trace's std mutexes; `emit`, `push_event` and the snapshot paths
    /// must recover via `PoisonError::into_inner` and keep recording.
    #[test]
    fn poisoned_trace_recovers_and_reemits() {
        let trace = Trace::new();
        let (_, stats) = trace.add_node("Scan t", None);
        stats.record_block(10, 100);
        // Poison both internal mutexes: a panic while holding the raw
        // guards, exactly what an unwinding operator does.
        for poison in [true, false] {
            let t = trace.clone();
            let handle = std::thread::spawn(move || {
                let _events = t.events.lock().unwrap();
                let _nodes = if poison {
                    Some(t.nodes.lock().unwrap())
                } else {
                    None
                };
                panic!("traced operator panicked mid-query");
            });
            assert!(handle.join().is_err());
        }
        // Every path still works: emit into the poisoned trace…
        {
            let _g = install(&trace);
            emit(|| Event::Decision {
                point: "after-poison",
                choice: "recovered".into(),
                reason: "PoisonError::into_inner".into(),
            });
        }
        trace.push_event(Event::Conversion {
            column: "c".into(),
            route: "r",
            detail: String::new(),
        });
        // …and snapshot/render it.
        assert_eq!(trace.events().len(), 2);
        let nodes = trace.nodes();
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].rows, 10);
        assert!(trace.render_tree().contains("Scan t"));
        let (id, _) = trace.add_node("Filter", Some(0));
        trace.set_label(id, "Filter [recovered]");
        assert!(trace.render_tree().contains("Filter [recovered]"));
    }

    /// A panic while a recorder guard is held poisons the installer
    /// serialization mutex; the next `install` must recover, not abort.
    #[test]
    fn poisoned_installer_recovers() {
        let poisoner = std::thread::spawn(|| {
            let trace = Trace::new();
            let _g = install(&trace);
            panic!("query panicked while traced");
        });
        assert!(poisoner.join().is_err());
        let trace = Trace::new();
        let _g = install(&trace);
        assert!(is_enabled());
        emit(|| Event::Decision {
            point: "post-poison-install",
            choice: "ok".into(),
            reason: String::new(),
        });
        drop(_g);
        assert_eq!(trace.events().len(), 1);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let e = Event::Conversion {
            column: "c\"1".into(),
            route: "r",
            detail: "d".into(),
        };
        assert!(e.to_json().contains("\\\"1"));
    }
}

//! Always-on query timeline tracing.
//!
//! The third observability layer, alongside the metrics registry
//! ([`crate::metrics`]) and query spans ([`crate::span`]): a
//! per-thread event timeline cheap enough to leave on in production.
//! Every thread that records gets its own *lane* — an `Arc`'d buffer it
//! alone appends to, so the hot path is an uncontended lock plus a
//! `Vec` push, with no cross-thread cache traffic. A process-wide
//! registry keeps `Weak` handles to every lane; when a query finishes,
//! [`query_end`] drains all lanes (and the orphan pool left behind by
//! exited worker threads) into a [`QueryTrace`], which lands in a
//! bounded process-global ring of recently completed traces.
//!
//! Recorded events ([`TimelineKind`]):
//!
//! * operator spans (kind, rows, blocks, wall duration, tree position),
//!   emitted by the `Metered` adapter at end-of-stream;
//! * morsel executions attributed to their worker index (plus the
//!   work-stealing flag);
//! * buffer-pool segment loads and evictions;
//! * delta-compactor runs (foreground and background);
//! * `tde-io` retry and injected-fault instants;
//! * query begin/end markers carrying the plan digest.
//!
//! Like the metrics registry, the layer is gated by one environment
//! variable — `TDE_TRACE=0|off|false` disables it — and the disabled
//! cost at every site is a single relaxed atomic load ([`enabled`]).
//!
//! **Concurrent queries fold.** Lanes are process-wide, so when two
//! queries overlap, background events (and the other query's operator
//! spans) drain into whichever trace finishes first. This is the same
//! caveat the span layer's counter deltas carry, and the same trade
//! the metrics registry makes: attribution is exact when queries are
//! serial, best-effort under concurrency.
//!
//! **Slow queries.** When `TDE_SLOW_QUERY_NS` is set, traces whose
//! `elapsed_ns` meets the threshold are marked slow and pinned in a
//! separate, longer-lived ring ([`slow_traces`]) so the slow tail
//! survives ring churn; `tde_core::Query` additionally appends a
//! structured JSONL record through the span-sink machinery.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex, OnceLock, Weak};
use std::time::Instant;

/// Completed traces kept in the recent ring.
const RING_CAP: usize = 64;
/// Slow traces pinned beyond normal ring churn.
const SLOW_RING_CAP: usize = 16;
/// Per-lane event cap between drains; beyond it events are dropped and
/// counted in [`dropped_events`] rather than growing without bound.
const MAX_LANE_EVENTS: usize = 65_536;

// ---------------------------------------------------------------------
// Enable gate and clock
// ---------------------------------------------------------------------

static ENABLED: LazyLock<AtomicBool> = LazyLock::new(|| {
    AtomicBool::new(!matches!(
        std::env::var("TDE_TRACE").as_deref(),
        Ok("0") | Ok("off") | Ok("false")
    ))
});

/// Whether timeline tracing is on. One relaxed atomic load (plus the
/// one-time lazy env read) — safe on any engine path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Flip tracing on or off at runtime, returning the previous state.
/// Used by benches and embedders; the initial state comes from
/// `TDE_TRACE`.
pub fn set_enabled(on: bool) -> bool {
    ENABLED.swap(on, Ordering::Relaxed)
}

/// The `TDE_SLOW_QUERY_NS` threshold, parsed once. `None` when unset
/// or unparseable — slow-query handling is then off.
pub fn slow_threshold_ns() -> Option<u64> {
    static T: OnceLock<Option<u64>> = OnceLock::new();
    *T.get_or_init(|| {
        std::env::var("TDE_SLOW_QUERY_NS")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
    })
}

static EPOCH: LazyLock<Instant> = LazyLock::new(Instant::now);

/// Nanoseconds since the process trace epoch (first use of the layer).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// One typed timeline entry. Spans carry their duration; instants have
/// `dur_ns`-free payloads. `ts_ns` is the *start* for spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineKind {
    /// A query entered an execution entry point.
    QueryBegin {
        /// The span-layer query id.
        query_id: u64,
    },
    /// A query finished (successfully or not).
    QueryEnd {
        /// The span-layer query id.
        query_id: u64,
    },
    /// One operator's whole lifetime, emitted at end-of-stream by the
    /// `Metered` adapter: wall span from first `next_block` call to
    /// exhaustion, inclusive of children (Volcano pull).
    OperatorSpan {
        /// Operator kind (first token of the plan label).
        op: String,
        /// Per-query-tree operator id, for parent/child self-time math.
        op_id: u32,
        /// Parent operator id, `None` at the root.
        parent: Option<u32>,
        /// Blocks pulled through this operator.
        blocks: u64,
        /// Rows produced by this operator.
        rows: u64,
        /// Wall-clock span in nanoseconds (inclusive of children).
        dur_ns: u64,
    },
    /// One morsel executed by a parallel worker.
    Morsel {
        /// Worker index within the query's worker pool.
        worker: u32,
        /// Morsel index.
        morsel: u32,
        /// Was this morsel stolen from another worker's range?
        stolen: bool,
        /// Execution time in nanoseconds.
        dur_ns: u64,
    },
    /// The buffer pool demand-loaded a segment.
    SegmentLoad {
        /// Table name.
        table: String,
        /// Column name (`<heap>` for the string heap).
        column: String,
        /// Segment kind ("stream", "dictionary", "heap").
        segment: &'static str,
        /// Compressed bytes read.
        bytes: u64,
        /// Load latency in nanoseconds.
        dur_ns: u64,
    },
    /// The buffer pool evicted a segment to stay under budget.
    PoolEviction {
        /// Bytes released.
        bytes: u64,
    },
    /// A delta compaction ran (foreground or background).
    Compaction {
        /// Table name.
        table: String,
        /// Delta rows merged in.
        delta_rows: u64,
        /// Tombstones applied.
        tombstones: u64,
        /// Rows in the re-encoded base.
        rows_out: u64,
        /// Compaction time in nanoseconds.
        dur_ns: u64,
    },
    /// `read_exact_at` retried a transient I/O error.
    IoRetry {
        /// Operation label ("stream", "heap", …).
        op: &'static str,
    },
    /// The fault-injection backend injected a fault.
    IoFault {
        /// Fault kind ("crash", "hard-read", …).
        kind: &'static str,
    },
}

/// A timestamped event on a lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Start time (spans) or occurrence time (instants), in
    /// nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// The lane (thread) that recorded the event.
    pub lane: u32,
    /// Payload.
    pub kind: TimelineKind,
}

// ---------------------------------------------------------------------
// Lanes
// ---------------------------------------------------------------------

struct LaneBuffer {
    lane: u32,
    name: String,
    events: Mutex<Vec<TimelineEvent>>,
}

impl LaneBuffer {
    fn push(&self, ev: TimelineEvent) {
        let mut events = self.events.lock().unwrap();
        if events.len() >= MAX_LANE_EVENTS {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(ev);
    }
}

impl Drop for LaneBuffer {
    fn drop(&mut self) {
        // The owning thread exited (morsel workers are scoped threads
        // that die before query_end). Park any undrained events in the
        // orphan pool so the finishing query still sees them.
        let events = std::mem::take(self.events.get_mut().unwrap());
        if !events.is_empty() {
            ORPHANS.lock().unwrap().extend(events);
        }
    }
}

static LANES: Mutex<Vec<Weak<LaneBuffer>>> = Mutex::new(Vec::new());
static ORPHANS: Mutex<Vec<TimelineEvent>> = Mutex::new(Vec::new());
static NEXT_LANE: AtomicU32 = AtomicU32::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LANE: std::cell::OnceCell<Arc<LaneBuffer>> = const { std::cell::OnceCell::new() };
}

fn record(kind: TimelineKind) {
    record_at(now_ns(), kind);
}

fn record_at(ts_ns: u64, kind: TimelineKind) {
    LANE.with(|cell| {
        let lane = cell.get_or_init(|| {
            let lane = Arc::new(LaneBuffer {
                lane: NEXT_LANE.fetch_add(1, Ordering::Relaxed),
                name: std::thread::current()
                    .name()
                    .unwrap_or("worker")
                    .to_string(),
                events: Mutex::new(Vec::new()),
            });
            LANES.lock().unwrap().push(Arc::downgrade(&lane));
            lane
        });
        let lane_id = lane.lane;
        lane.push(TimelineEvent {
            ts_ns,
            lane: lane_id,
            kind,
        });
    });
}

/// Events discarded because a lane hit its between-drain cap.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Recording helpers (each is a no-op unless the layer is enabled)
// ---------------------------------------------------------------------

static NEXT_OP_ID: AtomicU32 = AtomicU32::new(0);

/// Allocate an operator id for [`TimelineOp`] parent/child linkage.
/// Ids are process-unique, not per-query; uniqueness is all the
/// self-time math needs.
pub fn next_op_id() -> u32 {
    NEXT_OP_ID.fetch_add(1, Ordering::Relaxed)
}

/// Per-operator timeline state held by the `Metered` adapter.
///
/// The hot path ([`TimelineOp::on_block`]) is counter arithmetic plus a
/// clock read on the *first* block only; [`TimelineOp::finish`] (at
/// end-of-stream, or on drop for operators abandoned early) reads the
/// clock once more and emits a single
/// [`TimelineKind::OperatorSpan`].
#[derive(Debug)]
pub struct TimelineOp {
    op: String,
    op_id: u32,
    parent: Option<u32>,
    first_start_ns: Option<u64>,
    blocks: u64,
    rows: u64,
    finished: bool,
}

impl TimelineOp {
    /// State for one wrapped operator. `op_id` comes from
    /// [`next_op_id`]; `parent` is the enclosing operator's id.
    pub fn new(op: &str, op_id: u32, parent: Option<u32>) -> TimelineOp {
        TimelineOp {
            op: op.to_string(),
            op_id,
            parent,
            first_start_ns: None,
            blocks: 0,
            rows: 0,
            finished: false,
        }
    }

    /// Account one produced block. Reads the clock only on the first
    /// call.
    #[inline]
    pub fn on_block(&mut self, rows: u64) {
        if self.first_start_ns.is_none() {
            self.first_start_ns = Some(now_ns());
        }
        self.blocks += 1;
        self.rows += rows;
    }

    /// Emit the operator span (idempotent; also called from `Drop`).
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        if !enabled() {
            return;
        }
        let end = now_ns();
        let start = self.first_start_ns.unwrap_or(end);
        record_at(
            start,
            TimelineKind::OperatorSpan {
                op: std::mem::take(&mut self.op),
                op_id: self.op_id,
                parent: self.parent,
                blocks: self.blocks,
                rows: self.rows,
                dur_ns: end.saturating_sub(start),
            },
        );
    }
}

impl Drop for TimelineOp {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Record one morsel execution. `started` is the instant just before
/// the morsel ran on worker `worker`.
pub fn morsel_span(worker: u32, morsel: u32, stolen: bool, started: Instant) {
    if !enabled() {
        return;
    }
    let end = now_ns();
    let dur_ns = started.elapsed().as_nanos() as u64;
    record_at(
        end.saturating_sub(dur_ns),
        TimelineKind::Morsel {
            worker,
            morsel,
            stolen,
            dur_ns,
        },
    );
}

/// Record a buffer-pool segment demand-load.
pub fn segment_load(table: &str, column: &str, segment: &'static str, bytes: u64, dur_ns: u64) {
    if !enabled() {
        return;
    }
    record_at(
        now_ns().saturating_sub(dur_ns),
        TimelineKind::SegmentLoad {
            table: table.to_string(),
            column: column.to_string(),
            segment,
            bytes,
            dur_ns,
        },
    );
}

/// Record a buffer-pool eviction instant.
pub fn pool_eviction(bytes: u64) {
    if !enabled() {
        return;
    }
    record(TimelineKind::PoolEviction { bytes });
}

/// Record a delta-compaction run that took `dur_ns`.
pub fn compaction(table: &str, delta_rows: u64, tombstones: u64, rows_out: u64, dur_ns: u64) {
    if !enabled() {
        return;
    }
    record_at(
        now_ns().saturating_sub(dur_ns),
        TimelineKind::Compaction {
            table: table.to_string(),
            delta_rows,
            tombstones,
            rows_out,
            dur_ns,
        },
    );
}

/// Record an I/O retry instant.
#[inline]
pub fn io_retry(op: &'static str) {
    if !enabled() {
        return;
    }
    record(TimelineKind::IoRetry { op });
}

/// Record an injected-fault instant.
#[inline]
pub fn io_fault(kind: &'static str) {
    if !enabled() {
        return;
    }
    record(TimelineKind::IoFault { kind });
}

// ---------------------------------------------------------------------
// Query lifecycle and the trace ring
// ---------------------------------------------------------------------

/// Handle returned by [`query_begin`]; pass it to [`query_end`].
#[derive(Debug, Clone, Copy)]
pub struct QueryToken {
    query_id: u64,
    start_ns: u64,
}

impl QueryToken {
    /// The query id this token was begun with.
    pub fn query_id(&self) -> u64 {
        self.query_id
    }
}

/// A completed query's drained timeline.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// Span-layer query id.
    pub query_id: u64,
    /// FNV-1a digest of the physical plan's `explain()` text.
    pub plan_digest: String,
    /// Rows the query produced (0 on failure).
    pub rows_out: u64,
    /// End-to-end latency in nanoseconds.
    pub elapsed_ns: u64,
    /// The error message, when the query failed.
    pub error: Option<String>,
    /// Coarse phase timings, mirroring the span layer.
    pub phases: Vec<(&'static str, u64)>,
    /// Query start, nanoseconds since the process trace epoch.
    pub started_ns: u64,
    /// Did `elapsed_ns` meet the `TDE_SLOW_QUERY_NS` threshold?
    pub slow: bool,
    /// Lane names observed at drain time (orphaned worker lanes fall
    /// back to `lane-<id>` downstream).
    pub lanes: Vec<(u32, String)>,
    /// All drained events, sorted by timestamp.
    pub events: Vec<TimelineEvent>,
}

impl QueryTrace {
    /// Top-`n` operators by *self* time: each span's wall duration
    /// minus its direct children's. Returns `(op, self_ns)` pairs,
    /// largest first.
    pub fn top_operators(&self, n: usize) -> Vec<(String, u64)> {
        let spans: Vec<(&String, u32, Option<u32>, u64)> = self
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                TimelineKind::OperatorSpan {
                    op,
                    op_id,
                    parent,
                    dur_ns,
                    ..
                } => Some((op, *op_id, *parent, *dur_ns)),
                _ => None,
            })
            .collect();
        let mut self_ns: Vec<(String, u64)> = spans
            .iter()
            .map(|(op, op_id, _, dur)| {
                let children: u64 = spans
                    .iter()
                    .filter(|(_, _, parent, _)| *parent == Some(*op_id))
                    .map(|(_, _, _, d)| *d)
                    .sum();
                ((*op).clone(), dur.saturating_sub(children))
            })
            .collect();
        self_ns.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        self_ns.truncate(n);
        self_ns
    }
}

static RING: Mutex<std::collections::VecDeque<Arc<QueryTrace>>> =
    Mutex::new(std::collections::VecDeque::new());
static SLOW_RING: Mutex<std::collections::VecDeque<Arc<QueryTrace>>> =
    Mutex::new(std::collections::VecDeque::new());

/// Mark the start of a query. Records a
/// [`TimelineKind::QueryBegin`] marker and returns the token
/// [`query_end`] needs.
pub fn query_begin(query_id: u64) -> QueryToken {
    let start_ns = now_ns();
    record_at(start_ns, TimelineKind::QueryBegin { query_id });
    QueryToken { query_id, start_ns }
}

/// Finish a query: drain every lane (and the orphan pool) into a
/// [`QueryTrace`], push it into the recent ring (and the slow ring
/// when past the `TDE_SLOW_QUERY_NS` threshold), and return it.
pub fn query_end(
    token: QueryToken,
    plan_digest: &str,
    rows_out: u64,
    elapsed_ns: u64,
    error: Option<String>,
    phases: &[(&'static str, u64)],
) -> Arc<QueryTrace> {
    record(TimelineKind::QueryEnd {
        query_id: token.query_id,
    });
    let mut events = std::mem::take(&mut *ORPHANS.lock().unwrap());
    let mut lanes = Vec::new();
    {
        let mut registry = LANES.lock().unwrap();
        registry.retain(|weak| match weak.upgrade() {
            Some(lane) => {
                events.append(&mut lane.events.lock().unwrap());
                lanes.push((lane.lane, lane.name.clone()));
                true
            }
            None => false,
        });
    }
    events.sort_by_key(|e| e.ts_ns);
    let slow = slow_threshold_ns().is_some_and(|t| elapsed_ns >= t);
    let trace = Arc::new(QueryTrace {
        query_id: token.query_id,
        plan_digest: plan_digest.to_string(),
        rows_out,
        elapsed_ns,
        error,
        phases: phases.to_vec(),
        started_ns: token.start_ns,
        slow,
        lanes,
        events,
    });
    {
        let mut ring = RING.lock().unwrap();
        if ring.len() >= RING_CAP {
            ring.pop_front();
        }
        ring.push_back(Arc::clone(&trace));
    }
    if slow {
        let mut ring = SLOW_RING.lock().unwrap();
        if ring.len() >= SLOW_RING_CAP {
            ring.pop_front();
        }
        ring.push_back(Arc::clone(&trace));
    }
    trace
}

/// The recent-trace ring, oldest first.
pub fn recent_traces() -> Vec<Arc<QueryTrace>> {
    RING.lock().unwrap().iter().cloned().collect()
}

/// The pinned slow-query ring, oldest first.
pub fn slow_traces() -> Vec<Arc<QueryTrace>> {
    SLOW_RING.lock().unwrap().iter().cloned().collect()
}

/// Look a trace up by query id (recent ring first, then slow ring).
pub fn find_trace(query_id: u64) -> Option<Arc<QueryTrace>> {
    let hit = RING
        .lock()
        .unwrap()
        .iter()
        .rev()
        .find(|t| t.query_id == query_id)
        .cloned();
    hit.or_else(|| {
        SLOW_RING
            .lock()
            .unwrap()
            .iter()
            .rev()
            .find(|t| t.query_id == query_id)
            .cloned()
    })
}

/// Drop both rings and any undrained events (tests and the
/// `tde-stats trace` subcommand use this to start from a clean slate).
pub fn clear() {
    RING.lock().unwrap().clear();
    SLOW_RING.lock().unwrap().clear();
    ORPHANS.lock().unwrap().clear();
    let registry = LANES.lock().unwrap();
    for weak in registry.iter() {
        if let Some(lane) = weak.upgrade() {
            lane.events.lock().unwrap().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Timeline state is process-global; tests that drain it must not
    // interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn query_end_drains_lanes_into_the_ring() {
        let _guard = lock();
        let prev = set_enabled(true);
        clear();
        let token = query_begin(4242);
        segment_load("t", "c", "stream", 512, 1_000);
        pool_eviction(256);
        io_retry("stream");
        let trace = query_end(
            token,
            "feedfacecafebeef",
            10,
            5_000,
            None,
            &[("plan", 1_000)],
        );
        set_enabled(prev);
        assert_eq!(trace.query_id, 4242);
        assert_eq!(trace.plan_digest, "feedfacecafebeef");
        assert!(!trace.slow);
        let kinds: Vec<_> = trace
            .events
            .iter()
            .map(|e| std::mem::discriminant(&e.kind))
            .collect();
        assert_eq!(kinds.len(), 5, "begin + 3 events + end: {:?}", trace.events);
        assert!(find_trace(4242).is_some());
        assert!(trace.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn worker_thread_events_survive_thread_exit() {
        let _guard = lock();
        let prev = set_enabled(true);
        clear();
        let token = query_begin(4243);
        std::thread::scope(|scope| {
            for w in 0..3u32 {
                scope.spawn(move || {
                    morsel_span(w, w, false, Instant::now());
                });
            }
        });
        let trace = query_end(token, "d", 0, 1, None, &[]);
        set_enabled(prev);
        let workers: std::collections::BTreeSet<u32> = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                TimelineKind::Morsel { worker, .. } => Some(worker),
                _ => None,
            })
            .collect();
        assert_eq!(workers.len(), 3, "orphaned worker events must drain");
    }

    #[test]
    fn operator_self_time_subtracts_children() {
        let _guard = lock();
        let prev = set_enabled(true);
        clear();
        let token = query_begin(4244);
        // Build parent/child spans by hand through the TimelineOp API.
        let root = next_op_id();
        let child = next_op_id();
        let mut child_op = TimelineOp::new("scan", child, Some(root));
        child_op.on_block(100);
        child_op.finish();
        let mut root_op = TimelineOp::new("filter", root, None);
        root_op.on_block(100);
        root_op.finish();
        let mut trace = (*query_end(token, "d", 100, 1, None, &[])).clone();
        set_enabled(prev);
        // Force a deterministic check: parent 10us inclusive, child 4us.
        for e in &mut trace.events {
            match &mut e.kind {
                TimelineKind::OperatorSpan { op, dur_ns, .. } if op == "filter" => {
                    *dur_ns = 10_000;
                }
                TimelineKind::OperatorSpan { op, dur_ns, .. } if op == "scan" => *dur_ns = 4_000,
                _ => {}
            }
        }
        let top = trace.top_operators(3);
        assert_eq!(top[0], ("filter".to_string(), 6_000));
        assert_eq!(top[1], ("scan".to_string(), 4_000));
    }

    #[test]
    fn ring_is_bounded() {
        let _guard = lock();
        let prev = set_enabled(true);
        clear();
        for i in 0..(RING_CAP as u64 + 10) {
            let token = query_begin(100_000 + i);
            query_end(token, "d", 0, 1, None, &[]);
        }
        set_enabled(prev);
        let ring = recent_traces();
        assert_eq!(ring.len(), RING_CAP);
        // Oldest entries were evicted.
        assert_eq!(ring[0].query_id, 100_010);
        assert!(find_trace(100_000).is_none());
    }

    #[test]
    fn disabled_layer_records_nothing() {
        let _guard = lock();
        let prev = set_enabled(false);
        clear();
        segment_load("t", "c", "stream", 512, 1_000);
        pool_eviction(1);
        io_retry("stream");
        io_fault("crash");
        morsel_span(0, 0, false, Instant::now());
        compaction("t", 1, 1, 1, 1);
        let token = query_begin(4245);
        let trace = query_end(token, "d", 0, 1, None, &[]);
        set_enabled(prev);
        // query_begin/query_end always record their markers (the token
        // API is only invoked when the caller saw the layer enabled);
        // the guarded helpers above must not have.
        assert!(
            trace.events.iter().all(|e| matches!(
                e.kind,
                TimelineKind::QueryBegin { .. } | TimelineKind::QueryEnd { .. }
            )),
            "{:?}",
            trace.events
        );
    }

    #[test]
    fn disabled_overhead_budget_10m_calls_under_a_second() {
        let _guard = lock();
        let prev = set_enabled(false);
        let t0 = Instant::now();
        for i in 0..10_000_000u64 {
            io_retry(if i % 2 == 0 { "stream" } else { "heap" });
            pool_eviction(i);
        }
        let elapsed = t0.elapsed();
        set_enabled(prev);
        assert!(
            elapsed < std::time::Duration::from_secs(1),
            "20M disabled timeline calls took {elapsed:?}; the gate must be one relaxed load"
        );
    }
}

//! Failure minimization.
//!
//! A raw failing case has hundreds of rows, several columns and a stack
//! of plan operators; the bug usually needs a handful of rows and one
//! operator. The reducer runs a fixpoint of structural passes — delta
//! debugging over row chunks, plan-operator removal, column removal with
//! index remapping, predicate simplification — accepting a candidate
//! only when it still validates *and* still trips the same oracle as the
//! original failure (so the repro never silently drifts onto a different
//! bug).

use crate::oracle::{run_case_catching, CaseReport};
use crate::spec::{CaseSpec, DeltaOpSpec, PlanOpSpec, PredSpec};

/// What the shrinker did.
#[derive(Debug)]
pub struct ShrinkOutcome {
    /// The minimized case (== the input if nothing could be removed).
    pub spec: CaseSpec,
    /// The report of the minimized case.
    pub report: CaseReport,
    /// Oracle evaluations spent.
    pub evals: usize,
}

/// Minimize `spec`, which must already fail. `budget` caps the number of
/// oracle evaluations (each evaluation runs every oracle family).
pub fn shrink(spec: &CaseSpec, budget: usize) -> ShrinkOutcome {
    let original = run_case_catching(spec);
    let target = match original.discrepancies.first() {
        Some(d) => d.oracle,
        None => {
            return ShrinkOutcome {
                spec: spec.clone(),
                report: original,
                evals: 1,
            }
        }
    };
    let mut ctx = Ctx {
        target,
        evals: 1,
        budget,
    };
    let mut best = spec.clone();
    loop {
        let before = ctx.evals;
        let mut changed = false;
        changed |= shrink_rows(&mut best, &mut ctx);
        changed |= shrink_plan(&mut best, &mut ctx);
        changed |= shrink_columns(&mut best, &mut ctx);
        changed |= shrink_preds(&mut best, &mut ctx);
        changed |= shrink_tlp(&mut best, &mut ctx);
        changed |= shrink_delta(&mut best, &mut ctx);
        if !changed || ctx.evals >= ctx.budget || ctx.evals == before {
            break;
        }
    }
    let report = run_case_catching(&best);
    ctx.evals += 1;
    ShrinkOutcome {
        spec: best,
        report,
        evals: ctx.evals,
    }
}

struct Ctx {
    target: &'static str,
    evals: usize,
    budget: usize,
}

impl Ctx {
    /// Whether `candidate` still fails with the target oracle.
    fn still_fails(&mut self, candidate: &CaseSpec) -> bool {
        if self.evals >= self.budget || candidate.validate().is_err() {
            return false;
        }
        self.evals += 1;
        run_case_catching(candidate)
            .discrepancies
            .iter()
            .any(|d| d.oracle == self.target || d.oracle == "panic")
    }
}

/// ddmin over row chunks: try dropping halves, then quarters, … of the
/// row range, across all columns in lockstep.
fn shrink_rows(best: &mut CaseSpec, ctx: &mut Ctx) -> bool {
    let mut changed = false;
    let mut granularity = 2usize;
    loop {
        let rows = best.rows();
        if rows < 2 || ctx.evals >= ctx.budget {
            return changed;
        }
        let chunk = rows.div_ceil(granularity);
        let mut removed_any = false;
        let mut start = 0;
        while start < best.rows() {
            let end = (start + chunk).min(best.rows());
            let candidate = without_rows(best, start, end);
            if ctx.still_fails(&candidate) {
                *best = candidate;
                changed = true;
                removed_any = true;
                // Same start now addresses the next chunk.
            } else {
                start = end;
            }
            if ctx.evals >= ctx.budget {
                return changed;
            }
        }
        if removed_any {
            granularity = 2; // Restart coarse after progress.
        } else if chunk <= 1 {
            return changed;
        } else {
            granularity = (granularity * 2).min(best.rows().max(2));
        }
    }
}

fn without_rows(spec: &CaseSpec, start: usize, end: usize) -> CaseSpec {
    let mut s = spec.clone();
    for col in &mut s.columns {
        col.data.retain_rows(&|i| i < start || i >= end);
    }
    s
}

/// Try removing each plan operator (topmost first: later ops depend on
/// earlier schemas, not the reverse).
fn shrink_plan(best: &mut CaseSpec, ctx: &mut Ctx) -> bool {
    let mut changed = false;
    let mut i = best.plan.len();
    while i > 0 {
        i -= 1;
        let mut candidate = best.clone();
        candidate.plan.remove(i);
        if ctx.still_fails(&candidate) {
            *best = candidate;
            changed = true;
        }
    }
    changed
}

/// Try removing each column, remapping every base-schema index.
fn shrink_columns(best: &mut CaseSpec, ctx: &mut Ctx) -> bool {
    let mut changed = false;
    let mut c = best.columns.len();
    while c > 0 {
        c -= 1;
        if best.columns.len() <= 1 {
            return changed;
        }
        if let Some(candidate) = without_column(best, c) {
            if ctx.still_fails(&candidate) {
                *best = candidate;
                changed = true;
            }
        }
    }
    changed
}

/// Remove base column `c` and renumber the references. Indexes are in
/// the base domain up to (and inside) the first `Project`; after it they
/// address the projection's output and need no change. Returns `None` if
/// anything still references the dropped column.
fn without_column(spec: &CaseSpec, c: usize) -> Option<CaseSpec> {
    let remap = |i: &mut usize| -> Option<()> {
        match (*i).cmp(&c) {
            std::cmp::Ordering::Less => Some(()),
            std::cmp::Ordering::Equal => None,
            std::cmp::Ordering::Greater => {
                *i -= 1;
                Some(())
            }
        }
    };
    let mut s = spec.clone();
    let mut base_domain = true;
    for op in &mut s.plan {
        if !base_domain {
            continue;
        }
        match op {
            PlanOpSpec::Filter(p) => remap_pred(p, &remap)?,
            PlanOpSpec::Project(cols) => {
                for i in cols.iter_mut() {
                    remap(i)?;
                }
                base_domain = false;
            }
            PlanOpSpec::Aggregate { group_by, aggs } => {
                for i in group_by.iter_mut() {
                    remap(i)?;
                }
                for (_, i, _) in aggs.iter_mut() {
                    remap(i)?;
                }
            }
            PlanOpSpec::Sort(keys) => {
                for (i, _) in keys.iter_mut() {
                    remap(i)?;
                }
            }
        }
    }
    if let Some(p) = &mut s.tlp {
        remap_pred(p, &remap)?;
    }
    if let Some(inj) = &mut s.inject {
        remap(&mut inj.column)?;
    }
    s.columns.remove(c);
    Some(s)
}

fn remap_pred(p: &mut PredSpec, remap: &dyn Fn(&mut usize) -> Option<()>) -> Option<()> {
    match p {
        PredSpec::Cmp(_, i, _) | PredSpec::IsNull(i) => remap(i),
        PredSpec::And(a, b) | PredSpec::Or(a, b) => {
            remap_pred(a, remap)?;
            remap_pred(b, remap)
        }
        PredSpec::Not(a) => remap_pred(a, remap),
    }
}

/// One-step simplifications of a predicate tree: a combinator collapses
/// to either child, a negation to its operand.
fn pred_simplifications(p: &PredSpec) -> Vec<PredSpec> {
    let mut out = Vec::new();
    match p {
        PredSpec::And(a, b) | PredSpec::Or(a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
        }
        PredSpec::Not(a) => out.push((**a).clone()),
        PredSpec::Cmp(..) | PredSpec::IsNull(_) => {}
    }
    // Recurse: rebuild with a simplified subtree.
    match p {
        PredSpec::And(a, b) => {
            for sa in pred_simplifications(a) {
                out.push(PredSpec::And(Box::new(sa), b.clone()));
            }
            for sb in pred_simplifications(b) {
                out.push(PredSpec::And(a.clone(), Box::new(sb)));
            }
        }
        PredSpec::Or(a, b) => {
            for sa in pred_simplifications(a) {
                out.push(PredSpec::Or(Box::new(sa), b.clone()));
            }
            for sb in pred_simplifications(b) {
                out.push(PredSpec::Or(a.clone(), Box::new(sb)));
            }
        }
        PredSpec::Not(a) => {
            for sa in pred_simplifications(a) {
                out.push(PredSpec::Not(Box::new(sa)));
            }
        }
        _ => {}
    }
    out
}

fn shrink_preds(best: &mut CaseSpec, ctx: &mut Ctx) -> bool {
    let mut changed = false;
    let mut progress = true;
    while progress && ctx.evals < ctx.budget {
        progress = false;
        // Plan filters.
        for i in 0..best.plan.len() {
            let PlanOpSpec::Filter(p) = &best.plan[i] else {
                continue;
            };
            for simpler in pred_simplifications(p) {
                let mut candidate = best.clone();
                candidate.plan[i] = PlanOpSpec::Filter(simpler);
                if ctx.still_fails(&candidate) {
                    *best = candidate;
                    changed = true;
                    progress = true;
                    break;
                }
            }
        }
        // The TLP predicate.
        if let Some(p) = best.tlp.clone() {
            for simpler in pred_simplifications(&p) {
                let mut candidate = best.clone();
                candidate.tlp = Some(simpler);
                if ctx.still_fails(&candidate) {
                    *best = candidate;
                    changed = true;
                    progress = true;
                    break;
                }
            }
        }
    }
    changed
}

/// Drop delta ops (last first — earlier ops shape the id space later
/// ones address), then halve append/delete counts to a fixpoint.
fn shrink_delta(best: &mut CaseSpec, ctx: &mut Ctx) -> bool {
    let mut changed = false;
    let mut i = best.delta.len();
    while i > 0 {
        i -= 1;
        let mut candidate = best.clone();
        candidate.delta.remove(i);
        if ctx.still_fails(&candidate) {
            *best = candidate;
            changed = true;
        }
    }
    let mut progress = true;
    while progress && ctx.evals < ctx.budget {
        progress = false;
        for i in 0..best.delta.len() {
            let smaller = match best.delta[i] {
                DeltaOpSpec::Append { count, salt } if count > 1 => Some(DeltaOpSpec::Append {
                    count: count / 2,
                    salt,
                }),
                DeltaOpSpec::Delete { start, step, count } if count > 1 => {
                    Some(DeltaOpSpec::Delete {
                        start,
                        step,
                        count: count / 2,
                    })
                }
                _ => None,
            };
            if let Some(op) = smaller {
                let mut candidate = best.clone();
                candidate.delta[i] = op;
                if ctx.still_fails(&candidate) {
                    *best = candidate;
                    changed = true;
                    progress = true;
                }
            }
        }
    }
    changed
}

fn shrink_tlp(best: &mut CaseSpec, ctx: &mut Ctx) -> bool {
    if best.tlp.is_none() {
        return false;
    }
    let mut candidate = best.clone();
    candidate.tlp = None;
    if ctx.still_fails(&candidate) {
        *best = candidate;
        return true;
    }
    false
}

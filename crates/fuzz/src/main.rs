//! tde-fuzz command line.
//!
//! ```text
//! cargo run --release -p tde-fuzz -- --seeds 0..200
//! cargo run --release -p tde-fuzz -- --seeds 0..40 --inject sorted-claim
//! cargo run --release -p tde-fuzz -- --replay tests/fuzz_corpus/join_over_rle.case
//! ```
//!
//! A sweep generates one case per seed, runs every oracle family, and on
//! failure shrinks the case and pins it under the corpus directory as a
//! self-contained `.case` repro. Exit status: 0 = clean sweep (or, with
//! `--inject`, every injected bug caught), 1 = findings (or a missed
//! injection), 2 = usage error.

use std::time::Instant;
use tde_fuzz::spec::{CaseSpec, InjectKind, Injection};
use tde_fuzz::{eligible_injection_column, gen, run_case_catching, shrink};

struct Args {
    seed_start: u64,
    seed_end: u64,
    seeds_explicit: bool,
    inject: Option<InjectKind>,
    corpus_dir: std::path::PathBuf,
    time_box_secs: Option<u64>,
    replay: Option<std::path::PathBuf>,
    shrink_budget: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: tde-fuzz [--seeds A..B] [--inject sorted-claim|dense-unique|min-max|segment-byte]\n\
         \x20               [--corpus-dir DIR] [--time-box-secs N] [--shrink-budget N]\n\
         \x20               [--replay FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seed_start: 0,
        seed_end: 100,
        seeds_explicit: false,
        inject: None,
        corpus_dir: "fuzz_failures".into(),
        time_box_secs: None,
        replay: None,
        shrink_budget: 400,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--seeds" => {
                let v = value("--seeds");
                let Some((a, b)) = v.split_once("..") else {
                    eprintln!("--seeds wants A..B, got {v}");
                    usage();
                };
                match (a.parse(), b.parse()) {
                    (Ok(a), Ok(b)) if a < b => {
                        args.seed_start = a;
                        args.seed_end = b;
                        args.seeds_explicit = true;
                    }
                    _ => {
                        eprintln!("--seeds wants A..B with A < B, got {v}");
                        usage();
                    }
                }
            }
            "--inject" => {
                let v = value("--inject");
                args.inject = Some(InjectKind::from_name(&v).unwrap_or_else(|| {
                    eprintln!("unknown injection kind {v}");
                    usage()
                }));
            }
            "--corpus-dir" => args.corpus_dir = value("--corpus-dir").into(),
            "--time-box-secs" => {
                args.time_box_secs = Some(value("--time-box-secs").parse().unwrap_or_else(|_| {
                    eprintln!("--time-box-secs wants a number");
                    usage()
                }))
            }
            "--shrink-budget" => {
                args.shrink_budget = value("--shrink-budget").parse().unwrap_or_else(|_| {
                    eprintln!("--shrink-budget wants a number");
                    usage()
                })
            }
            "--replay" => args.replay = Some(value("--replay").into()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    args
}

fn main() {
    let mut args = parse_args();
    // A time box without an explicit range means "sweep until the box
    // expires", not "the first 100 seeds" — the nightly job relies on it.
    if args.time_box_secs.is_some() && !args.seeds_explicit {
        args.seed_end = u64::MAX;
    }
    let args = args;
    if let Some(path) = &args.replay {
        std::process::exit(replay(path));
    }
    std::process::exit(sweep(&args));
}

fn replay(path: &std::path::Path) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("read {}: {e}", path.display());
            return 2;
        }
    };
    let spec = match CaseSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse {}: {e}", path.display());
            return 2;
        }
    };
    let report = run_case_catching(&spec);
    if report.clean() {
        println!("{}: clean ({} row(s))", path.display(), spec.rows());
        return 0;
    }
    println!(
        "{}: {} discrepancy(ies)",
        path.display(),
        report.discrepancies.len()
    );
    for d in &report.discrepancies {
        println!("  {d}");
    }
    if let Some(t) = &report.trace {
        println!("--- trace ---\n{t}");
    }
    1
}

fn sweep(args: &Args) -> i32 {
    let started = Instant::now();
    // Caught engine panics are findings, not console noise.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut ran = 0u64;
    let mut skipped = 0u64;
    let mut failures: Vec<(u64, String)> = Vec::new();
    let mut missed_injections: Vec<u64> = Vec::new();
    let mut timed_out = false;

    for seed in args.seed_start..args.seed_end {
        if let Some(limit) = args.time_box_secs {
            if started.elapsed().as_secs() >= limit {
                timed_out = true;
                break;
            }
        }
        let mut spec = gen::generate(seed);
        if let Some(kind) = args.inject {
            let Some(col) = eligible_injection_column(&spec, kind) else {
                skipped += 1;
                continue;
            };
            spec.inject = Some(Injection { column: col, kind });
            if spec.validate().is_err() {
                skipped += 1;
                continue;
            }
        }
        ran += 1;
        let report = run_case_catching(&spec);
        if report.clean() {
            if args.inject.is_some() {
                missed_injections.push(seed);
            }
            continue;
        }
        let outcome = shrink(&spec, args.shrink_budget);
        let summary = outcome
            .report
            .discrepancies
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ");
        println!(
            "seed {seed}: FAIL ({} -> {} row(s) after {} shrink eval(s))",
            spec.rows(),
            outcome.spec.rows(),
            outcome.evals
        );
        println!("  {summary}");
        if args.inject.is_none() {
            if let Err(e) = pin_case(&args.corpus_dir, seed, &outcome.spec, &summary) {
                eprintln!("  could not pin repro: {e}");
            }
            if let Some(t) = &outcome.report.trace {
                for line in t.lines().take(12) {
                    println!("  | {line}");
                }
            }
        }
        failures.push((seed, summary));
    }

    std::panic::set_hook(default_hook);
    let secs = started.elapsed().as_secs_f64();
    if let Some(kind) = args.inject {
        println!(
            "injection sweep ({:?}): {ran} case(s) injected, {} caught, {} missed, \
             {skipped} ineligible, {secs:.1}s{}",
            kind,
            failures.len(),
            missed_injections.len(),
            if timed_out { " (time box hit)" } else { "" }
        );
        if !missed_injections.is_empty() {
            println!("missed seeds: {missed_injections:?}");
            return 1;
        }
        if ran == 0 {
            println!("no eligible case in the seed range");
            return 1;
        }
        0
    } else {
        println!(
            "sweep: {ran} case(s), {} failure(s), {secs:.1}s{}",
            failures.len(),
            if timed_out { " (time box hit)" } else { "" }
        );
        if failures.is_empty() {
            0
        } else {
            println!("repros pinned under {}", args.corpus_dir.display());
            1
        }
    }
}

fn pin_case(
    dir: &std::path::Path,
    seed: u64,
    spec: &CaseSpec,
    summary: &str,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("seed_{seed}.case"));
    let mut text = String::new();
    for line in summary.lines() {
        text.push_str("; ");
        text.push_str(line);
        text.push('\n');
    }
    text.push_str(&spec.to_text());
    std::fs::write(&path, text)?;
    println!("  pinned {}", path.display());
    Ok(path)
}

//! Differential oracle for the `tde-delta` merge-on-read path.
//!
//! A case's `(delta …)` ops replay against two worlds at once: a
//! [`DeltaTable`] over the built base table (merged snapshots, tombstone
//! masking, mid-sequence compaction through the dynamic encoder) and a
//! plain vector-of-rows model that applies the same mutations by hand.
//! After the interleaving, the engine's merged view must agree with a
//! table rebuilt *from scratch* from the model's surviving rows:
//!
//! * the case's full plan over `Query::scan_delta` vs the rebuild, under
//!   every build-policy variant the re-encoding oracle already uses (the
//!   encoding axis of the matrix), and
//! * every base-schema predicate through the merged scan's pushed-kernel,
//!   forced-fallback and plain-Filter paths, compared exactly — merged
//!   scans guarantee base-order-then-append-order, which is precisely the
//!   model's slot order (the predicate axis).
//!
//! Appended rows derive deterministically from the op's salt, so a pinned
//! `.case` file replays the exact mutation history with no generator.

use crate::gen::WORDS;
use crate::oracle::{base_preds, canon, diff, rows_of, Discrepancy};
use crate::spec::{CaseSpec, ColDtype, ColumnData, DeltaOpSpec, Policy};
use std::sync::Arc;
use tde_core::Query;
use tde_delta::DeltaTable;
use tde_exec::filter::Filter;
use tde_exec::merged_scan::MergedScan;
use tde_storage::Table;
use tde_types::Value;

/// Words the base generator never emits — appends drawing these force
/// the snapshot's heap overlay (new tokens past the base heap's end).
const FRESH_WORDS: &[&str] = &["umbra", "vertex", "willow", "xenon", "yonder", "zephyr"];

fn mix(salt: u64, k: u64) -> u64 {
    let mut h = salt ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 29;
    h
}

/// The `i`-th appended row for `salt`, in the spec's base schema.
/// Deterministic and generator-free so a replayed case appends the very
/// rows the sweep did. Values mostly land inside the base's likely
/// domain (so predicates and dictionaries hit), with NULLs and
/// heap-extending fresh strings mixed in.
fn appended_row(spec: &CaseSpec, salt: u64, i: u64) -> Vec<Value> {
    spec.columns
        .iter()
        .enumerate()
        .map(|(c, col)| {
            let h = mix(salt, i.wrapping_mul(31).wrapping_add(c as u64));
            if h.is_multiple_of(11) {
                return Value::Null;
            }
            match col.dtype() {
                ColDtype::Int => Value::Int((h % 201) as i64 - 100),
                ColDtype::Str => {
                    if h.is_multiple_of(5) {
                        let w = FRESH_WORDS[(h / 7) as usize % FRESH_WORDS.len()];
                        Value::Str(format!("{w}{}", h % 3))
                    } else {
                        Value::Str(WORDS[(h / 11) as usize % WORDS.len()].to_string())
                    }
                }
            }
        })
        .collect()
}

/// The base table's logical rows, straight from the spec's data (one
/// model slot per addressable row id).
fn base_rows_of(spec: &CaseSpec) -> Vec<Vec<Value>> {
    (0..spec.rows())
        .map(|r| {
            spec.columns
                .iter()
                .map(|c| match &c.data {
                    ColumnData::Ints(v) => v[r].map_or(Value::Null, Value::Int),
                    ColumnData::Strs(v) => v[r].clone().map_or(Value::Null, Value::Str),
                })
                .collect()
        })
        .collect()
}

/// A spec describing the *final* logical table: the original columns
/// (names, policies, array conversions, plan, TLP) with their data
/// replaced by the model's surviving rows and the delta ops cleared.
/// Building it runs the full import path from scratch — the rebuild leg
/// of the differential.
fn respec(spec: &CaseSpec, slots: &[Option<Vec<Value>>]) -> CaseSpec {
    let mut s = spec.clone();
    s.delta.clear();
    for (c, col) in s.columns.iter_mut().enumerate() {
        match &mut col.data {
            ColumnData::Ints(v) => {
                *v = slots
                    .iter()
                    .flatten()
                    .map(|row| match &row[c] {
                        Value::Int(x) => Some(*x),
                        Value::Null => None,
                        other => unreachable!("int column holds {other:?}"),
                    })
                    .collect();
            }
            ColumnData::Strs(v) => {
                *v = slots
                    .iter()
                    .flatten()
                    .map(|row| match &row[c] {
                        Value::Str(x) => Some(x.clone()),
                        Value::Null => None,
                        other => unreachable!("str column holds {other:?}"),
                    })
                    .collect();
            }
        }
    }
    s
}

/// Replay the interleaving against the delta store and the model, then
/// check every agreement the merge-on-read contract promises.
pub fn delta_diff(spec: &CaseSpec, table: &Arc<Table>, ds: &mut Vec<Discrepancy>) {
    if spec.delta.is_empty() {
        return;
    }
    let fail = |detail: String| Discrepancy {
        oracle: "delta-diff",
        detail,
    };

    let mut dt = DeltaTable::from_eager(Arc::clone(table));
    // One slot per addressable row id (base ids, then append slots —
    // deleted appends keep their slot, exactly like the store). `None`
    // marks a deleted row; compaction keeps survivors and renumbers.
    let mut slots: Vec<Option<Vec<Value>>> = base_rows_of(spec).into_iter().map(Some).collect();
    for (opno, op) in spec.delta.iter().enumerate() {
        match op {
            DeltaOpSpec::Append { count, salt } => {
                let rows: Vec<Vec<Value>> = (0..*count as u64)
                    .map(|i| appended_row(spec, *salt, i))
                    .collect();
                if let Err(e) = dt.append_rows(&rows) {
                    ds.push(fail(format!("op #{opno} append: {e}")));
                    return;
                }
                slots.extend(rows.into_iter().map(Some));
            }
            DeltaOpSpec::Delete { start, step, count } => {
                let total = slots.len() as u64;
                if total == 0 {
                    continue;
                }
                let ids: Vec<u64> = (0..*count as u64)
                    .map(|k| start.wrapping_add(k.wrapping_mul(*step)) % total)
                    .collect();
                if let Err(e) = dt.delete(&ids) {
                    ds.push(fail(format!("op #{opno} delete: {e}")));
                    return;
                }
                for &id in &ids {
                    slots[id as usize] = None;
                }
            }
            DeltaOpSpec::Compact => {
                if let Err(e) = dt.compact() {
                    ds.push(fail(format!("op #{opno} compact: {e}")));
                    return;
                }
                slots.retain(Option::is_some);
            }
        }
    }

    let live = slots.iter().flatten().count() as u64;
    if dt.merged_rows() != live {
        ds.push(fail(format!(
            "store sees {} merged row(s), model has {live}",
            dt.merged_rows()
        )));
        return;
    }
    let src = match dt.snapshot() {
        Ok(s) => s,
        Err(e) => {
            ds.push(fail(format!("snapshot: {e}")));
            return;
        }
    };

    // Encoding axis: the full plan over the merged view vs a from-scratch
    // rebuild of the final table, under every policy variant.
    let merged_full = canon(spec.apply_plan(Query::scan_delta(&src)).rows());
    let rebuilt_spec = respec(spec, &slots);
    if let Err(e) = rebuilt_spec.validate() {
        ds.push(fail(format!("rebuilt spec invalid: {e}")));
        return;
    }
    let mut variants: Vec<(&'static str, Option<Policy>)> = vec![
        ("spec-policies", None),
        ("nosort", Some(Policy::NoSortHeaps)),
        ("noconvert", Some(Policy::NoConvert)),
        ("inner", Some(Policy::InnerSide)),
    ];
    if spec.columns.iter().all(|c| c.dtype() == ColDtype::Int) {
        variants.push(("baseline", Some(Policy::Baseline)));
    }
    for (name, policy) in variants {
        let rebuilt = rebuilt_spec.build_table_with(policy);
        let got = canon(rebuilt_spec.apply_plan(Query::scan(&rebuilt)).rows());
        if let Some(d) = diff(&format!("rebuild-{name}"), &got, "merged", &merged_full) {
            ds.push(fail(d));
        }
    }

    // Predicate axis: every base predicate through the merged scan's
    // pushed-kernel, forced-fallback and plain-Filter paths. Merged
    // scans emit base order then append order — the model's slot order —
    // so the comparison is exact, including against the rebuild.
    let rebuilt = rebuilt_spec.build_table_with(None);
    for (i, pred) in base_preds(spec).iter().enumerate() {
        let expr = pred.expr();
        let reference = rows_of(Box::new(Filter::new(
            Box::new(MergedScan::all(Arc::clone(&src), false)),
            expr.clone(),
        )));
        let pushed = rows_of(Box::new(
            MergedScan::all(Arc::clone(&src), false).with_pushed(expr.clone(), false),
        ));
        let fallback = rows_of(Box::new(
            MergedScan::all(Arc::clone(&src), false).with_pushed(expr.clone(), true),
        ));
        if let Some(d) = diff("merged-pushed", &pushed, "merged-filter", &reference) {
            ds.push(fail(format!("pred #{i}: {d}")));
        }
        if let Some(d) = diff("merged-fallback", &fallback, "merged-filter", &reference) {
            ds.push(fail(format!("pred #{i}: {d}")));
        }
        let on_rebuild = Query::scan(&rebuilt).filter(expr.clone()).rows();
        if let Some(d) = diff(
            "rebuild-filter",
            &canon(on_rebuild),
            "merged-filter",
            &canon(reference),
        ) {
            ds.push(fail(format!("pred #{i}: {d}")));
        }
    }
}

//! Fuzz case specification.
//!
//! A [`CaseSpec`] is a self-contained description of one fuzz case: the
//! schema and concrete data, per-column build policies, the logical plan,
//! the metamorphic-partitioning predicate, and an optional metadata-bug
//! injection. Specs serialize to a small s-expression text format so a
//! failing case can be pinned verbatim into `tests/fuzz_corpus/` and
//! replayed without the generator.

use std::fmt::Write as _;
use std::sync::Arc;
use tde_core::Query;
use tde_encodings::metadata::Knowledge;
use tde_encodings::Algorithm;
use tde_exec::expr::CmpOp;
use tde_exec::sort::SortOrder;
use tde_exec::{AggFunc, Expr};
use tde_storage::{convert, Column, ColumnBuilder, Compression, EncodingPolicy, Table};
use tde_types::Value;

/// Column type. The fuzzer drives the two storage domains that matter:
/// sentinel-NULL scalars and heap-token strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColDtype {
    /// Integer scalars (sentinel NULLs).
    Int,
    /// Strings (heap tokens, token-0 NULLs).
    Str,
}

/// Named build-policy variants — the re-encoding axes of the metamorphic
/// oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Everything on (the production path).
    Default,
    /// Everything off (the paper's baseline). Integer columns only: an
    /// unaccelerated heap assigns duplicate tokens, which legitimately
    /// changes group identities.
    Baseline,
    /// No §3.4.3 heap sorting (tokens stay in append order).
    NoSortHeaps,
    /// No end-of-load conversion to the optimal encoding.
    NoConvert,
    /// Inner-join-side policy: random-access encodings only.
    InnerSide,
}

impl Policy {
    /// The storage-layer policy this variant names.
    pub fn encoding_policy(self) -> EncodingPolicy {
        match self {
            Policy::Default => EncodingPolicy::default(),
            Policy::Baseline => EncodingPolicy::baseline(),
            Policy::NoSortHeaps => EncodingPolicy {
                sort_heaps: false,
                ..EncodingPolicy::default()
            },
            Policy::NoConvert => EncodingPolicy {
                convert_to_optimal: false,
                ..EncodingPolicy::default()
            },
            Policy::InnerSide => EncodingPolicy::inner_side(),
        }
    }

    /// Stable text name (serialization, oracle labels).
    pub fn name(self) -> &'static str {
        match self {
            Policy::Default => "default",
            Policy::Baseline => "baseline",
            Policy::NoSortHeaps => "nosort",
            Policy::NoConvert => "noconvert",
            Policy::InnerSide => "inner",
        }
    }

    fn from_name(s: &str) -> Option<Policy> {
        Some(match s {
            "default" => Policy::Default,
            "baseline" => Policy::Baseline,
            "nosort" => Policy::NoSortHeaps,
            "noconvert" => Policy::NoConvert,
            "inner" => Policy::InnerSide,
            _ => return None,
        })
    }
}

/// The concrete values of one column. `None` entries are NULLs.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Integer values (`None` = NULL).
    Ints(Vec<Option<i64>>),
    /// String values (`None` = NULL).
    Strs(Vec<Option<String>>),
}

impl ColumnData {
    /// Row count.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Ints(v) => v.len(),
            ColumnData::Strs(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keep only the rows whose index passes `keep` (shrinking).
    pub fn retain_rows(&mut self, keep: &dyn Fn(usize) -> bool) {
        match self {
            ColumnData::Ints(v) => {
                let mut i = 0;
                v.retain(|_| {
                    let k = keep(i);
                    i += 1;
                    k
                });
            }
            ColumnData::Strs(v) => {
                let mut i = 0;
                v.retain(|_| {
                    let k = keep(i);
                    i += 1;
                    k
                });
            }
        }
    }
}

/// One column: name, build policy, whether to attempt array
/// (dictionary-compression) conversion after the build, and the data.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Build-policy variant.
    pub policy: Policy,
    /// Convert a dictionary-*encoded* result to dictionary-*compressed*
    /// (`Compression::Array`) — the invisible-join enabler.
    pub array: bool,
    /// The values.
    pub data: ColumnData,
}

impl ColumnSpec {
    /// The column's type.
    pub fn dtype(&self) -> ColDtype {
        match self.data {
            ColumnData::Ints(_) => ColDtype::Int,
            ColumnData::Strs(_) => ColDtype::Str,
        }
    }

    /// Build the physical column under `policy` (or the spec's own).
    pub fn build(&self, policy: Policy) -> Column {
        let dtype = match self.dtype() {
            ColDtype::Int => tde_types::DataType::Integer,
            ColDtype::Str => tde_types::DataType::Str,
        };
        let mut b = ColumnBuilder::new(self.name.clone(), dtype, policy.encoding_policy());
        match &self.data {
            ColumnData::Ints(v) => {
                for x in v {
                    match x {
                        Some(x) => b.append_i64(*x),
                        None => b.append_value(&Value::Null),
                    }
                }
            }
            ColumnData::Strs(v) => {
                for s in v {
                    b.append_str(s.as_deref());
                }
            }
        }
        let mut col = b.finish().column;
        if self.array
            && matches!(col.compression, Compression::None)
            && col.data.algorithm() == Algorithm::Dictionary
        {
            convert::dict_encoding_to_compression(&mut col);
        }
        col
    }
}

/// One step of a buffered-mutation interleaving replayed against a
/// `tde-delta` [`DeltaTable`](tde_delta::DeltaTable) over the case's
/// base table. Appends derive their rows deterministically from the
/// salt, so the op list alone reproduces the exact mutation history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOpSpec {
    /// Append `count` rows derived from `salt`.
    Append {
        /// Rows to append.
        count: usize,
        /// Seed for the deterministic row derivation.
        salt: u64,
    },
    /// Delete the `count` row ids `start + k·step`, each wrapped modulo
    /// the addressable id space at execution time (so the op is valid
    /// whatever the interleaving did before it).
    Delete {
        /// First id in the arithmetic progression.
        start: u64,
        /// Progression stride (≥ 1).
        step: u64,
        /// Ids to delete.
        count: usize,
    },
    /// Drain the buffer through the dynamic encoder into a fresh base,
    /// renumbering the row-id space.
    Compact,
}

/// A predicate literal.
#[derive(Debug, Clone, PartialEq)]
pub enum LitSpec {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// NULL literal.
    Null,
}

/// A serializable predicate over the current schema's columns.
#[derive(Debug, Clone, PartialEq)]
pub enum PredSpec {
    /// `col <op> lit`.
    Cmp(CmpOp, usize, LitSpec),
    /// Conjunction.
    And(Box<PredSpec>, Box<PredSpec>),
    /// Disjunction.
    Or(Box<PredSpec>, Box<PredSpec>),
    /// Negation (two-valued: negates the 0/1 result).
    Not(Box<PredSpec>),
    /// NULL test.
    IsNull(usize),
}

impl PredSpec {
    /// Lower to the executor's expression tree.
    pub fn expr(&self) -> Expr {
        match self {
            PredSpec::Cmp(op, col, lit) => {
                let lit = match lit {
                    LitSpec::Int(v) => Expr::Lit(Value::Int(*v)),
                    LitSpec::Str(s) => Expr::Lit(Value::Str(s.clone())),
                    LitSpec::Null => Expr::Lit(Value::Null),
                };
                Expr::cmp(*op, Expr::col(*col), lit)
            }
            PredSpec::And(a, b) => Expr::And(Box::new(a.expr()), Box::new(b.expr())),
            PredSpec::Or(a, b) => Expr::Or(Box::new(a.expr()), Box::new(b.expr())),
            PredSpec::Not(a) => Expr::Not(Box::new(a.expr())),
            PredSpec::IsNull(col) => Expr::IsNull(Box::new(Expr::col(*col))),
        }
    }

    /// Collect the column indexes the predicate references.
    pub fn referenced(&self, out: &mut Vec<usize>) {
        match self {
            PredSpec::Cmp(_, col, _) | PredSpec::IsNull(col) => out.push(*col),
            PredSpec::And(a, b) | PredSpec::Or(a, b) => {
                a.referenced(out);
                b.referenced(out);
            }
            PredSpec::Not(a) => a.referenced(out),
        }
    }
}

/// An aggregate function in a plan spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Row count (NULLs included — `count(*)` semantics).
    Count,
    /// Wrapping integer sum, NULLs skipped.
    Sum,
    /// Minimum, NULLs skipped.
    Min,
    /// Maximum, NULLs skipped.
    Max,
}

impl AggKind {
    /// The executor's aggregate function.
    pub fn func(self) -> AggFunc {
        match self {
            AggKind::Count => AggFunc::Count,
            AggKind::Sum => AggFunc::Sum,
            AggKind::Min => AggFunc::Min,
            AggKind::Max => AggFunc::Max,
        }
    }

    fn name(self) -> &'static str {
        match self {
            AggKind::Count => "count",
            AggKind::Sum => "sum",
            AggKind::Min => "min",
            AggKind::Max => "max",
        }
    }

    fn from_name(s: &str) -> Option<AggKind> {
        Some(match s {
            "count" => AggKind::Count,
            "sum" => AggKind::Sum,
            "min" => AggKind::Min,
            "max" => AggKind::Max,
            _ => return None,
        })
    }
}

/// One logical plan operator above the scan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOpSpec {
    /// Row filter.
    Filter(PredSpec),
    /// Column subset / reorder.
    Project(Vec<usize>),
    /// Group + aggregate. Output schema: group columns, then one integer
    /// column per aggregate.
    Aggregate {
        /// Grouping key columns.
        group_by: Vec<usize>,
        /// `(function, input column, output name)`.
        aggs: Vec<(AggKind, usize, String)>,
    },
    /// Sort by `(column, ascending)` keys.
    Sort(Vec<(usize, bool)>),
}

/// Which metadata claim the injection corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectKind {
    /// Claim the column is sorted ascending.
    SortedClaim,
    /// Claim the column is dense + unique (+ sorted — the fetch-join
    /// enabling triple).
    DenseUnique,
    /// Claim a minimum above the true minimum (corrupt envelope).
    MinMax,
    /// Flip one byte of the column's on-disk v2 stream segment. Unlike
    /// the metadata kinds this corrupts nothing in memory: the storage
    /// oracle saves the case, flips the byte, and the per-segment
    /// checksum must refuse the reload.
    SegmentByte,
}

impl InjectKind {
    fn name(self) -> &'static str {
        match self {
            InjectKind::SortedClaim => "sorted",
            InjectKind::DenseUnique => "dense-unique",
            InjectKind::MinMax => "min-max",
            InjectKind::SegmentByte => "segment-byte",
        }
    }

    /// Parse a CLI / corpus spelling.
    pub fn from_name(s: &str) -> Option<InjectKind> {
        Some(match s {
            "sorted" | "sorted-claim" => InjectKind::SortedClaim,
            "dense-unique" | "dense" => InjectKind::DenseUnique,
            "min-max" | "minmax" => InjectKind::MinMax,
            "segment-byte" | "segment" => InjectKind::SegmentByte,
            _ => return None,
        })
    }
}

/// A deliberate metadata bug applied after the build — the harness's
/// self-test that the invariant oracle actually bites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Target column index.
    pub column: usize,
    /// Which claim to corrupt.
    pub kind: InjectKind,
}

/// A complete fuzz case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// The generator seed (0 for handcrafted cases).
    pub seed: u64,
    /// The table's columns.
    pub columns: Vec<ColumnSpec>,
    /// Plan operators above the scan, bottom-up.
    pub plan: Vec<PlanOpSpec>,
    /// Buffered-mutation interleaving for the delta oracle (empty =
    /// the case never touches `tde-delta`).
    pub delta: Vec<DeltaOpSpec>,
    /// Predicate for the ternary-partitioning metamorphic oracle, over
    /// the *base* columns.
    pub tlp: Option<PredSpec>,
    /// Optional metadata-bug injection.
    pub inject: Option<Injection>,
}

impl CaseSpec {
    /// Row count of the base table.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.data.len())
    }

    /// The schema (column types) after each plan operator, starting from
    /// the base table. Errors describe the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        let rows = self.rows();
        for c in &self.columns {
            if c.data.len() != rows {
                return Err(format!("column {} has ragged length", c.name));
            }
            if c.policy == Policy::Baseline && c.dtype() == ColDtype::Str {
                return Err(format!(
                    "column {}: baseline policy on a string column changes group identities",
                    c.name
                ));
            }
        }
        if self.columns.is_empty() {
            return Err("no columns".into());
        }
        let mut schema: Vec<ColDtype> = self.columns.iter().map(ColumnSpec::dtype).collect();
        if let Some(p) = &self.tlp {
            check_pred(p, &schema)?;
        }
        if let Some(inj) = &self.inject {
            if inj.column >= self.columns.len() {
                return Err("injection column out of range".into());
            }
        }
        for op in &self.delta {
            match op {
                DeltaOpSpec::Append { count: 0, .. } => {
                    return Err("delta append of zero rows".into())
                }
                DeltaOpSpec::Delete { step, count, .. } if *step == 0 || *count == 0 => {
                    return Err("delta delete wants a nonzero step and count".into())
                }
                _ => {}
            }
        }
        for op in &self.plan {
            match op {
                PlanOpSpec::Filter(p) => check_pred(p, &schema)?,
                PlanOpSpec::Project(cols) => {
                    if cols.is_empty() {
                        return Err("empty projection".into());
                    }
                    for &c in cols {
                        if c >= schema.len() {
                            return Err("projection column out of range".into());
                        }
                    }
                    schema = cols.iter().map(|&c| schema[c]).collect();
                }
                PlanOpSpec::Aggregate { group_by, aggs } => {
                    if aggs.is_empty() {
                        return Err("aggregate without aggregates".into());
                    }
                    for &g in group_by {
                        if g >= schema.len() {
                            return Err("group column out of range".into());
                        }
                    }
                    for (kind, col, _) in aggs {
                        if *col >= schema.len() {
                            return Err("aggregate column out of range".into());
                        }
                        if *kind != AggKind::Count && schema[*col] != ColDtype::Int {
                            // Sum/Min/Max over heap tokens aggregate in
                            // the token domain — only meaningful for
                            // integer columns.
                            return Err(format!("{} over a string column", kind.name()));
                        }
                    }
                    let mut next: Vec<ColDtype> = group_by.iter().map(|&g| schema[g]).collect();
                    next.extend(std::iter::repeat_n(ColDtype::Int, aggs.len()));
                    schema = next;
                }
                PlanOpSpec::Sort(keys) => {
                    if keys.is_empty() {
                        return Err("sort without keys".into());
                    }
                    for &(c, _) in keys {
                        if c >= schema.len() {
                            return Err("sort key out of range".into());
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Build the base table (spec policies, array conversions, injection).
    pub fn build_table(&self) -> Arc<Table> {
        self.build_table_with(None)
    }

    /// Build the base table, overriding every column's policy when
    /// `policy` is given (the re-encoding oracle's variants). The
    /// injection, when present, is re-applied after every build so
    /// shrinking preserves the failure.
    pub fn build_table_with(&self, policy: Option<Policy>) -> Arc<Table> {
        Arc::new(self.build_raw(policy))
    }

    /// As [`CaseSpec::build_table_with`], but returns the table unshared
    /// (the re-encoding oracle mutates column streams in place).
    pub fn build_raw(&self, policy: Option<Policy>) -> Table {
        let cols: Vec<Column> = self
            .columns
            .iter()
            .map(|c| c.build(policy.unwrap_or(c.policy)))
            .collect();
        let mut table = Table::new("t", cols);
        if let Some(inj) = self.inject {
            apply_injection(&mut table.columns[inj.column], inj.kind);
        }
        table
    }

    /// Apply the plan operators to a query rooted at some scan.
    pub fn apply_plan(&self, q: Query) -> Query {
        self.apply_plan_ops(q, &self.plan)
    }

    /// Apply a subset of plan operators (the metamorphic oracle uses the
    /// row-level prefix).
    pub fn apply_plan_ops(&self, mut q: Query, ops: &[PlanOpSpec]) -> Query {
        for op in ops {
            q = match op {
                PlanOpSpec::Filter(p) => q.filter(p.expr()),
                PlanOpSpec::Project(cols) => q.project(
                    cols.iter()
                        .enumerate()
                        .map(|(k, &c)| (format!("p{k}"), Expr::col(c)))
                        .collect(),
                ),
                PlanOpSpec::Aggregate { group_by, aggs } => q.aggregate(
                    group_by.clone(),
                    aggs.iter()
                        .map(|(kind, col, name)| (kind.func(), *col, name.as_str()))
                        .collect(),
                ),
                PlanOpSpec::Sort(keys) => q.sort(
                    keys.iter()
                        .map(|&(c, asc)| (c, if asc { SortOrder::Asc } else { SortOrder::Desc }))
                        .collect(),
                ),
            };
        }
        q
    }

    /// The row-level prefix of the plan: the operators before the first
    /// aggregate/sort, over which row-partitioning is exact.
    pub fn row_level_prefix(&self) -> &[PlanOpSpec] {
        let end = self
            .plan
            .iter()
            .position(|op| !matches!(op, PlanOpSpec::Filter(_) | PlanOpSpec::Project(_)))
            .unwrap_or(self.plan.len());
        &self.plan[..end]
    }
}

fn check_pred(p: &PredSpec, schema: &[ColDtype]) -> Result<(), String> {
    match p {
        PredSpec::Cmp(_, col, lit) => {
            let Some(dtype) = schema.get(*col) else {
                return Err("predicate column out of range".into());
            };
            match (dtype, lit) {
                (ColDtype::Int, LitSpec::Str(_)) | (ColDtype::Str, LitSpec::Int(_)) => {
                    Err("predicate literal type mismatch".into())
                }
                _ => Ok(()),
            }
        }
        PredSpec::And(a, b) | PredSpec::Or(a, b) => {
            check_pred(a, schema)?;
            check_pred(b, schema)
        }
        PredSpec::Not(a) => check_pred(a, schema),
        PredSpec::IsNull(col) => {
            if *col >= schema.len() {
                return Err("predicate column out of range".into());
            }
            Ok(())
        }
    }
}

fn apply_injection(col: &mut Column, kind: InjectKind) {
    match kind {
        InjectKind::SortedClaim => col.metadata.sorted_asc = Knowledge::True,
        InjectKind::DenseUnique => {
            col.metadata.sorted_asc = Knowledge::True;
            col.metadata.dense = Knowledge::True;
            col.metadata.unique = Knowledge::True;
            if col.metadata.min.is_none() {
                col.metadata.min = Some(0);
            }
        }
        InjectKind::MinMax => {
            let lo = col.data.decode_all().into_iter().min().unwrap_or(0);
            col.metadata.min = Some(lo.saturating_add(1));
        }
        // The corruption happens on disk, applied by the segment-byte
        // oracle after the save; the in-memory build stays pristine.
        InjectKind::SegmentByte => {}
    }
}

// ---------------------------------------------------------------------
// Text serialization: a small s-expression format.
// ---------------------------------------------------------------------

/// A parsed s-expression node.
#[derive(Debug, Clone, PartialEq)]
enum Sexp {
    Atom(String),
    Str(String),
    List(Vec<Sexp>),
}

impl Sexp {
    fn list(&self) -> Result<&[Sexp], String> {
        match self {
            Sexp::List(items) => Ok(items),
            other => Err(format!("expected list, got {other:?}")),
        }
    }

    fn atom(&self) -> Result<&str, String> {
        match self {
            Sexp::Atom(s) => Ok(s),
            other => Err(format!("expected atom, got {other:?}")),
        }
    }

    fn string(&self) -> Result<&str, String> {
        match self {
            Sexp::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    fn int(&self) -> Result<i64, String> {
        self.atom()?
            .parse()
            .map_err(|_| format!("expected integer, got {self:?}"))
    }

    fn index(&self) -> Result<usize, String> {
        self.atom()?
            .parse()
            .map_err(|_| format!("expected index, got {self:?}"))
    }

    fn uint(&self) -> Result<u64, String> {
        self.atom()?
            .parse()
            .map_err(|_| format!("expected unsigned integer, got {self:?}"))
    }
}

fn tokenize(text: &str) -> Result<Vec<Sexp>, String> {
    // A tiny recursive-descent reader over the char stream.
    struct Reader<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
    }
    impl Reader<'_> {
        fn skip_ws(&mut self) {
            while let Some(&c) = self.chars.peek() {
                if c == ';' {
                    for c in self.chars.by_ref() {
                        if c == '\n' {
                            break;
                        }
                    }
                } else if c.is_whitespace() {
                    self.chars.next();
                } else {
                    break;
                }
            }
        }

        fn read(&mut self) -> Result<Option<Sexp>, String> {
            self.skip_ws();
            let Some(&c) = self.chars.peek() else {
                return Ok(None);
            };
            match c {
                '(' => {
                    self.chars.next();
                    let mut items = Vec::new();
                    loop {
                        self.skip_ws();
                        match self.chars.peek() {
                            Some(')') => {
                                self.chars.next();
                                return Ok(Some(Sexp::List(items)));
                            }
                            Some(_) => match self.read()? {
                                Some(s) => items.push(s),
                                None => return Err("unterminated list".into()),
                            },
                            None => return Err("unterminated list".into()),
                        }
                    }
                }
                ')' => Err("unbalanced ')'".into()),
                '"' => {
                    self.chars.next();
                    let mut s = String::new();
                    loop {
                        match self.chars.next() {
                            Some('"') => return Ok(Some(Sexp::Str(s))),
                            Some('\\') => match self.chars.next() {
                                Some(c @ ('"' | '\\')) => s.push(c),
                                Some('n') => s.push('\n'),
                                _ => return Err("bad escape".into()),
                            },
                            Some(c) => s.push(c),
                            None => return Err("unterminated string".into()),
                        }
                    }
                }
                _ => {
                    let mut s = String::new();
                    while let Some(&c) = self.chars.peek() {
                        if c.is_whitespace() || c == '(' || c == ')' || c == '"' || c == ';' {
                            break;
                        }
                        s.push(c);
                        self.chars.next();
                    }
                    Ok(Some(Sexp::Atom(s)))
                }
            }
        }
    }
    let mut r = Reader {
        chars: text.chars().peekable(),
    };
    let mut out = Vec::new();
    while let Some(s) = r.read()? {
        out.push(s);
    }
    Ok(out)
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn cmp_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn cmp_from_name(s: &str) -> Option<CmpOp> {
    Some(match s {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        _ => return None,
    })
}

fn write_pred(out: &mut String, p: &PredSpec) {
    match p {
        PredSpec::Cmp(op, col, lit) => {
            let lit = match lit {
                LitSpec::Int(v) => format!("(int {v})"),
                LitSpec::Str(s) => format!("(str {})", quote(s)),
                LitSpec::Null => "null".to_string(),
            };
            let _ = write!(out, "({} {col} {lit})", cmp_name(*op));
        }
        PredSpec::And(a, b) | PredSpec::Or(a, b) => {
            let name = if matches!(p, PredSpec::And(..)) {
                "and"
            } else {
                "or"
            };
            let _ = write!(out, "({name} ");
            write_pred(out, a);
            out.push(' ');
            write_pred(out, b);
            out.push(')');
        }
        PredSpec::Not(a) => {
            out.push_str("(not ");
            write_pred(out, a);
            out.push(')');
        }
        PredSpec::IsNull(col) => {
            let _ = write!(out, "(isnull {col})");
        }
    }
}

fn parse_pred(s: &Sexp) -> Result<PredSpec, String> {
    let items = s.list()?;
    let head = items
        .first()
        .ok_or_else(|| "empty predicate".to_string())?
        .atom()?;
    match head {
        "and" | "or" => {
            if items.len() != 3 {
                return Err(format!("{head} wants 2 operands"));
            }
            let a = Box::new(parse_pred(&items[1])?);
            let b = Box::new(parse_pred(&items[2])?);
            Ok(if head == "and" {
                PredSpec::And(a, b)
            } else {
                PredSpec::Or(a, b)
            })
        }
        "not" => {
            if items.len() != 2 {
                return Err("not wants 1 operand".into());
            }
            Ok(PredSpec::Not(Box::new(parse_pred(&items[1])?)))
        }
        "isnull" => {
            if items.len() != 2 {
                return Err("isnull wants a column".into());
            }
            Ok(PredSpec::IsNull(items[1].index()?))
        }
        op => {
            let op = cmp_from_name(op).ok_or_else(|| format!("unknown predicate head {op}"))?;
            if items.len() != 3 {
                return Err("comparison wants column and literal".into());
            }
            let col = items[1].index()?;
            let lit = match &items[2] {
                Sexp::Atom(a) if a == "null" => LitSpec::Null,
                Sexp::List(l) if l.len() == 2 && l[0] == Sexp::Atom("int".into()) => {
                    LitSpec::Int(l[1].int()?)
                }
                Sexp::List(l) if l.len() == 2 && l[0] == Sexp::Atom("str".into()) => {
                    LitSpec::Str(l[1].string()?.to_owned())
                }
                other => return Err(format!("bad literal {other:?}")),
            };
            Ok(PredSpec::Cmp(op, col, lit))
        }
    }
}

impl CaseSpec {
    /// Serialize to the corpus text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("; tde-fuzz case (replay: cargo run -p tde-fuzz -- --replay <file>)\n");
        out.push_str("(case\n");
        let _ = writeln!(out, "  (seed {})", self.seed);
        for c in &self.columns {
            let _ = write!(
                out,
                "  (col {} {} {} {} (",
                quote(&c.name),
                match c.dtype() {
                    ColDtype::Int => "int",
                    ColDtype::Str => "str",
                },
                c.policy.name(),
                if c.array { "array" } else { "plain" }
            );
            match &c.data {
                ColumnData::Ints(v) => {
                    for (i, x) in v.iter().enumerate() {
                        if i > 0 {
                            out.push(' ');
                        }
                        match x {
                            Some(x) => {
                                let _ = write!(out, "{x}");
                            }
                            None => out.push('?'),
                        }
                    }
                }
                ColumnData::Strs(v) => {
                    for (i, x) in v.iter().enumerate() {
                        if i > 0 {
                            out.push(' ');
                        }
                        match x {
                            Some(x) => out.push_str(&quote(x)),
                            None => out.push('?'),
                        }
                    }
                }
            }
            out.push_str("))\n");
        }
        out.push_str("  (plan");
        for op in &self.plan {
            out.push_str("\n    ");
            match op {
                PlanOpSpec::Filter(p) => {
                    out.push_str("(filter ");
                    write_pred(&mut out, p);
                    out.push(')');
                }
                PlanOpSpec::Project(cols) => {
                    out.push_str("(project");
                    for c in cols {
                        let _ = write!(out, " {c}");
                    }
                    out.push(')');
                }
                PlanOpSpec::Aggregate { group_by, aggs } => {
                    out.push_str("(aggregate (group");
                    for g in group_by {
                        let _ = write!(out, " {g}");
                    }
                    out.push_str(") (aggs");
                    for (kind, col, name) in aggs {
                        let _ = write!(out, " ({} {col} {})", kind.name(), quote(name));
                    }
                    out.push_str("))");
                }
                PlanOpSpec::Sort(keys) => {
                    out.push_str("(sort");
                    for &(c, asc) in keys {
                        let _ = write!(out, " ({c} {})", if asc { "asc" } else { "desc" });
                    }
                    out.push(')');
                }
            }
        }
        out.push_str(")\n");
        if !self.delta.is_empty() {
            out.push_str("  (delta");
            for op in &self.delta {
                out.push_str("\n    ");
                match op {
                    DeltaOpSpec::Append { count, salt } => {
                        let _ = write!(out, "(append {count} {salt})");
                    }
                    DeltaOpSpec::Delete { start, step, count } => {
                        let _ = write!(out, "(delete {start} {step} {count})");
                    }
                    DeltaOpSpec::Compact => out.push_str("(compact)"),
                }
            }
            out.push_str(")\n");
        }
        if let Some(p) = &self.tlp {
            out.push_str("  (tlp ");
            write_pred(&mut out, p);
            out.push_str(")\n");
        }
        if let Some(inj) = &self.inject {
            let _ = writeln!(out, "  (inject {} {})", inj.kind.name(), inj.column);
        }
        out.push_str(")\n");
        out
    }

    /// Parse the corpus text format.
    pub fn parse(text: &str) -> Result<CaseSpec, String> {
        let top = tokenize(text)?;
        let [case] = top.as_slice() else {
            return Err("expected one (case …) form".into());
        };
        let items = case.list()?;
        if items.first().map(|s| s.atom()) != Some(Ok("case")) {
            return Err("expected (case …)".into());
        }
        let mut spec = CaseSpec {
            seed: 0,
            columns: Vec::new(),
            plan: Vec::new(),
            delta: Vec::new(),
            tlp: None,
            inject: None,
        };
        for item in &items[1..] {
            let parts = item.list()?;
            let head = parts
                .first()
                .ok_or_else(|| "empty form".to_string())?
                .atom()?;
            match head {
                "seed" => {
                    spec.seed = parts
                        .get(1)
                        .ok_or("seed wants a value")?
                        .atom()?
                        .parse()
                        .map_err(|_| "bad seed")?;
                }
                "col" => {
                    if parts.len() != 6 {
                        return Err("col wants name/type/policy/compression/values".into());
                    }
                    let name = parts[1].string()?.to_owned();
                    let dtype = parts[2].atom()?;
                    let policy = Policy::from_name(parts[3].atom()?)
                        .ok_or_else(|| format!("unknown policy {:?}", parts[3]))?;
                    let array = match parts[4].atom()? {
                        "array" => true,
                        "plain" => false,
                        other => return Err(format!("unknown compression {other}")),
                    };
                    let vals = parts[5].list()?;
                    let data = match dtype {
                        "int" => ColumnData::Ints(
                            vals.iter()
                                .map(|v| match v {
                                    Sexp::Atom(a) if a == "?" => Ok(None),
                                    v => v.int().map(Some),
                                })
                                .collect::<Result<_, String>>()?,
                        ),
                        "str" => ColumnData::Strs(
                            vals.iter()
                                .map(|v| match v {
                                    Sexp::Atom(a) if a == "?" => Ok(None),
                                    v => v.string().map(|s| Some(s.to_owned())),
                                })
                                .collect::<Result<_, String>>()?,
                        ),
                        other => return Err(format!("unknown column type {other}")),
                    };
                    spec.columns.push(ColumnSpec {
                        name,
                        policy,
                        array,
                        data,
                    });
                }
                "plan" => {
                    for op in &parts[1..] {
                        let op_parts = op.list()?;
                        let op_head = op_parts
                            .first()
                            .ok_or_else(|| "empty plan op".to_string())?
                            .atom()?;
                        let op = match op_head {
                            "filter" => {
                                if op_parts.len() != 2 {
                                    return Err("filter wants a predicate".into());
                                }
                                PlanOpSpec::Filter(parse_pred(&op_parts[1])?)
                            }
                            "project" => PlanOpSpec::Project(
                                op_parts[1..]
                                    .iter()
                                    .map(Sexp::index)
                                    .collect::<Result<_, String>>()?,
                            ),
                            "aggregate" => {
                                if op_parts.len() != 3 {
                                    return Err("aggregate wants (group …) (aggs …)".into());
                                }
                                let group = op_parts[1].list()?;
                                if group.first().map(|s| s.atom()) != Some(Ok("group")) {
                                    return Err("expected (group …)".into());
                                }
                                let aggs_form = op_parts[2].list()?;
                                if aggs_form.first().map(|s| s.atom()) != Some(Ok("aggs")) {
                                    return Err("expected (aggs …)".into());
                                }
                                let group_by = group[1..]
                                    .iter()
                                    .map(Sexp::index)
                                    .collect::<Result<_, String>>()?;
                                let aggs = aggs_form[1..]
                                    .iter()
                                    .map(|a| {
                                        let a = a.list()?;
                                        if a.len() != 3 {
                                            return Err("agg wants (func col name)".to_string());
                                        }
                                        let kind =
                                            AggKind::from_name(a[0].atom()?).ok_or_else(|| {
                                                format!("unknown aggregate {:?}", a[0])
                                            })?;
                                        Ok((kind, a[1].index()?, a[2].string()?.to_owned()))
                                    })
                                    .collect::<Result<_, String>>()?;
                                PlanOpSpec::Aggregate { group_by, aggs }
                            }
                            "sort" => PlanOpSpec::Sort(
                                op_parts[1..]
                                    .iter()
                                    .map(|k| {
                                        let k = k.list()?;
                                        if k.len() != 2 {
                                            return Err("sort key wants (col dir)".to_string());
                                        }
                                        let asc = match k[1].atom()? {
                                            "asc" => true,
                                            "desc" => false,
                                            other => {
                                                return Err(format!("unknown direction {other}"))
                                            }
                                        };
                                        Ok((k[0].index()?, asc))
                                    })
                                    .collect::<Result<_, String>>()?,
                            ),
                            other => return Err(format!("unknown plan op {other}")),
                        };
                        spec.plan.push(op);
                    }
                }
                "delta" => {
                    for op in &parts[1..] {
                        let op_parts = op.list()?;
                        let op_head = op_parts
                            .first()
                            .ok_or_else(|| "empty delta op".to_string())?
                            .atom()?;
                        let op = match op_head {
                            "append" => {
                                if op_parts.len() != 3 {
                                    return Err("append wants count and salt".into());
                                }
                                DeltaOpSpec::Append {
                                    count: op_parts[1].index()?,
                                    salt: op_parts[2].uint()?,
                                }
                            }
                            "delete" => {
                                if op_parts.len() != 4 {
                                    return Err("delete wants start, step and count".into());
                                }
                                DeltaOpSpec::Delete {
                                    start: op_parts[1].uint()?,
                                    step: op_parts[2].uint()?,
                                    count: op_parts[3].index()?,
                                }
                            }
                            "compact" => {
                                if op_parts.len() != 1 {
                                    return Err("compact takes no operands".into());
                                }
                                DeltaOpSpec::Compact
                            }
                            other => return Err(format!("unknown delta op {other}")),
                        };
                        spec.delta.push(op);
                    }
                }
                "tlp" => {
                    if parts.len() != 2 {
                        return Err("tlp wants a predicate".into());
                    }
                    spec.tlp = Some(parse_pred(&parts[1])?);
                }
                "inject" => {
                    if parts.len() != 3 {
                        return Err("inject wants kind and column".into());
                    }
                    let kind = InjectKind::from_name(parts[1].atom()?)
                        .ok_or_else(|| format!("unknown injection {:?}", parts[1]))?;
                    spec.inject = Some(Injection {
                        column: parts[2].index()?,
                        kind,
                    });
                }
                other => return Err(format!("unknown form {other}")),
            }
        }
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CaseSpec {
        CaseSpec {
            seed: 42,
            columns: vec![
                ColumnSpec {
                    name: "c0".into(),
                    policy: Policy::Default,
                    array: true,
                    data: ColumnData::Ints(vec![Some(1), Some(1), None, Some(4)]),
                },
                ColumnSpec {
                    name: "c1".into(),
                    policy: Policy::NoSortHeaps,
                    array: false,
                    data: ColumnData::Strs(vec![
                        Some("b ravo".into()),
                        Some("alpha".into()),
                        None,
                        Some("alpha".into()),
                    ]),
                },
            ],
            plan: vec![
                PlanOpSpec::Filter(PredSpec::Or(
                    Box::new(PredSpec::Cmp(CmpOp::Ge, 0, LitSpec::Int(1))),
                    Box::new(PredSpec::Not(Box::new(PredSpec::IsNull(1)))),
                )),
                PlanOpSpec::Project(vec![1, 0]),
                PlanOpSpec::Aggregate {
                    group_by: vec![0],
                    aggs: vec![
                        (AggKind::Count, 1, "n".into()),
                        (AggKind::Sum, 1, "s".into()),
                    ],
                },
                PlanOpSpec::Sort(vec![(1, false), (0, true)]),
            ],
            delta: vec![
                DeltaOpSpec::Append {
                    count: 3,
                    salt: u64::MAX,
                },
                DeltaOpSpec::Delete {
                    start: 1,
                    step: 2,
                    count: 2,
                },
                DeltaOpSpec::Compact,
            ],
            tlp: Some(PredSpec::Cmp(CmpOp::Eq, 1, LitSpec::Str("alpha".into()))),
            inject: Some(Injection {
                column: 0,
                kind: InjectKind::SortedClaim,
            }),
        }
    }

    #[test]
    fn text_roundtrip_is_identity() {
        let spec = sample();
        spec.validate().unwrap();
        let text = spec.to_text();
        let back = CaseSpec::parse(&text).unwrap();
        assert_eq!(spec, back);
        // Idempotent: a reserialized parse is byte-identical.
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut spec = sample();
        spec.plan.push(PlanOpSpec::Sort(vec![(9, true)]));
        assert!(spec.validate().is_err());
        let mut spec = sample();
        spec.delta.push(DeltaOpSpec::Delete {
            start: 0,
            step: 0,
            count: 1,
        });
        assert!(spec.validate().is_err());
        let mut spec = sample();
        spec.columns[1].data = ColumnData::Strs(vec![None]);
        assert!(spec.validate().is_err());
        let mut spec = sample();
        spec.tlp = Some(PredSpec::Cmp(CmpOp::Eq, 1, LitSpec::Int(3)));
        assert!(spec.validate().is_err());
    }

    #[test]
    fn build_applies_injection() {
        let spec = sample();
        let t = spec.build_table();
        assert!(t.columns[0].metadata.sorted_asc.is_true());
        assert_eq!(t.row_count(), 4);
    }
}

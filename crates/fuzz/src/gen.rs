//! Seeded case generation.
//!
//! `generate(seed)` deterministically produces one [`CaseSpec`]. Data
//! distributions are biased toward the shapes that pick each encoder —
//! runs (RLE), dense ascending ranges (affine, the fetch-join triple),
//! affine sequences with stride, small domains (dictionary), wide random
//! values (raw), NULL-heavy columns (sentinel paths) — and string columns
//! exercise the heap accelerator, §3.4.3 heap sorting and token-0 NULLs.
//! Plans stack filter/project/aggregate/sort with nested predicates; the
//! strategic optimizer turns eligible shapes into invisible joins,
//! IndexTable scans and kernel pushdowns, which is where the differential
//! oracles do their work.

use crate::spec::{
    AggKind, CaseSpec, ColDtype, ColumnData, ColumnSpec, DeltaOpSpec, LitSpec, PlanOpSpec, Policy,
    PredSpec,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use tde_exec::expr::CmpOp;

pub(crate) const WORDS: &[&str] = &[
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india", "juliet",
    "kilo", "lima", "mike", "november", "oscar", "papa", "quebec", "romeo", "sierra", "tango",
];

/// Generate the case for `seed`. Always produces a spec that passes
/// [`CaseSpec::validate`].
pub fn generate(seed: u64) -> CaseSpec {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7de_f022);
    let rows = pick_rows(&mut rng);
    let ncols = rng.gen_range(1..=4usize);
    let columns: Vec<ColumnSpec> = (0..ncols).map(|i| gen_column(&mut rng, i, rows)).collect();
    let mut schema: Vec<ColDtype> = columns.iter().map(ColumnSpec::dtype).collect();

    let mut plan = Vec::new();
    // 0–2 leading row-level operators.
    for _ in 0..rng.gen_range(0..=2usize) {
        if rng.gen_bool(0.7) {
            plan.push(PlanOpSpec::Filter(gen_pred(&mut rng, &columns, &schema, 0)));
        } else {
            let keep = rng.gen_range(1..=schema.len());
            let mut cols: Vec<usize> = (0..schema.len()).collect();
            shuffle(&mut rng, &mut cols);
            cols.truncate(keep);
            schema = cols.iter().map(|&c| schema[c]).collect();
            plan.push(PlanOpSpec::Project(cols));
        }
    }
    if rng.gen_bool(0.55) {
        let ints: Vec<usize> = (0..schema.len())
            .filter(|&c| schema[c] == ColDtype::Int)
            .collect();
        let mut group_by = Vec::new();
        for _ in 0..rng.gen_range(0..=2usize) {
            let g = rng.gen_range(0..schema.len());
            if !group_by.contains(&g) {
                group_by.push(g);
            }
        }
        let mut aggs = Vec::new();
        for k in 0..rng.gen_range(1..=3usize) {
            let name = format!("a{k}");
            if ints.is_empty() || rng.gen_bool(0.3) {
                aggs.push((AggKind::Count, rng.gen_range(0..schema.len()), name));
            } else {
                let kind = [AggKind::Sum, AggKind::Min, AggKind::Max][rng.gen_range(0..3usize)];
                aggs.push((kind, ints[rng.gen_range(0..ints.len())], name));
            }
        }
        let nout = group_by.len() + aggs.len();
        let mut next: Vec<ColDtype> = group_by.iter().map(|&g| schema[g]).collect();
        next.extend(std::iter::repeat_n(ColDtype::Int, aggs.len()));
        plan.push(PlanOpSpec::Aggregate { group_by, aggs });
        schema = next;
        debug_assert_eq!(schema.len(), nout);
    }
    if rng.gen_bool(0.45) {
        let mut keys = Vec::new();
        for _ in 0..rng.gen_range(1..=2usize) {
            let c = rng.gen_range(0..schema.len());
            if !keys.iter().any(|&(k, _)| k == c) {
                keys.push((c, rng.gen_bool(0.7)));
            }
        }
        plan.push(PlanOpSpec::Sort(keys));
    }

    let base_schema: Vec<ColDtype> = columns.iter().map(ColumnSpec::dtype).collect();
    let tlp = Some(gen_pred(&mut rng, &columns, &base_schema, 0));
    let delta = gen_delta(&mut rng);

    let spec = CaseSpec {
        seed,
        columns,
        plan,
        delta,
        tlp,
        inject: None,
    };
    debug_assert!(spec.validate().is_ok(), "{:?}", spec.validate());
    spec
}

/// ~45% of cases get a 1–4 op buffered-mutation interleaving for the
/// delta oracle. Appends are mostly small but occasionally large enough
/// to straddle the execution block boundary inside the delta itself;
/// deletes hit both sides of the base/delta id split (ids wrap modulo
/// the live id space at replay time); a compaction mid-sequence
/// exercises re-encoding and row-id renumbering under later ops.
fn gen_delta(rng: &mut StdRng) -> Vec<DeltaOpSpec> {
    if !rng.gen_bool(0.45) {
        return Vec::new();
    }
    (0..rng.gen_range(1..=4usize))
        .map(|_| match rng.gen_range(0..10u32) {
            0..=4 => DeltaOpSpec::Append {
                count: if rng.gen_bool(0.85) {
                    rng.gen_range(1..=30)
                } else {
                    rng.gen_range(900..=1300)
                },
                salt: rng.gen_range(0..1_000_000u64),
            },
            5..=7 => DeltaOpSpec::Delete {
                start: rng.gen_range(0..2000u64),
                step: rng.gen_range(1..=7u64),
                count: rng.gen_range(1..=40usize),
            },
            _ => DeltaOpSpec::Compact,
        })
        .collect()
}

fn pick_rows(rng: &mut StdRng) -> usize {
    match rng.gen_range(0..100u32) {
        0..=1 => 0,
        2..=4 => 1,
        5..=29 => rng.gen_range(2..=40),
        30..=69 => rng.gen_range(41..=400),
        // Straddle the encoding/execution block boundary.
        _ => rng.gen_range(900..=1400),
    }
}

fn gen_column(rng: &mut StdRng, i: usize, rows: usize) -> ColumnSpec {
    let name = format!("c{i}");
    let is_str = rng.gen_bool(0.35);
    let null_p = match rng.gen_range(0..10u32) {
        0..=4 => 0.0,
        5..=7 => 0.05,
        _ => 0.35,
    };
    if is_str {
        let data = gen_strs(rng, rows, null_p);
        let policy = if rng.gen_bool(0.8) {
            Policy::Default
        } else {
            [Policy::NoSortHeaps, Policy::NoConvert, Policy::InnerSide][rng.gen_range(0..3usize)]
        };
        ColumnSpec {
            name,
            policy,
            array: false,
            data: ColumnData::Strs(data),
        }
    } else {
        let (data, small_domain) = gen_ints(rng, rows, null_p);
        let policy = match rng.gen_range(0..10u32) {
            0 => Policy::Baseline,
            1 => Policy::NoConvert,
            2 => Policy::InnerSide,
            _ => Policy::Default,
        };
        // Array conversion only fires on dictionary-encoded results;
        // request it mostly where a small domain makes that likely.
        let array = policy != Policy::Baseline && small_domain && rng.gen_bool(0.5);
        ColumnSpec {
            name,
            policy,
            array,
            data: ColumnData::Ints(data),
        }
    }
}

fn gen_ints(rng: &mut StdRng, rows: usize, null_p: f64) -> (Vec<Option<i64>>, bool) {
    let pattern = rng.gen_range(0..7u32);
    let mut out = Vec::with_capacity(rows);
    let mut small_domain = false;
    match pattern {
        // Runs: few values held for long stretches (RLE / IndexTable).
        0 => {
            let domain = rng.gen_range(1..=6i64);
            let base = rng.gen_range(-50..=50i64);
            let mut v = base + rng.gen_range(0..domain);
            while out.len() < rows {
                let run = rng.gen_range(1..=60usize).min(rows - out.len());
                for _ in 0..run {
                    out.push(Some(v));
                }
                v = base + rng.gen_range(0..domain);
            }
            small_domain = true;
        }
        // Dense ascending: the fetch-join triple (dense, unique, sorted).
        1 => {
            let base = rng.gen_range(-100..=1000i64);
            out.extend((0..rows as i64).map(|i| Some(base + i)));
        }
        // Affine with stride.
        2 => {
            let base = rng.gen_range(-1000..=1000i64);
            let delta = rng.gen_range(-9..=9i64);
            out.extend((0..rows as i64).map(|i| Some(base + delta * i)));
        }
        // Small uniform domain (dictionary / array compression).
        3 => {
            let domain = rng.gen_range(1..=16i64);
            let base = rng.gen_range(-20..=20i64);
            out.extend((0..rows).map(|_| Some(base + rng.gen_range(0..domain))));
            small_domain = true;
        }
        // Wide random values (raw encoding, negative extremes).
        4 => {
            out.extend((0..rows).map(|_| Some(rng.gen_range(i64::MIN + 1..=i64::MAX))));
        }
        // Sorted with repeats (ordered aggregation, delta encoding).
        5 => {
            let mut v = rng.gen_range(-100..=100i64);
            for _ in 0..rows {
                out.push(Some(v));
                if rng.gen_bool(0.4) {
                    v += rng.gen_range(0..=5i64);
                }
            }
        }
        // Mostly NULL.
        _ => {
            out.extend((0..rows).map(|_| {
                if rng.gen_bool(0.8) {
                    None
                } else {
                    Some(rng.gen_range(-5..=5i64))
                }
            }));
            small_domain = true;
        }
    }
    if null_p > 0.0 {
        for v in &mut out {
            if rng.gen_bool(null_p) {
                *v = None;
            }
        }
    }
    (out, small_domain)
}

fn gen_strs(rng: &mut StdRng, rows: usize, null_p: f64) -> Vec<Option<String>> {
    let pattern = rng.gen_range(0..4u32);
    let mut out = Vec::with_capacity(rows);
    match pattern {
        // Runs of a few words.
        0 => {
            let domain = rng.gen_range(1..=5usize);
            while out.len() < rows {
                let w = WORDS[rng.gen_range(0..domain)];
                let run = rng.gen_range(1..=40usize).min(rows - out.len());
                for _ in 0..run {
                    out.push(Some(w.to_string()));
                }
            }
        }
        // Small uniform domain — arrives unsorted, so §3.4.3 heap
        // sorting remaps the tokens.
        1 => {
            let domain = rng.gen_range(2..=WORDS.len());
            out.extend((0..rows).map(|_| Some(WORDS[rng.gen_range(0..domain)].to_string())));
        }
        // Many distinct values (suffixed words): large unsorted heap.
        2 => {
            out.extend(
                (0..rows)
                    .map(|i| Some(format!("{}{}", WORDS[rng.gen_range(0..WORDS.len())], i / 2))),
            );
        }
        // Already sorted (fortuitous sortedness path).
        _ => {
            let domain = rng.gen_range(1..=WORDS.len());
            let mut picks: Vec<&str> = (0..rows).map(|_| WORDS[rng.gen_range(0..domain)]).collect();
            picks.sort_unstable();
            out.extend(picks.into_iter().map(|w| Some(w.to_string())));
        }
    }
    if null_p > 0.0 {
        for v in &mut out {
            if rng.gen_bool(null_p) {
                *v = None;
            }
        }
    }
    out
}

/// A literal drawn from the column's own data (so predicates hit), with
/// occasional off-by-noise and NULL literals.
fn gen_lit(rng: &mut StdRng, col: &ColumnSpec) -> LitSpec {
    if rng.gen_bool(0.06) {
        return LitSpec::Null;
    }
    match &col.data {
        ColumnData::Ints(v) => {
            let present: Vec<i64> = v.iter().filter_map(|x| *x).collect();
            if present.is_empty() || rng.gen_bool(0.15) {
                LitSpec::Int(rng.gen_range(-100..=100))
            } else {
                let x = present[rng.gen_range(0..present.len())];
                LitSpec::Int(x.saturating_add(rng.gen_range(-2..=2)))
            }
        }
        ColumnData::Strs(v) => {
            let present: Vec<&String> = v.iter().filter_map(|x| x.as_ref()).collect();
            if present.is_empty() || rng.gen_bool(0.15) {
                LitSpec::Str(WORDS[rng.gen_range(0..WORDS.len())].to_string())
            } else {
                LitSpec::Str(present[rng.gen_range(0..present.len())].clone())
            }
        }
    }
}

/// Generate a predicate over `schema`. Plan-level schemas past a project
/// no longer line up with base columns, so literal sampling falls back to
/// the base column with the same index when one exists.
fn gen_pred(rng: &mut StdRng, columns: &[ColumnSpec], schema: &[ColDtype], depth: u32) -> PredSpec {
    if depth < 2 && rng.gen_bool(0.35) {
        let a = Box::new(gen_pred(rng, columns, schema, depth + 1));
        let b = Box::new(gen_pred(rng, columns, schema, depth + 1));
        return match rng.gen_range(0..3u32) {
            0 => PredSpec::And(a, b),
            1 => PredSpec::Or(a, b),
            _ => PredSpec::Not(a),
        };
    }
    let col = rng.gen_range(0..schema.len());
    if rng.gen_bool(0.12) {
        return PredSpec::IsNull(col);
    }
    let op = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ][rng.gen_range(0..6usize)];
    // Sample a type-compatible literal: from the matching base column if
    // its type lines up, else a constant of the right type.
    let lit = match columns.get(col) {
        Some(c) if c.dtype() == schema[col] => gen_lit(rng, c),
        _ => match schema[col] {
            ColDtype::Int => LitSpec::Int(rng.gen_range(-100..=100)),
            ColDtype::Str => LitSpec::Str(WORDS[rng.gen_range(0..WORDS.len())].to_string()),
        },
    };
    PredSpec::Cmp(op, col, lit)
}

fn shuffle(rng: &mut StdRng, v: &mut [usize]) {
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for seed in 0..50 {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a, b);
            a.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // And survives a text roundtrip.
            let back = CaseSpec::parse(&a.to_text()).unwrap();
            assert_eq!(a, back);
        }
    }

    #[test]
    fn generation_covers_the_interesting_shapes() {
        let mut str_cols = 0;
        let mut with_agg = 0;
        let mut with_nulls = 0;
        let mut empty = 0;
        let mut with_delta = 0;
        let mut with_compact = 0;
        for seed in 0..200 {
            let s = generate(seed);
            with_delta += (!s.delta.is_empty()) as usize;
            with_compact += s.delta.iter().any(|op| matches!(op, DeltaOpSpec::Compact)) as usize;
            str_cols += s
                .columns
                .iter()
                .filter(|c| c.dtype() == ColDtype::Str)
                .count();
            with_agg +=
                s.plan
                    .iter()
                    .any(|op| matches!(op, PlanOpSpec::Aggregate { .. })) as usize;
            with_nulls += s.columns.iter().any(|c| match &c.data {
                ColumnData::Ints(v) => v.iter().any(Option::is_none),
                ColumnData::Strs(v) => v.iter().any(Option::is_none),
            }) as usize;
            empty += (s.rows() == 0) as usize;
        }
        assert!(str_cols > 30, "string columns: {str_cols}");
        assert!(with_agg > 50, "plans with aggregate: {with_agg}");
        assert!(with_nulls > 40, "cases with NULLs: {with_nulls}");
        assert!(empty >= 1, "empty tables: {empty}");
        assert!(with_delta > 50, "cases with delta ops: {with_delta}");
        assert!(with_compact > 5, "cases with a compaction: {with_compact}");
    }
}

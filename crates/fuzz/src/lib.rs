//! tde-fuzz: deterministic metamorphic & differential query fuzzer.
//!
//! Structure:
//!
//! * [`spec`] — the serializable case model: columns with data and
//!   per-column encoding policies, a plan-operator stack, an optional
//!   TLP predicate, an optional metadata-bug injection. Cases round-trip
//!   through a small s-expression text format (`.case` files) so a
//!   shrunk failure pins itself as a self-contained repro.
//! * [`gen`] — the seeded generator: schemas and data biased to trigger
//!   each encoder (runs, dense ranges, affine sequences, small domains,
//!   NULL sentinels, string heaps), plans over
//!   scan/filter/project/aggregate/sort.
//! * [`oracle`] — the oracle families (differential, metamorphic,
//!   invariant); see that module's docs.
//! * [`delta_oracle`] — the merge-on-read differential: a case's
//!   `(delta …)` append/delete/compact interleaving replayed against a
//!   `tde-delta` store must match a from-scratch rebuild of the final
//!   logical table across the encoding×predicate matrix.
//! * [`shrink`] — the fixpoint reducer minimizing rows, columns, plan
//!   operators and predicates while preserving the original failure.
//!
//! Everything is deterministic in the seed: `run_seed(n)` always builds
//! the same case, so a seed number alone reproduces a sweep failure.

pub mod delta_oracle;
pub mod gen;
pub mod oracle;
pub mod shrink;
pub mod spec;

pub use oracle::{run_case, run_case_catching, CaseReport, Discrepancy};
pub use shrink::{shrink, ShrinkOutcome};
pub use spec::CaseSpec;

/// Generate and run the case for one seed.
pub fn run_seed(seed: u64) -> (CaseSpec, CaseReport) {
    let spec = gen::generate(seed);
    let report = run_case_catching(&spec);
    (spec, report)
}

/// Pick a column where injecting `kind` actually corrupts a claim (e.g. a
/// sorted claim on genuinely unsorted data). Returns `None` when the case
/// has no eligible column.
pub fn eligible_injection_column(spec: &CaseSpec, kind: spec::InjectKind) -> Option<usize> {
    use spec::{ColumnData, InjectKind};
    spec.columns.iter().position(|c| {
        let ints: Vec<Option<i64>> = match &c.data {
            ColumnData::Ints(v) => v.clone(),
            // Injection targets the stored token/value stream; string
            // token order is an artifact of heap construction, so keep
            // injections on integer columns where claims are legible.
            ColumnData::Strs(_) => return false,
        };
        let vals: Vec<i64> = ints
            .iter()
            .map(|v| v.unwrap_or(tde_types::sentinel::NULL_I64))
            .collect();
        match kind {
            InjectKind::SortedClaim => vals.windows(2).any(|w| w[1] < w[0]),
            InjectKind::DenseUnique => {
                vals.len() >= 2 && !vals.windows(2).all(|w| w[1].wrapping_sub(w[0]) == 1)
            }
            InjectKind::MinMax => !vals.is_empty(),
            // Any stored integer column has a stream segment to corrupt.
            InjectKind::SegmentByte => !vals.is_empty(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_seed_sweep_is_clean() {
        for seed in 0..12 {
            let (spec, report) = run_seed(seed);
            assert!(
                report.clean(),
                "seed {seed} fired: {:?}\ncase:\n{}",
                report.discrepancies,
                spec.to_text()
            );
        }
    }

    #[test]
    fn an_injected_sorted_claim_is_caught_and_shrunk() {
        use spec::{InjectKind, Injection};
        // Find a generated case with an unsorted integer column to corrupt.
        let mut found = false;
        for seed in 0..64 {
            let mut spec = gen::generate(seed);
            let Some(col) = crate::eligible_injection_column(&spec, InjectKind::SortedClaim) else {
                continue;
            };
            spec.inject = Some(Injection {
                column: col,
                kind: InjectKind::SortedClaim,
            });
            if spec.validate().is_err() {
                continue;
            }
            let report = run_case_catching(&spec);
            if !report.clean() {
                let outcome = shrink(&spec, 200);
                assert!(!outcome.report.clean(), "shrunk case stopped failing");
                assert!(
                    outcome.spec.rows() <= spec.rows(),
                    "shrinking grew the case"
                );
                found = true;
                break;
            }
        }
        assert!(found, "no generated case caught the injected sorted claim");
    }

    #[test]
    fn an_injected_segment_byte_is_always_caught() {
        use spec::{InjectKind, Injection};
        // Every eligible seed must be caught: the checksum's per-byte FNV
        // step is a bijection, so a single-byte substitution can never
        // collide — 100% detection is the contract, not a statistic.
        let mut eligible = 0;
        for seed in 0..24 {
            let mut spec = gen::generate(seed);
            let Some(col) = eligible_injection_column(&spec, InjectKind::SegmentByte) else {
                continue;
            };
            spec.inject = Some(Injection {
                column: col,
                kind: InjectKind::SegmentByte,
            });
            if spec.validate().is_err() {
                continue;
            }
            eligible += 1;
            let report = run_case_catching(&spec);
            assert!(
                !report.clean(),
                "seed {seed}: segment-byte corruption got past the checksum\ncase:\n{}",
                spec.to_text()
            );
            assert!(
                report
                    .discrepancies
                    .iter()
                    .all(|d| d.oracle == "segment-byte"),
                "seed {seed}: unexpected oracle fired: {:?}",
                report.discrepancies
            );
        }
        assert!(eligible >= 8, "only {eligible} eligible seeds in 0..24");
    }
}

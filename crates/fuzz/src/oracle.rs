//! The oracle families.
//!
//! Every optimization in the engine claims to be *semantically invisible*:
//! whatever the encodings, compression, storage format, rewrites or
//! parallelism, the result must match the naive decompress-then-execute
//! path. Each oracle checks one slice of that claim for one case:
//!
//! * **Differential** — `optimizer_diff` (rewrites on vs off, one flag at
//!   a time), `kernel_diff` (compressed-domain kernel vs forced fallback
//!   vs a plain Filter), `paged_diff` (paged v2 re-open vs the eager
//!   in-memory table), `parallel_diff` (exchange routing modes and the §8
//!   parallel indexed rollup vs serial execution), `morsel_parallel_diff`
//!   (the whole plan at morsel degrees {2, 4, 8} vs serial — byte-for-byte,
//!   blocks and metadata claims, not merely the same multiset), and
//!   [`crate::delta_oracle::delta_diff`] (merge-on-read over a mutated
//!   delta store vs a from-scratch rebuild of the final logical table).
//! * **Metamorphic** — `tlp_partition` (SQLancer-style predicate
//!   partitioning: the engine's two-valued predicates make `σ[p] ⊎ σ[¬p]`
//!   an exact partition, and the NULL leg splits `¬p` further), plus
//!   aggregate invariance under re-encoding (`reencode_invariance`:
//!   policy variants and RLE decompose/rebuild must not change results).
//! * **Invariant** — `metadata_invariant`: every claim a column's
//!   metadata makes (sorted/dense/unique/min/max/cardinality/nulls/heap
//!   order) is verified against the decoded data, and positive claims on
//!   the query's *output* schema are verified against the materialized
//!   rows. Stale claims are exactly what the tactical optimizer consumes.
//!
//! Row comparisons canonicalize (sort) value-level rows: hash aggregation
//! order is nondeterministic by design, and several rewrites legitimately
//! reorder rows. Where an operator *does* guarantee order (kernel scans,
//! order-preserving exchange) the comparison is exact.

use crate::spec::{CaseSpec, ColDtype, InjectKind, PlanOpSpec, Policy, PredSpec};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use tde_core::Query;
use tde_encodings::{manipulate, Algorithm};
use tde_exec::aggregate::AggSpec;
use tde_exec::exchange::{BlockFn, Exchange, Routing};
use tde_exec::expr::{eval, ComputeHeap};
use tde_exec::filter::Filter;
use tde_exec::parallel::parallel_indexed_aggregate;
use tde_exec::scan::TableScan;
use tde_exec::{AggFunc, Block, BoxOp, Expr, Operator, Schema};
use tde_plan::strategic::OptimizerOptions;
use tde_storage::{Column, Compression, Database, Table};
use tde_types::sentinel::{NULL_I64, NULL_TOKEN};
use tde_types::{Collation, DataType, Value};

/// One oracle disagreement.
#[derive(Debug, Clone)]
pub struct Discrepancy {
    /// Which oracle fired.
    pub oracle: &'static str,
    /// What disagreed.
    pub detail: String,
}

impl std::fmt::Display for Discrepancy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// The outcome of running every oracle over one case.
#[derive(Debug)]
pub struct CaseReport {
    /// Everything that disagreed (empty = clean case).
    pub discrepancies: Vec<Discrepancy>,
    /// The EXPLAIN ANALYZE trace of the default plan, captured when
    /// something fired.
    pub trace: Option<String>,
}

impl CaseReport {
    /// Whether every oracle agreed.
    pub fn clean(&self) -> bool {
        self.discrepancies.is_empty()
    }
}

/// Run every applicable oracle over `spec`.
///
/// With an injection present only the consumers of the corrupted claims
/// run (the invariant oracle and the optimizer differential): the other
/// oracles would correctly fire too, but would attribute the deliberate
/// corruption to the wrong subsystem in the report.
pub fn run_case(spec: &CaseSpec) -> CaseReport {
    let mut ds = Vec::new();
    if let Err(e) = spec.validate() {
        return CaseReport {
            discrepancies: vec![Discrepancy {
                oracle: "spec",
                detail: e,
            }],
            trace: None,
        };
    }
    let table = spec.build_table();
    // A segment-byte injection corrupts nothing in memory — the in-memory
    // oracles would report clean and wrongly count the case as missed.
    // Only the on-disk checksum oracle can bite, so only it runs.
    if matches!(
        spec.inject,
        Some(inj) if inj.kind == InjectKind::SegmentByte
    ) {
        segment_byte_corruption(spec, &table, &mut ds);
        return CaseReport {
            discrepancies: ds,
            trace: None,
        };
    }
    metadata_invariant(spec, &table, &mut ds);
    optimizer_diff(spec, &table, &mut ds);
    if spec.inject.is_none() {
        kernel_diff(spec, &table, &mut ds);
        paged_diff(spec, &table, &mut ds);
        parallel_diff(spec, &table, &mut ds);
        morsel_parallel_diff(spec, &table, &mut ds);
        tlp_partition(spec, &table, &mut ds);
        reencode_invariance(spec, &table, &mut ds);
        crate::delta_oracle::delta_diff(spec, &table, &mut ds);
    }
    let trace = if ds.is_empty() {
        None
    } else {
        Some(
            spec.apply_plan(Query::scan(&table))
                .explain_analyze()
                .to_string(),
        )
    };
    CaseReport {
        discrepancies: ds,
        trace,
    }
}

/// As [`run_case`], but converts a panic anywhere in the engine into a
/// `panic` discrepancy — a crash is a finding, and the shrinker wants to
/// minimize those too.
pub fn run_case_catching(spec: &CaseSpec) -> CaseReport {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_case(spec))) {
        Ok(r) => r,
        Err(p) => CaseReport {
            discrepancies: vec![Discrepancy {
                oracle: "panic",
                detail: panic_message(p.as_ref()),
            }],
            trace: None,
        },
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

// ---------------------------------------------------------------------
// Row plumbing.
// ---------------------------------------------------------------------

/// Materialize an operator's output as value rows (in stream order).
pub fn rows_of(mut op: BoxOp) -> Vec<Vec<Value>> {
    let schema = op.schema().clone();
    let mut rows = Vec::new();
    while let Some(b) = op.next_block() {
        extend_rows(&mut rows, &schema, &b);
    }
    rows
}

fn extend_rows(rows: &mut Vec<Vec<Value>>, schema: &Schema, b: &Block) {
    for r in 0..b.len {
        rows.push(
            (0..schema.len())
                .map(|c| schema.fields[c].value_of(b.columns[c][r]))
                .collect(),
        );
    }
}

fn value_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Real(_) => 3,
        Value::Date(_) => 4,
        Value::Timestamp(_) => 5,
        Value::Str(_) => 6,
    }
}

fn cmp_value(a: &Value, b: &Value) -> Ordering {
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Int(x), Value::Int(y))
        | (Value::Date(x), Value::Date(y))
        | (Value::Timestamp(x), Value::Timestamp(y)) => x.cmp(y),
        (Value::Real(x), Value::Real(y)) => x.total_cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        _ => value_rank(a).cmp(&value_rank(b)),
    }
}

fn cmp_row(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b) {
        let o = cmp_value(x, y);
        if o != Ordering::Equal {
            return o;
        }
    }
    a.len().cmp(&b.len())
}

/// Sort rows into a canonical multiset representation.
pub fn canon(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| cmp_row(a, b));
    rows
}

fn preview(rows: &[Vec<Value>]) -> String {
    let shown: Vec<String> = rows
        .iter()
        .take(4)
        .map(|r| {
            let cells: Vec<String> = r.iter().map(Value::to_string).collect();
            format!("[{}]", cells.join(", "))
        })
        .collect();
    format!(
        "{} row(s) {}{}",
        rows.len(),
        shown.join(" "),
        if rows.len() > 4 { " …" } else { "" }
    )
}

/// `None` when equal, else a two-sided description.
pub(crate) fn diff(lhs: &str, a: &[Vec<Value>], rhs: &str, b: &[Vec<Value>]) -> Option<String> {
    if a == b {
        return None;
    }
    Some(format!("{lhs}: {} != {rhs}: {}", preview(a), preview(b)))
}

fn opts(
    invisible_joins: bool,
    index_tables: bool,
    ordered_retrieval: bool,
    kernel_pushdown: bool,
) -> OptimizerOptions {
    OptimizerOptions {
        invisible_joins,
        index_tables,
        ordered_retrieval,
        kernel_pushdown,
        parallelism: 1,
    }
}

/// The base-schema predicates of the case: leading plan filters (before
/// any projection changes the column indexes) plus the TLP predicate.
pub(crate) fn base_preds(spec: &CaseSpec) -> Vec<&PredSpec> {
    let mut preds: Vec<&PredSpec> = spec
        .plan
        .iter()
        .take_while(|op| matches!(op, PlanOpSpec::Filter(_)))
        .filter_map(|op| match op {
            PlanOpSpec::Filter(p) => Some(p),
            _ => None,
        })
        .collect();
    if let Some(p) = &spec.tlp {
        preds.push(p);
    }
    preds
}

// ---------------------------------------------------------------------
// Differential oracles.
// ---------------------------------------------------------------------

/// Optimizer rewrites on vs off: the full plan through every single-flag
/// variant must match the rewrite-free plan as a multiset.
pub fn optimizer_diff(spec: &CaseSpec, table: &Arc<Table>, ds: &mut Vec<Discrepancy>) {
    let variants: [(&'static str, OptimizerOptions); 5] = [
        ("all-rewrites", OptimizerOptions::default()),
        ("invisible-joins", opts(true, false, false, false)),
        ("index-tables", opts(false, true, false, false)),
        ("ordered-retrieval", opts(false, true, true, false)),
        ("kernel-pushdown", opts(false, false, false, true)),
    ];
    let reference = canon(
        spec.apply_plan(Query::scan(table))
            .with_optimizer(opts(false, false, false, false))
            .rows(),
    );
    for (name, o) in variants {
        let got = canon(spec.apply_plan(Query::scan(table)).with_optimizer(o).rows());
        if let Some(d) = diff(name, &got, "no-rewrites", &reference) {
            ds.push(Discrepancy {
                oracle: "optimizer-diff",
                detail: d,
            });
        }
    }
}

/// Compressed-domain kernel vs forced fallback vs a plain Filter, for
/// every base-schema predicate. Scans preserve row order, so the
/// comparison is exact.
pub fn kernel_diff(spec: &CaseSpec, table: &Arc<Table>, ds: &mut Vec<Discrepancy>) {
    for (i, pred) in base_preds(spec).iter().enumerate() {
        let expr = pred.expr();
        let reference = rows_of(Box::new(Filter::new(
            Box::new(TableScan::new(table.clone())),
            expr.clone(),
        )));
        let kernel = rows_of(Box::new(
            TableScan::new(table.clone()).with_pushed(expr.clone(), false),
        ));
        let fallback = rows_of(Box::new(
            TableScan::new(table.clone()).with_pushed(expr.clone(), true),
        ));
        if let Some(d) = diff("kernel", &kernel, "filter", &reference) {
            ds.push(Discrepancy {
                oracle: "kernel-diff",
                detail: format!("pred #{i}: {d}"),
            });
        }
        if let Some(d) = diff("forced-fallback", &fallback, "filter", &reference) {
            ds.push(Discrepancy {
                oracle: "kernel-diff",
                detail: format!("pred #{i}: {d}"),
            });
        }
    }
}

static PAGED_SEQ: AtomicU64 = AtomicU64::new(0);

/// Paged v2 storage vs the eager in-memory table: save, open, run the
/// full plan; re-open and run it again (buffer pool warm/cold paths).
pub fn paged_diff(spec: &CaseSpec, table: &Arc<Table>, ds: &mut Vec<Discrepancy>) {
    let dir = std::env::temp_dir().join("tde-fuzz");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        ds.push(Discrepancy {
            oracle: "paged-diff",
            detail: format!("temp dir: {e}"),
        });
        return;
    }
    let path = dir.join(format!(
        "case_{}_{}_{}.tde2",
        std::process::id(),
        spec.seed,
        PAGED_SEQ.fetch_add(1, AtomicOrdering::Relaxed)
    ));
    let mut db = Database::new();
    db.add_table((**table).clone());
    let result = (|| -> Result<(), String> {
        tde_pager::save_v2(&db, &path).map_err(|e| format!("save_v2: {e}"))?;
        let eager = canon(spec.apply_plan(Query::scan(table)).rows());
        for attempt in 0..2 {
            let paged = tde_pager::PagedDatabase::open(&path).map_err(|e| format!("open: {e}"))?;
            let pt = paged
                .table("t")
                .ok_or_else(|| "table missing from v2 file".to_string())?;
            // Run twice against one pool: a cold pass and a warm pass.
            for pass in 0..2 {
                let lazy = canon(spec.apply_plan(Query::scan_paged(&pt)).rows());
                if let Some(d) = diff("paged-v2", &lazy, "eager-v1", &eager) {
                    return Err(format!("open #{attempt} pass #{pass}: {d}"));
                }
            }
        }
        Ok(())
    })();
    std::fs::remove_file(&path).ok();
    if let Err(detail) = result {
        ds.push(Discrepancy {
            oracle: "paged-diff",
            detail,
        });
    }
}

/// Segment-byte checksum self-test: save the case's table as v2, flip one
/// seed-derived byte inside the injected column's on-disk stream extent,
/// and demand-load that column. The per-segment checksum must refuse the
/// corrupt bytes with a `ChecksumMismatch` — that refusal is the "caught"
/// discrepancy. A silent load, or corrupt bytes surfacing as anything
/// other than a checksum error (a decoder saw them), leaves the report
/// clean and the sweep counts the injection as missed.
pub fn segment_byte_corruption(spec: &CaseSpec, table: &Arc<Table>, ds: &mut Vec<Discrepancy>) {
    let Some(inj) = spec.inject else { return };
    let col_name = spec.columns[inj.column].name.clone();
    let dir = std::env::temp_dir().join("tde-fuzz");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        ds.push(Discrepancy {
            oracle: "segment-byte",
            detail: format!("infrastructure: temp dir: {e}"),
        });
        return;
    }
    let path = dir.join(format!(
        "inject_{}_{}_{}.tde2",
        std::process::id(),
        spec.seed,
        PAGED_SEQ.fetch_add(1, AtomicOrdering::Relaxed)
    ));
    let mut db = Database::new();
    db.add_table((**table).clone());
    let result = (|| -> Result<Option<Discrepancy>, String> {
        tde_pager::save_v2(&db, &path).map_err(|e| format!("save_v2: {e}"))?;

        // Locate the injected column's stream extent via the directory.
        let paged = tde_pager::PagedDatabase::open(&path).map_err(|e| format!("open: {e}"))?;
        let pt = paged
            .table("t")
            .ok_or_else(|| "table missing from v2 file".to_string())?;
        let extent = pt
            .column_dir(&col_name)
            .ok_or_else(|| format!("column {col_name} missing from directory"))?
            .stream;
        drop(pt);
        drop(paged);

        // Flip one byte: position and substitution both derive from the
        // seed, so a sweep exercises many offsets deterministically.
        let mut bytes = std::fs::read(&path).map_err(|e| format!("read: {e}"))?;
        let mix = (spec.seed ^ 0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .rotate_left(31);
        let at = (extent.offset + mix % extent.len.max(1)) as usize;
        let xor = ((mix >> 33) % 255) as u8 + 1; // never 0: always a real flip
        bytes[at] ^= xor;
        std::fs::write(&path, &bytes).map_err(|e| format!("rewrite: {e}"))?;

        // Demand-load the corrupted column through a fresh pool.
        let paged = tde_pager::PagedDatabase::open(&path)
            .map_err(|e| format!("reopen after corruption: {e}"))?;
        let pt = paged
            .table("t")
            .ok_or_else(|| "table missing after corruption".to_string())?;
        match pt.column(&col_name) {
            Err(e) if tde_io::is_checksum_mismatch(&e) => Ok(Some(Discrepancy {
                oracle: "segment-byte",
                detail: format!(
                    "checksum refused corrupt segment (column {col_name}, byte {at} ^ {xor:#04x}): {e}"
                ),
            })),
            // Silent success or a non-checksum error both mean the corrupt
            // bytes got past the checksum — the sweep records a miss.
            Ok(_) | Err(_) => Ok(None),
        }
    })();
    std::fs::remove_file(&path).ok();
    match result {
        Ok(Some(d)) => ds.push(d),
        Ok(None) => {}
        Err(detail) => ds.push(Discrepancy {
            oracle: "segment-byte",
            detail: format!("infrastructure: {detail}"),
        }),
    }
}

fn filter_block(schema: &Schema, expr: &Expr, b: Block) -> Block {
    let mut ch = ComputeHeap::new();
    let sel = eval(expr, schema, &b, &mut Some(&mut ch));
    let keep: Vec<bool> = sel.data.iter().map(|&v| v != 0).collect();
    let mut b = b;
    b.filter(&keep);
    b
}

/// Parallel execution vs serial: exchange routing in both modes over a
/// per-block filter, and the §8 parallel indexed rollup when the case has
/// an eligible (sorted, run-length) column.
pub fn parallel_diff(spec: &CaseSpec, table: &Arc<Table>, ds: &mut Vec<Discrepancy>) {
    if let Some(pred) = base_preds(spec).first() {
        let expr = pred.expr();
        let serial = rows_of(Box::new(Filter::new(
            Box::new(TableScan::new(table.clone())),
            expr.clone(),
        )));
        let scan_schema = TableScan::new(table.clone()).schema().clone();
        let f: BlockFn = {
            let schema = scan_schema.clone();
            let expr = expr.clone();
            Arc::new(move |b| filter_block(&schema, &expr, b))
        };
        let as_completed = rows_of(Box::new(Exchange::new(
            Box::new(TableScan::new(table.clone())),
            f.clone(),
            4,
            Routing::AsCompleted,
            scan_schema.clone(),
        )));
        if let Some(d) = diff(
            "exchange-as-completed",
            &canon(as_completed),
            "serial",
            &canon(serial.clone()),
        ) {
            ds.push(Discrepancy {
                oracle: "parallel-diff",
                detail: d,
            });
        }
        let ordered = rows_of(Box::new(Exchange::new(
            Box::new(TableScan::new(table.clone())),
            f,
            4,
            Routing::OrderPreserving,
            scan_schema,
        )));
        // Order-preserving routing guarantees the serial order exactly.
        if let Some(d) = diff("exchange-order-preserving", &ordered, "serial", &serial) {
            ds.push(Discrepancy {
                oracle: "parallel-diff",
                detail: d,
            });
        }
    }

    // §8 rollup: an RLE column whose values are sorted partitions by value.
    let eligible = table.columns.iter().position(|c| {
        c.dtype == DataType::Integer
            && matches!(c.compression, Compression::None)
            && c.data.algorithm() == Algorithm::RunLength
            && c.metadata.sorted_asc.is_true()
    });
    if let Some(ci) = eligible {
        let fetch_idx = table
            .columns
            .iter()
            .position(|c| c.dtype == DataType::Integer && c.name != table.columns[ci].name)
            .unwrap_or(ci);
        let fetch_name = table.columns[fetch_idx].name.clone();
        let (index, _) = tde_exec::index_table::index_table(&table.columns[ci], "idx");
        let aggs = vec![
            AggSpec::new(AggFunc::Count, 1, "n"),
            AggSpec::new(AggFunc::Max, 1, "mx"),
        ];
        let serial = canon(
            Query::scan(table)
                .aggregate(
                    vec![ci],
                    vec![
                        (AggFunc::Count, fetch_idx, "n"),
                        (AggFunc::Max, fetch_idx, "mx"),
                    ],
                )
                .with_optimizer(opts(false, false, false, false))
                .rows(),
        );
        let one = {
            let (schema, blocks) =
                parallel_indexed_aggregate(&index, table, &[&fetch_name], aggs.clone(), 1);
            let mut rows = Vec::new();
            for b in &blocks {
                extend_rows(&mut rows, &schema, b);
            }
            rows
        };
        let four = {
            let (schema, blocks) =
                parallel_indexed_aggregate(&index, table, &[&fetch_name], aggs, 4);
            let mut rows = Vec::new();
            for b in &blocks {
                extend_rows(&mut rows, &schema, b);
            }
            rows
        };
        // Partitions concatenate in value order: 1 vs 4 workers is exact.
        if let Some(d) = diff("rollup-4-workers", &four, "rollup-1-worker", &one) {
            ds.push(Discrepancy {
                oracle: "parallel-diff",
                detail: d,
            });
        }
        if let Some(d) = diff("rollup", &canon(one), "hash-aggregate", &serial) {
            ds.push(Discrepancy {
                oracle: "parallel-diff",
                detail: d,
            });
        }
    }
}

/// Morsel-driven parallel pipelines vs serial: the full plan at degrees
/// {2, 4, 8} must be **byte-identical** to the serial run — the same
/// blocks in the same order with the same values, and the same
/// output-schema metadata claims — not merely the same multiset. The
/// planner's serial fallbacks are part of the contract: a shape the
/// morsel executor cannot run whole must lower to the identical serial
/// pipeline, so this oracle applies to every generated plan.
pub fn morsel_parallel_diff(spec: &CaseSpec, table: &Arc<Table>, ds: &mut Vec<Discrepancy>) {
    let (serial_schema, serial_blocks) = spec.apply_plan(Query::scan(table)).run();
    for degree in [2usize, 4, 8] {
        let (schema, blocks) = spec
            .apply_plan(Query::scan(table))
            .with_parallelism(degree)
            .run();
        let mut push = |detail: String| {
            ds.push(Discrepancy {
                oracle: "morsel-parallel",
                detail: format!("degree {degree}: {detail}"),
            });
        };
        // Schema equality covers names, dtypes, reprs and every metadata
        // claim the parallel plan makes about its output.
        if format!("{serial_schema:?}") != format!("{schema:?}") {
            push(format!(
                "output schema diverged: serial {serial_schema:?} vs parallel {schema:?}"
            ));
            continue;
        }
        if blocks.len() != serial_blocks.len() {
            push(format!(
                "block count {} vs serial {}",
                blocks.len(),
                serial_blocks.len()
            ));
            continue;
        }
        for (i, (a, b)) in serial_blocks.iter().zip(&blocks).enumerate() {
            if a.len != b.len || a.columns != b.columns {
                push(format!("block {i} differs from serial"));
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Metamorphic oracles.
// ---------------------------------------------------------------------

/// Predicate partitioning over the row-level plan prefix. The engine's
/// predicates are two-valued (NULL comparisons evaluate false, `not`
/// negates the 0/1 result), so `σ[p] ⊎ σ[¬p]` is an *exact* partition,
/// and `¬p` splits exactly into its NULL and non-NULL legs — the
/// SQLancer TLP identity specialized to sentinel-NULL semantics. Grand
/// totals (`count`, wrapping `sum`) must agree with the partition.
pub fn tlp_partition(spec: &CaseSpec, table: &Arc<Table>, ds: &mut Vec<Discrepancy>) {
    let Some(p) = &spec.tlp else {
        return;
    };
    let prefix = spec.row_level_prefix();
    let run = |extra: Option<Expr>| -> Vec<Vec<Value>> {
        let mut q = Query::scan(table);
        if let Some(e) = extra {
            q = q.filter(e);
        }
        spec.apply_plan_ops(q, prefix).rows()
    };
    let whole = canon(run(None));
    let part_p = run(Some(p.expr()));
    let part_n = run(Some(Expr::Not(Box::new(p.expr()))));
    let mut both = part_p.clone();
    both.extend(part_n.iter().cloned());
    if let Some(d) = diff("σ[p] ⊎ σ[¬p]", &canon(both), "Q", &whole) {
        ds.push(Discrepancy {
            oracle: "tlp-partition",
            detail: d,
        });
    }
    // Three-way: split the ¬p leg on NULL-ness of a referenced column.
    let mut cols = Vec::new();
    p.referenced(&mut cols);
    if let Some(&c) = cols.first() {
        let isnull = || Expr::IsNull(Box::new(Expr::col(c)));
        let notp = || Expr::Not(Box::new(p.expr()));
        let leg2 = run(Some(Expr::And(
            Box::new(notp()),
            Box::new(Expr::Not(Box::new(isnull()))),
        )));
        let leg3 = run(Some(Expr::And(Box::new(notp()), Box::new(isnull()))));
        let mut all = part_p.clone();
        all.extend(leg2);
        all.extend(leg3);
        if let Some(d) = diff("three-way partition", &canon(all), "Q", &whole) {
            ds.push(Discrepancy {
                oracle: "tlp-partition",
                detail: d,
            });
        }
    }

    // Aggregate invariance of the partition: grand totals distribute.
    let int_col = spec.columns.iter().position(|c| c.dtype() == ColDtype::Int);
    let totals = |extra: Option<Expr>| -> (i64, i64) {
        let mut q = Query::scan(table);
        if let Some(e) = extra {
            q = q.filter(e);
        }
        let mut aggs = vec![(AggFunc::Count, 0, "n")];
        if let Some(c) = int_col {
            aggs.push((AggFunc::Sum, c, "s"));
        }
        let rows = q.aggregate(vec![], aggs).rows();
        // An empty input may surface as no row at all or as NULL cells
        // (`Sum` of nothing); both mean "adds nothing" here.
        let cell = |i: usize| -> i64 {
            match rows.first().and_then(|r| r.get(i)) {
                None | Some(Value::Null) => 0,
                Some(v) => v.as_i64().unwrap_or(0),
            }
        };
        (cell(0), cell(1))
    };
    let (n_all, s_all) = totals(None);
    let (n_p, s_p) = totals(Some(p.expr()));
    let (n_n, s_n) = totals(Some(Expr::Not(Box::new(p.expr()))));
    if n_p + n_n != n_all || s_p.wrapping_add(s_n) != s_all {
        ds.push(Discrepancy {
            oracle: "tlp-partition",
            detail: format!(
                "grand totals do not distribute: count {n_p}+{n_n} vs {n_all}, \
                 sum {s_p}+{s_n} vs {s_all}"
            ),
        });
    }
}

/// Re-encoding invariance: the same logical data built under different
/// storage policies — and with RLE streams decomposed and rebuilt via
/// `tde-encodings::manipulate` — must run the full plan to the same
/// multiset.
pub fn reencode_invariance(spec: &CaseSpec, table: &Arc<Table>, ds: &mut Vec<Discrepancy>) {
    let reference = canon(spec.apply_plan(Query::scan(table)).rows());
    let mut variants = vec![Policy::NoSortHeaps, Policy::NoConvert, Policy::InnerSide];
    if spec.columns.iter().all(|c| c.dtype() == ColDtype::Int) {
        // An unaccelerated heap assigns duplicate tokens and legitimately
        // changes string group identities; baseline stays integer-only.
        variants.push(Policy::Baseline);
    }
    for v in variants {
        let t2 = spec.build_table_with(Some(v));
        let got = canon(spec.apply_plan(Query::scan(&t2)).rows());
        if let Some(d) = diff(v.name(), &got, "spec-policies", &reference) {
            ds.push(Discrepancy {
                oracle: "reencode",
                detail: d,
            });
        }
    }

    // RLE decomposition route (§3.4.3 last paragraph): values+counts out,
    // stream back in — byte layout changes, decode must not.
    let mut t2 = spec.build_raw(None);
    let mut touched = false;
    for col in &mut t2.columns {
        if matches!(col.compression, Compression::None)
            && col.data.algorithm() == Algorithm::RunLength
        {
            let before = col.data.decode_all();
            let (values, counts) = manipulate::rle_decompose(&col.data);
            let rebuilt = manipulate::rle_rebuild(&values, &counts, true);
            if rebuilt.decode_all() != before {
                ds.push(Discrepancy {
                    oracle: "reencode",
                    detail: format!("rle decompose/rebuild changed column {}", col.name),
                });
                return;
            }
            col.data = rebuilt;
            touched = true;
        }
    }
    if touched {
        let t2 = Arc::new(t2);
        let got = canon(spec.apply_plan(Query::scan(&t2)).rows());
        if let Some(d) = diff("rle-rebuilt", &got, "spec-policies", &reference) {
            ds.push(Discrepancy {
                oracle: "reencode",
                detail: d,
            });
        }
    }
}

// ---------------------------------------------------------------------
// Invariant oracle.
// ---------------------------------------------------------------------

/// Verify every metadata claim on the base table's columns against the
/// decoded data, then verify positive claims on the executed plan's
/// output schema against the materialized rows.
pub fn metadata_invariant(spec: &CaseSpec, table: &Arc<Table>, ds: &mut Vec<Discrepancy>) {
    for col in &table.columns {
        check_column_claims(col, ds);
    }

    // Output-schema claims. Subsetting rows preserves sortedness,
    // uniqueness, bounds and NULL-freedom, and the operators that create
    // new claims (Sort, joins) assert them — so every *positive* claim on
    // the output must hold on the materialized rows. Negative claims are
    // not checked: a filter can legitimately turn a known-unsorted input
    // into a sorted output.
    let report = spec.apply_plan(Query::scan(table)).explain_analyze();
    for (c, field) in report.schema.fields.iter().enumerate() {
        if !field.repr.is_scalar() || field.dtype == DataType::Real {
            continue;
        }
        let mut raws = Vec::new();
        for b in &report.blocks {
            raws.extend_from_slice(&b.columns[c][..b.len]);
        }
        let md = &field.metadata;
        let claim_fail = |what: &str| Discrepancy {
            oracle: "metadata-invariant",
            detail: format!("output column {} ({}): {what}", c, field.name),
        };
        if md.sorted_asc.is_true() && raws.windows(2).any(|w| w[1] < w[0]) {
            ds.push(claim_fail("claimed sorted_asc, rows descend"));
        }
        if md.unique.is_true() && has_duplicates(&raws) {
            ds.push(claim_fail("claimed unique, rows repeat"));
        }
        if let Some(min) = md.min {
            if raws.iter().any(|&v| v < min) {
                ds.push(claim_fail("value below claimed min"));
            }
        }
        if let Some(max) = md.max {
            if raws.iter().any(|&v| v > max) {
                ds.push(claim_fail("value above claimed max"));
            }
        }
        if md.has_nulls == tde_encodings::metadata::Knowledge::False && raws.contains(&NULL_I64) {
            ds.push(claim_fail("claimed NULL-free, sentinel present"));
        }
    }
}

fn has_duplicates(vals: &[i64]) -> bool {
    let mut seen = std::collections::HashSet::with_capacity(vals.len());
    vals.iter().any(|v| !seen.insert(*v))
}

/// The sequence a column's claims describe: stored values for scalars,
/// dictionary-resolved values for array compression, tokens for heaps.
fn claim_domain(col: &Column) -> Vec<i64> {
    let raw = col.data.decode_all();
    match &col.compression {
        Compression::Array { dictionary, .. } => {
            raw.into_iter().map(|i| dictionary[i as usize]).collect()
        }
        _ => raw,
    }
}

fn check_column_claims(col: &Column, ds: &mut Vec<Discrepancy>) {
    use tde_encodings::metadata::Knowledge;
    if col.dtype == DataType::Real {
        return; // Real metadata is reset to unknown by the builder.
    }
    let vals = claim_domain(col);
    let is_heap = matches!(col.compression, Compression::Heap { .. });
    let null_of = |v: i64| {
        if is_heap {
            v == NULL_TOKEN as i64
        } else {
            v == NULL_I64
        }
    };
    let md = &col.metadata;
    let fail = |what: String| Discrepancy {
        oracle: "metadata-invariant",
        detail: format!("column {}: {what}", col.name),
    };

    // Descent is a plain comparison: a NULL sentinel (i64::MIN) after a
    // value is a real descent even though the delta overflows. Overflow
    // only excuses the *negative* claim, whose statistics are delta-based.
    let descends = vals.windows(2).any(|w| w[1] < w[0]);
    let delta_overflow = vals.windows(2).any(|w| w[1].checked_sub(w[0]).is_none());
    match md.sorted_asc {
        Knowledge::True if descends => ds.push(fail("claimed sorted_asc, data descends".into())),
        // Delta overflow makes the statistics conservatively claim
        // unsorted even for ascending data — that imprecision is allowed.
        Knowledge::False if !descends && !delta_overflow && vals.len() >= 2 => {
            ds.push(fail("claimed not sorted, data never descends".into()))
        }
        _ => {}
    }

    let dense = !vals.is_empty() && vals.windows(2).all(|w| w[1].checked_sub(w[0]) == Some(1));
    match md.dense {
        Knowledge::True if !dense => ds.push(fail("claimed dense, data is not".into())),
        Knowledge::False if dense && vals.len() >= 2 => {
            ds.push(fail("claimed not dense, data is a unit progression".into()))
        }
        _ => {}
    }

    let dups = has_duplicates(&vals);
    match md.unique {
        Knowledge::True if dups => ds.push(fail("claimed unique, data repeats".into())),
        Knowledge::False if !dups => ds.push(fail("claimed duplicated, data is unique".into())),
        _ => {}
    }

    if let Some(min) = md.min {
        if vals.iter().any(|&v| v < min) {
            ds.push(fail(format!("value below claimed min {min}")));
        }
    }
    if let Some(max) = md.max {
        if vals.iter().any(|&v| v > max) {
            ds.push(fail(format!("value above claimed max {max}")));
        }
    }

    if let Some(card) = md.cardinality {
        let distinct: std::collections::HashSet<i64> = vals.iter().copied().collect();
        let nonnull = vals
            .iter()
            .filter(|&&v| !null_of(v))
            .collect::<std::collections::HashSet<_>>()
            .len() as u64;
        // The accelerator counts heap entries (NULL has no entry); the
        // statistics count distinct stored values (NULL included). Either
        // is a valid claim.
        if card != distinct.len() as u64 && card != nonnull {
            ds.push(fail(format!(
                "claimed cardinality {card}, observed {} ({} non-null)",
                distinct.len(),
                nonnull
            )));
        }
    }

    let nulls = vals.iter().copied().any(null_of);
    match md.has_nulls {
        Knowledge::True if !nulls => ds.push(fail("claimed NULLs, none present".into())),
        Knowledge::False if nulls => ds.push(fail("claimed NULL-free, NULLs present".into())),
        _ => {}
    }

    if let Compression::Heap { heap, sorted } = &col.compression {
        if (md.sorted_heap_tokens.is_true() || *sorted) && !heap.is_sorted(Collation::Binary) {
            ds.push(fail("claimed sorted heap, heap is unsorted".into()));
        }
    }
    if let Compression::Array { dictionary, sorted } = &col.compression {
        if *sorted && dictionary.windows(2).any(|w| w[1] < w[0]) {
            ds.push(fail("claimed sorted dictionary, entries descend".into()));
        }
    }
}

//! Physical lowering: logical plans → executable operator trees.
//!
//! This is where the tactical hand-off happens (paper §4.1.2): inner
//! sides of decompression joins are materialized with FlowTable *first*,
//! under the inner-side encoding policy (§4.3), and only then are the
//! join implementation (fetch vs hash) and the aggregation flavour
//! (ordered vs hash) chosen — from the metadata FlowTable just extracted.

use crate::logical::{InnerOps, LogicalPlan};
use std::io;
use std::sync::Arc;
use tde_exec::aggregate::{AggSpec, HashAggregate, OrderedAggregate};
use tde_exec::dictionary_table::dictionary_table;
use tde_exec::filter::Filter;
use tde_exec::flow_table::{flow_table, FlowTableOptions};
use tde_exec::handle::ColumnHandle;
use tde_exec::index_table::index_table;
use tde_exec::indexed_scan::IndexedScan;
use tde_exec::join::{Join, JoinKind};
use tde_exec::obs::{Instrumented, Metered};
use tde_exec::project::Project;
use tde_exec::rle_agg::RunAggregate;
use tde_exec::scan::TableScan;
use tde_exec::sort::{Sort, SortOrder};
use tde_exec::{BoxOp, Expr, Field, Operator};
use tde_obs::{OpStats, Trace};
use tde_storage::EncodingPolicy;

/// Optional trace context threaded through lowering: which trace (if
/// any) to record into and which node is the parent of whatever operator
/// gets lowered next. `tl_parent` threads the always-on timeline's
/// operator-tree position independently of the opt-in trace.
#[derive(Clone, Copy)]
struct Tracer<'a> {
    trace: Option<&'a Arc<Trace>>,
    parent: Option<usize>,
    tl_parent: Option<u32>,
}

impl<'a> Tracer<'a> {
    fn off() -> Tracer<'a> {
        Tracer {
            trace: None,
            parent: None,
            tl_parent: None,
        }
    }

    /// Register an operator node under the current parent. A no-op
    /// trace handle when tracing is off; the operator kind (the label's
    /// first token) always feeds the per-operator metrics and, when the
    /// timeline layer is on, its operator spans.
    fn node(&self, label: impl Into<String>) -> NodeCtx<'a> {
        let label = label.into();
        let kind = kind_of(&label);
        let tl_id = tde_obs::timeline::enabled().then(tde_obs::timeline::next_op_id);
        match self.trace {
            None => NodeCtx {
                trace: None,
                id: None,
                stats: None,
                kind,
                tl_id,
                tl_parent: self.tl_parent,
            },
            Some(t) => {
                let (id, stats) = t.add_node(label, self.parent);
                NodeCtx {
                    trace: Some(t),
                    id: Some(id),
                    stats: Some(stats),
                    kind,
                    tl_id,
                    tl_parent: self.tl_parent,
                }
            }
        }
    }
}

/// The operator-kind metric label: the first whitespace-delimited token
/// of the node label (`"HashAggregate [strategy=…]"` → `"HashAggregate"`)
/// — stable and low-cardinality, unlike the full label.
fn kind_of(label: &str) -> String {
    label.split_whitespace().next().unwrap_or("op").to_owned()
}

/// A registered (or absent) trace node for one operator.
struct NodeCtx<'a> {
    trace: Option<&'a Arc<Trace>>,
    id: Option<usize>,
    stats: Option<Arc<OpStats>>,
    kind: String,
    tl_id: Option<u32>,
    tl_parent: Option<u32>,
}

impl<'a> NodeCtx<'a> {
    /// Tracer for this operator's children.
    fn child(&self) -> Tracer<'a> {
        Tracer {
            trace: self.trace,
            parent: self.id,
            tl_parent: self.tl_id,
        }
    }

    /// Refine the label once a run-time choice is known.
    fn relabel(&mut self, label: impl Into<String>) {
        let label = label.into();
        self.kind = kind_of(&label);
        if let (Some(t), Some(id)) = (self.trace, self.id) {
            t.set_label(id, label);
        }
    }

    /// Wrap the lowered operator in the instrumenting adapters: the
    /// always-on per-operator-kind metrics (skipped entirely when the
    /// registry is disabled), the always-on timeline operator span
    /// (likewise skipped when `TDE_TRACE` is off) and, under tracing,
    /// the per-query [`Instrumented`] stats.
    fn wrap(self, op: BoxOp) -> BoxOp {
        let counters = tde_obs::metrics::operator_counters(&self.kind);
        let timeline = self
            .tl_id
            .map(|id| tde_obs::timeline::TimelineOp::new(&self.kind, id, self.tl_parent));
        let op = if counters.is_some() || timeline.is_some() {
            Box::new(Metered::with_observers(op, counters, timeline)) as BoxOp
        } else {
            op
        };
        match self.stats {
            Some(stats) => Box::new(Instrumented::new(op, stats)),
            None => op,
        }
    }
}

/// Lower and instantiate a logical plan, surfacing I/O and corruption
/// faults (failed demand loads, checksum mismatches) as errors instead
/// of panicking. Planning bugs — a plan referencing a column its source
/// does not have — still panic: those are programmer errors, not
/// runtime faults.
pub fn try_execute(plan: &LogicalPlan) -> io::Result<BoxOp> {
    lower(plan, Tracer::off())
}

/// Lower and instantiate a logical plan.
///
/// Panics if lowering hits an I/O or corruption fault (e.g. a paged
/// scan whose segment read fails); use [`try_execute`] where such
/// faults must be handled.
pub fn execute(plan: &LogicalPlan) -> BoxOp {
    try_execute(plan).unwrap_or_else(|e| panic!("plan lowering failed: {e}"))
}

/// Fallible variant of [`execute_traced`]; see [`try_execute`].
pub fn try_execute_traced(plan: &LogicalPlan, trace: &Arc<Trace>) -> io::Result<BoxOp> {
    lower(
        plan,
        Tracer {
            trace: Some(trace),
            parent: None,
            tl_parent: None,
        },
    )
}

/// Lower a plan with every operator wrapped in an instrumenting adapter
/// recording into `trace`. Combine with [`tde_obs::install`] to also
/// capture the decision/re-encoding events fired during lowering and
/// execution.
pub fn execute_traced(plan: &LogicalPlan, trace: &Arc<Trace>) -> BoxOp {
    try_execute_traced(plan, trace).unwrap_or_else(|e| panic!("plan lowering failed: {e}"))
}

fn lower(plan: &LogicalPlan, tr: Tracer<'_>) -> io::Result<BoxOp> {
    match plan {
        LogicalPlan::Scan {
            table,
            columns,
            expand_dictionaries,
            predicate,
        } => {
            let label = format!(
                "Scan {} [{}]{}",
                table.name,
                columns.join(", "),
                if *expand_dictionaries {
                    " (expanded)"
                } else {
                    ""
                }
            );
            let mut node = tr.node(label.clone());
            let names: Vec<&str> = columns.iter().map(String::as_str).collect();
            let mut scan = TableScan::project(table.clone(), &names, *expand_dictionaries);
            if let Some(pred) = predicate {
                scan = scan.with_pushed(pred.clone(), false);
                if let Some(kernel) = scan.pushed_kernel() {
                    node.relabel(format!("{label} where [kernel={kernel}]"));
                }
            }
            Ok(node.wrap(Box::new(scan)))
        }
        LogicalPlan::PagedScan {
            table,
            columns,
            expand_dictionaries,
            predicate,
        } => {
            let label = format!(
                "PagedScan {} [{}]{}",
                table.name(),
                columns.join(", "),
                if *expand_dictionaries {
                    " (expanded)"
                } else {
                    ""
                }
            );
            let mut node = tr.node(label.clone());
            let names: Vec<&str> = columns.iter().map(String::as_str).collect();
            // Demand loads happen here: a failed or corrupt segment read
            // surfaces as an error, never as corrupt decoded data.
            let mut scan = TableScan::paged(table, &names, *expand_dictionaries)?;
            if let Some(pred) = predicate {
                scan = scan.with_pushed(pred.clone(), false);
                if let Some(kernel) = scan.pushed_kernel() {
                    node.relabel(format!("{label} where [kernel={kernel}]"));
                }
            }
            Ok(node.wrap(Box::new(scan)))
        }
        LogicalPlan::MergedScan {
            source,
            columns,
            expand_dictionaries,
            predicate,
        } => {
            let label = format!(
                "MergedScan {} [{}] (+{} delta, -{} tombstone){}",
                source.name(),
                columns.join(", "),
                source.delta_rows(),
                source.tombstone_count(),
                if *expand_dictionaries {
                    " (expanded)"
                } else {
                    ""
                }
            );
            let mut node = tr.node(label.clone());
            let cols: Vec<usize> = columns
                .iter()
                .map(|n| {
                    source
                        .index_of(n)
                        .unwrap_or_else(|| panic!("no column {n:?} in merged source"))
                })
                .collect();
            let mut scan = tde_exec::merged_scan::MergedScan::new(
                Arc::clone(source),
                cols,
                *expand_dictionaries,
            );
            if let Some(pred) = predicate {
                scan = scan.with_pushed(pred.clone(), false);
            }
            node.relabel(format!("{label} [mode={}]", scan.merge_mode()));
            Ok(node.wrap(Box::new(scan)))
        }
        LogicalPlan::Filter { input, predicate } => {
            let node = tr.node("Filter");
            let input = lower(input, node.child())?;
            Ok(node.wrap(Box::new(Filter::new(input, predicate.clone()))))
        }
        LogicalPlan::Project { input, exprs } => {
            let names: Vec<&str> = exprs.iter().map(|(n, _)| n.as_str()).collect();
            let node = tr.node(format!("Project [{}]", names.join(", ")));
            let input = lower(input, node.child())?;
            Ok(node.wrap(Box::new(Project::new(input, exprs.clone()))))
        }
        LogicalPlan::Sort { input, keys } => {
            let node = tr.node(format!("Sort {keys:?}"));
            let input = lower(input, node.child())?;
            Ok(node.wrap(Box::new(Sort::new(input, keys.clone()))))
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => lower_aggregate(input, group_by, aggs, tr),
        LogicalPlan::Morsel { input, degree } => lower_morsel(input, *degree, tr),
        LogicalPlan::ExpandJoin {
            outer,
            column,
            source,
            inner,
        } => lower_expand_join(outer, *column, source, inner, tr),
        LogicalPlan::IndexScan {
            source,
            inner,
            sort_by_value,
            fetch,
        } => lower_index_scan(source, inner, *sort_by_value, fetch, tr),
    }
}

/// Tactical choice: ordered aggregation when the (single) group key is
/// known sorted, hash aggregation otherwise (§4.2.2).
fn lower_aggregate(
    input_plan: &LogicalPlan,
    group_by: &[usize],
    aggs: &[AggSpec],
    tr: Tracer<'_>,
) -> io::Result<BoxOp> {
    if group_by.is_empty() {
        if let Some(op) = lower_run_aggregate(input_plan, aggs, tr) {
            return Ok(op);
        }
    }
    let mut node = tr.node("Aggregate");
    let input = lower(input_plan, node.child())?;
    let ordered = group_by.len() == 1 && {
        let keys: Vec<&Field> = group_by
            .iter()
            .map(|&c| &input.schema().fields[c])
            .collect();
        tde_exec::tactical::can_aggregate_ordered(&keys)
    };
    if ordered {
        node.relabel(format!("OrderedAggregate group_by={group_by:?}"));
        Ok(node.wrap(Box::new(OrderedAggregate::new(
            input,
            group_by.to_vec(),
            aggs.to_vec(),
        ))))
    } else {
        let agg = HashAggregate::new(input, group_by.to_vec(), aggs.to_vec());
        node.relabel(format!(
            "HashAggregate [strategy={:?}] group_by={group_by:?}",
            agg.strategy
        ));
        Ok(node.wrap(Box::new(agg)))
    }
}

/// Lower a morsel-parallel pipeline (§3.3/§8 generalized). The strategic
/// optimizer wrapped an eligible shape; this makes the tactical call:
/// decompose the pipeline into (ranged scan source, composed predicate,
/// optional aggregate), require merge-exact aggregates and enough
/// morsels to occupy the workers, and fall back to the serial lowering
/// — with a decision event either way — when it declines.
fn lower_morsel(input_plan: &LogicalPlan, degree: usize, tr: Tracer<'_>) -> io::Result<BoxOp> {
    match build_morsel(input_plan, degree) {
        Ok((exec, what)) => {
            tde_obs::metrics::decision("parallelism", "morsel-parallel");
            tde_obs::emit(|| tde_obs::Event::Decision {
                point: "parallelism",
                choice: format!("morsel-parallel(degree={})", exec.degree()),
                reason: format!(
                    "{} morsel(s) across {} workers, deterministic merge",
                    exec.morsel_count(),
                    exec.degree()
                ),
            });
            let node = tr.node(format!(
                "Morsel{what} [parallel={}] morsels={}",
                exec.degree(),
                exec.morsel_count()
            ));
            Ok(node.wrap(Box::new(exec)))
        }
        Err(reason) => {
            tde_obs::metrics::decision("parallelism", "serial");
            tde_obs::emit(|| tde_obs::Event::Decision {
                point: "parallelism",
                choice: "serial".to_string(),
                reason: reason.clone(),
            });
            lower(input_plan, tr)
        }
    }
}

/// Decompose a morsel-eligible pipeline and build its executor, or
/// explain (in the `Err`) why it must stay serial.
fn build_morsel(
    input_plan: &LogicalPlan,
    degree: usize,
) -> Result<(tde_exec::morsel::MorselExec, &'static str), String> {
    use tde_exec::morsel::{merge_safe, MorselExec, MorselPipeline, MorselSource};

    fn scan_parts(plan: &LogicalPlan) -> Result<(MorselSource, Option<Expr>), String> {
        match plan {
            LogicalPlan::Scan {
                table,
                columns,
                expand_dictionaries,
                predicate,
            } => {
                let handles = columns
                    .iter()
                    .map(|n| {
                        table
                            .column_index(n)
                            .map(|idx| ColumnHandle::Shared {
                                table: table.clone(),
                                idx,
                            })
                            .ok_or_else(|| format!("no column {n:?} in table"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok((
                    MorselSource::Table {
                        handles,
                        expand: *expand_dictionaries,
                    },
                    predicate.clone(),
                ))
            }
            LogicalPlan::PagedScan {
                table,
                columns,
                expand_dictionaries,
                predicate,
            } => {
                let handles = columns
                    .iter()
                    .map(|n| {
                        table
                            .column(n)
                            .map(ColumnHandle::Owned)
                            .map_err(|e| format!("paged column {n:?}: {e}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok((
                    MorselSource::Table {
                        handles,
                        expand: *expand_dictionaries,
                    },
                    predicate.clone(),
                ))
            }
            LogicalPlan::MergedScan {
                source,
                columns,
                expand_dictionaries,
                predicate,
            } => {
                let cols = columns
                    .iter()
                    .map(|n| {
                        source
                            .index_of(n)
                            .ok_or_else(|| format!("no column {n:?} in merged source"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok((
                    MorselSource::Merged {
                        source: Arc::clone(source),
                        columns: cols,
                        expand: *expand_dictionaries,
                    },
                    predicate.clone(),
                ))
            }
            _ => Err("pipeline does not bottom out in a rangeable scan".to_string()),
        }
    }

    // A residual filter composes with any predicate the kernel-pushdown
    // rewrite already folded into the scan: conjunction over the same
    // source schema, evaluated per block — row-identical to the stacked
    // Filter operator (which also drops fully-filtered blocks).
    let and = |prior: Option<Expr>, p: &Expr| match prior {
        Some(q) => Expr::And(Box::new(q), Box::new(p.clone())),
        None => p.clone(),
    };
    let (source, predicate, agg) = match input_plan {
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let (source, predicate) = match input.as_ref() {
                LogicalPlan::Filter {
                    input,
                    predicate: p,
                } => {
                    let (s, prior) = scan_parts(input)?;
                    (s, Some(and(prior, p)))
                }
                p => scan_parts(p)?,
            };
            (source, predicate, Some((group_by.clone(), aggs.clone())))
        }
        LogicalPlan::Filter {
            input,
            predicate: p,
        } => {
            let (s, prior) = scan_parts(input)?;
            (s, Some(and(prior, p)), None)
        }
        p => {
            let (s, predicate) = scan_parts(p)?;
            (s, predicate, None)
        }
    };
    // Probe run: resolves the source schema and the morsel count without
    // committing to a pipeline.
    let probe = MorselExec::new(source.clone(), None, MorselPipeline::Emit, 1);
    if probe.morsel_count() < 2 {
        return Err(format!(
            "{} morsel(s): nothing to spread across workers",
            probe.morsel_count()
        ));
    }
    let (pipeline, what) = match agg {
        None => (MorselPipeline::Emit, "Scan"),
        Some((group_cols, aggs)) => {
            if !merge_safe(probe.source_schema(), &aggs) {
                return Err(
                    "Sum over a Real column is order-dependent; partials do not merge exactly"
                        .to_string(),
                );
            }
            // The same tactical test the serial lowering applies: ordered
            // (sandwiched) aggregation when the single group key is known
            // sorted, hash aggregation otherwise (§4.2.2).
            let keys: Vec<&Field> = group_cols
                .iter()
                .map(|&c| &probe.source_schema().fields[c])
                .collect();
            if group_cols.len() == 1 && tde_exec::tactical::can_aggregate_ordered(&keys) {
                (
                    MorselPipeline::OrderedAgg { group_cols, aggs },
                    "OrderedAggregate",
                )
            } else {
                (
                    MorselPipeline::HashAgg { group_cols, aggs },
                    "HashAggregate",
                )
            }
        }
    };
    Ok((
        MorselExec::new(source, predicate.map(|p| (p, false)), pipeline, degree),
        what,
    ))
}

/// Tactical choice for a grand total over a single run-length column:
/// fold per run instead of expanding rows (§3.3 applied to aggregation).
/// Declines (returning `None`) unless the scan shape and the column's
/// encoding qualify — see [`RunAggregate::try_new`].
fn lower_run_aggregate(
    input_plan: &LogicalPlan,
    aggs: &[AggSpec],
    tr: Tracer<'_>,
) -> Option<BoxOp> {
    let (handle, predicate) = match input_plan {
        LogicalPlan::Scan {
            table,
            columns,
            expand_dictionaries: false,
            predicate,
        } if columns.len() == 1 => {
            let idx = table.column_index(&columns[0])?;
            (
                ColumnHandle::Shared {
                    table: table.clone(),
                    idx,
                },
                predicate.as_ref(),
            )
        }
        LogicalPlan::PagedScan {
            table,
            columns,
            expand_dictionaries: false,
            predicate,
        } if columns.len() == 1 => {
            let col = table.column(&columns[0]).ok()?;
            (ColumnHandle::Owned(col), predicate.as_ref())
        }
        _ => return None,
    };
    let agg = RunAggregate::try_new(handle, predicate, aggs)?;
    tde_obs::metrics::decision("aggregate", "rle-run-aggregate");
    tde_obs::emit(|| tde_obs::Event::Decision {
        point: "aggregate",
        choice: "rle-run-aggregate".to_string(),
        reason: "grand total over a run-length column folds per run".to_string(),
    });
    let node = tr.node("RunAggregate");
    Some(node.wrap(Box::new(agg)))
}

fn apply_inner_ops(mut op: BoxOp, inner: &InnerOps, keep_cols: &[&str]) -> BoxOp {
    if let Some(pred) = &inner.filter {
        op = Box::new(Filter::new(op, pred.clone()));
    }
    if let Some((name, expr)) = &inner.compute {
        // Keep the structural columns, replace/append the computed value.
        let schema = op.schema().clone();
        let mut exprs: Vec<(String, Expr)> = keep_cols
            .iter()
            .filter_map(|n| schema.index_of(n).map(|i| ((*n).to_owned(), Expr::col(i))))
            .collect();
        exprs.push((name.clone(), expr.clone()));
        op = Box::new(Project::new(op, exprs));
    }
    op
}

fn lower_expand_join(
    outer_plan: &LogicalPlan,
    column: usize,
    source: &(Arc<tde_storage::Table>, usize),
    inner: &InnerOps,
    tr: Tracer<'_>,
) -> io::Result<BoxOp> {
    let src_col = &source.0.columns[source.1];
    let mut node = tr.node(format!("ExpandJoin {}.{}", source.0.name, src_col.name));
    let outer = lower(outer_plan, node.child())?;
    let (dict, _) = dictionary_table(src_col, &format!("{}_dict", src_col.name));
    // Inner pipeline over the dictionary, then materialize with FlowTable
    // under the inner-side policy (§4.3) so metadata is extracted and the
    // join can go tactical.
    let inner_op = apply_inner_ops(Box::new(TableScan::new(dict)), inner, &["token", "value"]);
    let built = flow_table(
        inner_op,
        "expand_inner",
        FlowTableOptions {
            policy: EncodingPolicy::inner_side(),
            parallel: true,
        },
    );
    let inner_table = built.table;
    let inner_schema = TableScan::new(inner_table.clone()).schema().clone();
    let token_idx = inner_schema
        .index_of("token")
        .expect("token column preserved");
    // Project the expanded value: the `value` column for scalar
    // dictionaries, the computed column when present, or nothing (pure
    // semi-join filter) for plain string dictionaries.
    let value_idx = inner
        .compute
        .as_ref()
        .and_then(|(n, _)| inner_schema.index_of(n))
        .or_else(|| inner_schema.index_of("value"));
    let project: Vec<usize> = value_idx.into_iter().collect();

    let nouter = outer.schema().len();
    let out_names: Vec<String> = outer
        .schema()
        .fields
        .iter()
        .map(|f| f.name.clone())
        .collect();
    let join = Join::new(
        outer,
        &inner_table,
        &inner_schema,
        column,
        token_idx,
        &project,
        JoinKind::Inner,
    );
    node.relabel(format!(
        "ExpandJoin {}.{} [{:?}]",
        source.0.name, src_col.name, join.choice
    ));
    if value_idx.is_none() {
        // Semi-join: schema unchanged.
        return Ok(node.wrap(Box::new(join)));
    }
    // Splice the expanded value into the compressed column's position.
    let exprs: Vec<(String, Expr)> = (0..nouter)
        .map(|i| {
            if i == column {
                let name = inner
                    .compute
                    .as_ref()
                    .map(|(n, _)| n.clone())
                    .unwrap_or_else(|| out_names[i].clone());
                (name, Expr::col(nouter))
            } else {
                (out_names[i].clone(), Expr::col(i))
            }
        })
        .collect();
    Ok(node.wrap(Box::new(Project::new(Box::new(join), exprs))))
}

fn lower_index_scan(
    source: &(Arc<tde_storage::Table>, usize),
    inner: &InnerOps,
    sort_by_value: bool,
    fetch: &[String],
    tr: Tracer<'_>,
) -> io::Result<BoxOp> {
    let src_col = &source.0.columns[source.1];
    let node = tr.node(format!(
        "IndexedScan {}.{} fetch=[{}]{}",
        source.0.name,
        src_col.name,
        fetch.join(", "),
        if sort_by_value { " ordered" } else { "" }
    ));
    let (idx, _) = index_table(src_col, &format!("{}_index", src_col.name));
    let mut inner_op: BoxOp =
        apply_inner_ops(Box::new(TableScan::new(idx)), inner, &["count", "start"]);
    if sort_by_value {
        // Value is whatever column isn't count/start; after inner ops it
        // sits wherever the projection put it — find it by exclusion.
        let schema = inner_op.schema();
        let vcol = (0..schema.len())
            .find(|&i| {
                let n = &schema.fields[i].name;
                n != "count" && n != "start"
            })
            .expect("index inner keeps a value column");
        inner_op = Box::new(Sort::new(inner_op, vec![(vcol, SortOrder::Asc)]));
    }
    let fetch_refs: Vec<&str> = fetch.iter().map(String::as_str).collect();
    Ok(node.wrap(Box::new(IndexedScan::new(
        inner_op,
        source.0.clone(),
        &fetch_refs,
    ))))
}

/// Run a plan to completion, returning every block (convenience for tests
/// and examples).
///
/// Panics on I/O or corruption faults; see [`try_run`].
pub fn run(plan: &LogicalPlan) -> (tde_exec::Schema, Vec<tde_exec::Block>) {
    try_run(plan).unwrap_or_else(|e| panic!("query execution failed: {e}"))
}

/// Run a plan to completion, surfacing lowering-time I/O and corruption
/// faults (failed segment reads, checksum mismatches) as errors.
pub fn try_run(plan: &LogicalPlan) -> io::Result<(tde_exec::Schema, Vec<tde_exec::Block>)> {
    let mut op = try_execute(plan)?;
    let schema = op.schema().clone();
    let mut blocks = Vec::new();
    while let Some(b) = op.next_block() {
        blocks.push(b);
    }
    Ok((schema, blocks))
}

/// Run a plan with instrumentation, recording per-operator counters into
/// `trace` (see [`execute_traced`]).
pub fn run_traced(
    plan: &LogicalPlan,
    trace: &Arc<Trace>,
) -> (tde_exec::Schema, Vec<tde_exec::Block>) {
    let mut op = execute_traced(plan, trace);
    let schema = op.schema().clone();
    let mut blocks = Vec::new();
    while let Some(b) = op.next_block() {
        blocks.push(b);
    }
    (schema, blocks)
}

/// Render the result of a plan as rows of display strings (examples).
pub fn run_to_strings(plan: &LogicalPlan) -> Vec<Vec<String>> {
    let (schema, blocks) = run(plan);
    let mut rows = Vec::new();
    for b in &blocks {
        for r in 0..b.len {
            rows.push(
                (0..schema.len())
                    .map(|c| schema.fields[c].value_of(b.columns[c][r]).to_string())
                    .collect(),
            );
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::PlanBuilder;
    use crate::strategic::{optimize, OptimizerOptions};
    use std::collections::HashMap;
    use std::sync::Arc;
    use tde_encodings::{EncodedStream, BLOCK_SIZE};
    use tde_exec::expr::{AggFunc, CmpOp, Func};
    use tde_storage::{convert, Column, ColumnBuilder, Table};
    use tde_types::{DataType, Width};

    fn rle_table(rows: i64, domain: i64) -> Arc<Table> {
        let per = rows / domain;
        let mut key_data = Vec::new();
        let mut other_data = Vec::new();
        for v in 0..domain {
            for j in 0..per {
                key_data.push(v);
                other_data.push((v * 37 + j) % 1000);
            }
        }
        let mut key = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W2);
        for c in key_data.chunks(BLOCK_SIZE) {
            key.append_block(c).unwrap();
        }
        let other = tde_encodings::dynamic::encode_all(&other_data, Width::W8, true).stream;
        Arc::new(Table::new(
            "t",
            vec![
                Column::scalar("k", DataType::Integer, key),
                Column::scalar("o", DataType::Integer, other),
            ],
        ))
    }

    fn agg_results(plan: &LogicalPlan) -> HashMap<i64, i64> {
        let (_, blocks) = run(plan);
        let mut m = HashMap::new();
        for b in &blocks {
            for r in 0..b.len {
                m.insert(b.columns[0][r], b.columns[1][r]);
            }
        }
        m
    }

    /// The paper's Fig 10 query under all three plans must agree.
    #[test]
    fn three_plans_agree_on_fig10_query() {
        let t = rle_table(100_000, 100);
        let query = |t: &Arc<Table>| {
            PlanBuilder::scan(t)
                .filter(Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(100 - 30)))
                .aggregate(vec![0], vec![AggSpec::new(AggFunc::Max, 1, "mx")])
                .build()
        };
        // Plan 1: control (no rewrites).
        let p1 = optimize(
            query(&t),
            OptimizerOptions {
                invisible_joins: false,
                index_tables: false,
                ordered_retrieval: false,
                kernel_pushdown: false,
                parallelism: 1,
            },
        );
        // Plan 2: indexed scan, hash aggregation.
        let p2 = optimize(
            query(&t),
            OptimizerOptions {
                ordered_retrieval: false,
                kernel_pushdown: false,
                ..Default::default()
            },
        );
        // Plan 3: indexed scan, sorted, ordered aggregation.
        let p3 = optimize(query(&t), OptimizerOptions::default());
        let (r1, r2, r3) = (agg_results(&p1), agg_results(&p2), agg_results(&p3));
        assert_eq!(r1.len(), 29);
        assert_eq!(r1, r2);
        assert_eq!(r1, r3);
    }

    #[test]
    fn ordered_plan_uses_ordered_aggregate() {
        let t = rle_table(50_000, 50);
        let plan = PlanBuilder::scan(&t)
            .filter(Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(25)))
            .aggregate(vec![0], vec![AggSpec::new(AggFunc::Count, 1, "n")])
            .build();
        let opt = optimize(plan, OptimizerOptions::default());
        assert!(opt.explain().contains("ordered"));
        // Execute: results must match the control.
        let control = PlanBuilder::scan(&t)
            .filter(Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(25)))
            .aggregate(vec![0], vec![AggSpec::new(AggFunc::Count, 1, "n")])
            .build();
        assert_eq!(agg_results(&opt), agg_results(&control));
    }

    #[test]
    fn morsel_plan_matches_serial_and_labels_parallelism() {
        let t = rle_table(100_000, 100);
        let query = |t: &Arc<Table>| {
            PlanBuilder::scan(t)
                .filter(Expr::cmp(CmpOp::Gt, Expr::col(1), Expr::int(500)))
                .aggregate(vec![0], vec![AggSpec::new(AggFunc::Max, 1, "mx")])
                .build()
        };
        let serial = optimize(query(&t), OptimizerOptions::default());
        let parallel = optimize(
            query(&t),
            OptimizerOptions {
                parallelism: 4,
                ..Default::default()
            },
        );
        assert!(
            parallel.explain().contains("Morsel"),
            "{}",
            parallel.explain()
        );
        let (ss, sb) = run(&serial);
        let (ps, pb) = run(&parallel);
        assert_eq!(ss.fields.len(), ps.fields.len());
        // Byte-identical: same blocks, same order.
        assert_eq!(sb.len(), pb.len());
        for (a, b) in sb.iter().zip(&pb) {
            assert_eq!(a.len, b.len);
            assert_eq!(a.columns, b.columns);
        }
        // The traced operator label carries the degree.
        let trace = Arc::new(tde_obs::Trace::new());
        let mut op = execute_traced(&parallel, &trace);
        while op.next_block().is_some() {}
        let labels: Vec<String> = trace.nodes().iter().map(|n| n.label.clone()).collect();
        assert!(
            labels.iter().any(|l| l.contains("[parallel=4]")),
            "{labels:?}"
        );
    }

    #[test]
    fn tiny_input_falls_back_to_serial() {
        // One morsel's worth of rows: lowering declines parallelism.
        let t = rle_table(1000, 10);
        let plan = PlanBuilder::scan(&t)
            .filter(Expr::cmp(CmpOp::Gt, Expr::col(1), Expr::int(100)))
            .build();
        let opt = optimize(
            plan,
            OptimizerOptions {
                parallelism: 8,
                ..Default::default()
            },
        );
        assert!(opt.explain().contains("Morsel"));
        let trace = Arc::new(tde_obs::Trace::new());
        let mut op = execute_traced(&opt, &trace);
        let mut rows = 0;
        while let Some(b) = op.next_block() {
            rows += b.len;
        }
        assert!(rows > 0);
        let labels: Vec<String> = trace.nodes().iter().map(|n| n.label.clone()).collect();
        assert!(
            !labels.iter().any(|l| l.contains("[parallel=")),
            "expected serial fallback, got {labels:?}"
        );
    }

    #[test]
    fn invisible_join_plan_executes() {
        // Dictionary-compressed date column with a range filter.
        let days: Vec<i64> = (0..30_000).map(|i| 9000 + (i % 300)).collect();
        let mut stream = EncodedStream::new_dict(Width::W8, true, 9);
        for c in days.chunks(BLOCK_SIZE) {
            stream.append_block(c).unwrap();
        }
        let mut col = Column::scalar("d", DataType::Date, stream);
        convert::dict_encoding_to_compression(&mut col);
        let mut x = ColumnBuilder::new("x", DataType::Integer, Default::default());
        for i in 0..30_000i64 {
            x.append_i64(i % 11);
        }
        let t = Arc::new(Table::new("facts", vec![col, x.finish().column]));

        let plan = PlanBuilder::scan(&t)
            .filter(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(9100)))
            .build();
        let opt = optimize(plan, OptimizerOptions::default());
        assert!(opt.explain().contains("ExpandJoin"), "{}", opt.explain());
        let (schema, blocks) = run(&opt);
        let total: usize = blocks.iter().map(|b| b.len).sum();
        assert_eq!(total, 10_000); // 100 of 300 days qualify
                                   // The expanded column is a scalar date again.
        assert_eq!(schema.fields[0].dtype, DataType::Date);
        for b in &blocks {
            assert!(b.columns[0].iter().all(|&d| (9000..9100).contains(&d)));
        }
    }

    #[test]
    fn computed_dictionary_column() {
        // Push a month computation onto the dictionary (§3.4.3 rationale).
        let days: Vec<i64> = (0..10_000)
            .map(|i| tde_types::datetime::days_from_ymd(1995, 1, 1) + (i % 250))
            .collect();
        let mut stream = EncodedStream::new_dict(Width::W8, true, 8);
        for c in days.chunks(BLOCK_SIZE) {
            stream.append_block(c).unwrap();
        }
        let mut col = Column::scalar("d", DataType::Date, stream);
        convert::dict_encoding_to_compression(&mut col);
        let t = Arc::new(Table::new("facts", vec![col]));

        let plan = LogicalPlan::ExpandJoin {
            outer: Box::new(PlanBuilder::scan(&t).build()),
            column: 0,
            source: (t.clone(), 0),
            inner: crate::logical::InnerOps {
                filter: None,
                compute: Some((
                    "month".into(),
                    Expr::Func(Func::Month, Box::new(Expr::col(1))),
                )),
            },
        };
        let (schema, blocks) = run(&plan);
        assert_eq!(schema.fields[0].name, "month");
        let total: usize = blocks.iter().map(|b| b.len).sum();
        assert_eq!(total, 10_000);
        for b in &blocks {
            assert!(b.columns[0].iter().all(|&m| (1..=12).contains(&m)));
        }
        // Spot-check against direct computation.
        let expect = tde_types::datetime::month_of(days[5]);
        assert_eq!(blocks[0].columns[0][5], expect);
    }
}

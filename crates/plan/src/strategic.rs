//! The strategic optimizer (paper §2.3.1, §4).
//!
//! Rule-based rewrites applied before execution:
//!
//! 1. **Invisible-join pushdown** (§4.1.1): a filter or computation whose
//!    single column is dictionary-compressed moves onto a DictionaryTable
//!    expansion join's inner side. Computations on the compressed data are
//!    thereby expressed as part of a traditional query plan, without
//!    widening the inter-operator interfaces.
//! 2. **Rank-join pushdown** (§4.2.1): a filter whose single column is
//!    run-length encoded becomes an IndexTable scan — the predicate is
//!    evaluated per *run* and an IndexedScan turns the qualified ranges
//!    into block skips on the outer table.
//! 3. **Ordered retrieval** (§4.2.2): when the query then groups by the
//!    indexed value, the index can additionally be sorted by value so the
//!    downstream aggregation is ordered. This is a costed choice (short
//!    runs degrade it), exposed as an optimizer option so the Fig 10
//!    experiment can compare both.
//!
//! The lowering in [`crate::physical`] completes the §4.3 hygiene: inner
//! FlowTables get [`tde_storage::EncodingPolicy::inner_side`] and
//! encoder-feeding exchanges are order-preserving.

use crate::logical::{InnerOps, LogicalPlan};
use tde_exec::Expr;
use tde_storage::Compression;
use tde_types::DataType;

/// Optimizer configuration. The defaults enable every rewrite; the figure
/// harnesses toggle them to build the paper's comparison plans.
#[derive(Debug, Clone, Copy)]
pub struct OptimizerOptions {
    /// Rewrite filters on dictionary-compressed columns to invisible
    /// joins with pushdown.
    pub invisible_joins: bool,
    /// Rewrite filters on run-length columns to IndexTable + IndexedScan.
    pub index_tables: bool,
    /// Sort qualified index rows by value when the query groups by that
    /// value (ordered retrieval).
    pub ordered_retrieval: bool,
    /// Fold compilable single-column filter predicates into the scan so
    /// the per-encoding kernels (§3.1) can answer them in the compressed
    /// domain — run skipping, dictionary-domain evaluation, closed-form
    /// affine ranges, min/max block elision. Applies after the invisible
    /// join and index-table rules decline.
    pub kernel_pushdown: bool,
    /// Morsel-parallel execution degree: with `parallelism >= 2` a
    /// top-level pipeline the morsel executor can run (scan → pushed
    /// filter → aggregate) is wrapped in a [`LogicalPlan::Morsel`] node.
    /// `1` (the default) keeps every pipeline serial.
    pub parallelism: usize,
}

impl Default for OptimizerOptions {
    fn default() -> OptimizerOptions {
        OptimizerOptions {
            invisible_joins: true,
            index_tables: true,
            ordered_retrieval: true,
            kernel_pushdown: true,
            parallelism: 1,
        }
    }
}

/// Apply the strategic rewrites bottom-up, then (root only) the
/// morsel-parallel wrap.
pub fn optimize(plan: LogicalPlan, opts: OptimizerOptions) -> LogicalPlan {
    rewrite_morsel(optimize_inner(plan, opts), opts)
}

/// The recursive rewrite pass (everything except the root-only morsel
/// wrap, which must not fire on interior nodes).
fn optimize_inner(plan: LogicalPlan, opts: OptimizerOptions) -> LogicalPlan {
    let plan = rewrite_children(plan, opts);
    let plan = rewrite_filter_pushdown(plan, opts);
    rewrite_ordered_retrieval(plan, opts)
}

fn rewrite_children(plan: LogicalPlan, opts: OptimizerOptions) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(optimize_inner(*input, opts)),
            predicate,
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(optimize_inner(*input, opts)),
            exprs,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(optimize_inner(*input, opts)),
            group_by,
            aggs,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(optimize_inner(*input, opts)),
            keys,
        },
        other => other,
    }
}

/// A scan the morsel executor can range over block-by-block.
fn scan_like(plan: &LogicalPlan) -> bool {
    matches!(
        plan,
        LogicalPlan::Scan { .. } | LogicalPlan::PagedScan { .. } | LogicalPlan::MergedScan { .. }
    )
}

/// Morsel-parallel wrap (§3.3/§8 generalized): with `parallelism >= 2`,
/// wrap a pipeline the morsel executor can run whole — a scan-like leaf
/// with a pushed predicate, a residual filter over one, or an aggregate
/// over either — in a [`LogicalPlan::Morsel`] node. Applied at the root
/// only, after the other rewrites have settled the pipeline's shape.
/// Lowering makes the final tactical call (merge-safety of the
/// aggregates, morsel count) and may still fall back to serial.
fn rewrite_morsel(plan: LogicalPlan, opts: OptimizerOptions) -> LogicalPlan {
    let eligible = match &plan {
        // A bare scan without a predicate gains nothing from
        // parallelism: the work is a copy, dominated by the merge.
        LogicalPlan::Scan { predicate, .. }
        | LogicalPlan::PagedScan { predicate, .. }
        | LogicalPlan::MergedScan { predicate, .. } => predicate.is_some(),
        LogicalPlan::Filter { input, .. } => scan_like(input),
        LogicalPlan::Aggregate { input, .. } => match input.as_ref() {
            LogicalPlan::Filter { input, .. } => scan_like(input),
            p => scan_like(p),
        },
        _ => false,
    };
    if opts.parallelism < 2 || !eligible {
        return plan;
    }
    LogicalPlan::Morsel {
        input: Box::new(plan),
        degree: opts.parallelism,
    }
}

/// Rule 1 & 2: `Filter(Scan)` with a single-column predicate over a
/// compressed column becomes a decompression join with the predicate on
/// the inner side.
fn rewrite_filter_pushdown(plan: LogicalPlan, opts: OptimizerOptions) -> LogicalPlan {
    let LogicalPlan::Filter { input, predicate } = plan else {
        return plan;
    };
    let (table, columns, expand_dictionaries, scan_pred) = match input.as_ref() {
        LogicalPlan::Scan {
            table,
            columns,
            expand_dictionaries,
            predicate,
        } => (
            table.clone(),
            columns.clone(),
            *expand_dictionaries,
            predicate.clone(),
        ),
        _ => return rewrite_kernel_pushdown(input, predicate, opts),
    };
    let Some(col_idx) = predicate.single_column() else {
        return rewrite_kernel_pushdown(input, predicate, opts);
    };
    let table_col = match table.column_index(&columns[col_idx]) {
        Some(i) => i,
        None => return rewrite_kernel_pushdown(input, predicate, opts),
    };
    let column = &table.columns[table_col];

    // Rule 1: dictionary-compressed column → invisible join (§4.1).
    if opts.invisible_joins && !expand_dictionaries {
        if let Compression::Array { .. } = &column.compression {
            // Inner schema is (token, value): the predicate moves from the
            // outer column to the inner `value` column (index 1).
            let inner_pred = predicate.remap_columns(&|_| 1);
            return LogicalPlan::ExpandJoin {
                outer: input,
                column: col_idx,
                source: (table.clone(), table_col),
                inner: InnerOps {
                    filter: Some(inner_pred),
                    compute: None,
                },
            };
        }
        if let Compression::Heap { .. } = &column.compression {
            if column.dtype == DataType::Str {
                // Inner schema is (token): predicate applies to it.
                let inner_pred = predicate.remap_columns(&|_| 0);
                return LogicalPlan::ExpandJoin {
                    outer: input,
                    column: col_idx,
                    source: (table.clone(), table_col),
                    inner: InnerOps {
                        filter: Some(inner_pred),
                        compute: None,
                    },
                };
            }
        }
    }

    // Rule 2: run-length column → IndexTable + IndexedScan (§4.2).
    if opts.index_tables
        && matches!(column.compression, Compression::None)
        && column.data.algorithm() == tde_encodings::Algorithm::RunLength
    {
        // Inner schema is (value, count, start): predicate moves to value.
        let inner_pred = predicate.remap_columns(&|_| 0);
        let fetch: Vec<String> = columns
            .iter()
            .filter(|n| *n != &columns[col_idx])
            .cloned()
            .collect();
        let source = (table.clone(), table_col);
        let node = LogicalPlan::IndexScan {
            source,
            inner: InnerOps {
                filter: Some(inner_pred),
                compute: None,
            },
            sort_by_value: false,
            fetch,
        };
        // Restore the scan's column order (IndexScan puts value first).
        let node = reorder_to(node, &columns.clone());
        // The IndexScan reads the table directly, bypassing the scan it
        // replaces — a predicate an earlier stacked filter pushed into
        // that scan must be re-applied, not silently dropped. After the
        // reorder the column indexes match the scan's output again.
        return match scan_pred {
            Some(p) => LogicalPlan::Filter {
                input: Box::new(node),
                predicate: p,
            },
            None => node,
        };
    }

    rewrite_kernel_pushdown(input, predicate, opts)
}

/// Kernel pushdown (§3.1): when the dictionary and index-table rules
/// decline, a single-column predicate that compiles to a value set is
/// folded into the scan itself, so the per-encoding kernels can answer
/// it without decompression. Works for both eager and paged scans; a
/// predicate already pushed (by a stacked filter) composes with `AND`.
fn rewrite_kernel_pushdown(
    input: Box<LogicalPlan>,
    predicate: Expr,
    opts: OptimizerOptions,
) -> LogicalPlan {
    if !opts.kernel_pushdown
        || predicate.single_column().is_none()
        || !tde_exec::pushdown::compilable(&predicate)
    {
        return LogicalPlan::Filter { input, predicate };
    }
    let compose = |prior: Option<Expr>| match prior {
        Some(p) => Expr::And(Box::new(p), Box::new(predicate.clone())),
        None => predicate.clone(),
    };
    match *input {
        LogicalPlan::Scan {
            table,
            columns,
            expand_dictionaries,
            predicate: prior,
        } => LogicalPlan::Scan {
            table,
            columns,
            expand_dictionaries,
            predicate: Some(compose(prior)),
        },
        LogicalPlan::PagedScan {
            table,
            columns,
            expand_dictionaries,
            predicate: prior,
        } => LogicalPlan::PagedScan {
            table,
            columns,
            expand_dictionaries,
            predicate: Some(compose(prior)),
        },
        // Merge-on-read scans accept pushed predicates too: the base
        // side keeps its kernels (when tombstone-free), the delta side
        // evaluates per block. The invisible-join and index-table rules
        // never fire on merged scans — their dictionary/run structure
        // describes the base alone, not the merged table.
        LogicalPlan::MergedScan {
            source,
            columns,
            expand_dictionaries,
            predicate: prior,
        } => LogicalPlan::MergedScan {
            source,
            columns,
            expand_dictionaries,
            predicate: Some(compose(prior)),
        },
        other => LogicalPlan::Filter {
            input: Box::new(other),
            predicate,
        },
    }
}

/// Wrap `plan` with a projection producing `wanted` column order.
fn reorder_to(plan: LogicalPlan, wanted: &[String]) -> LogicalPlan {
    let have = plan.output_columns();
    if have == wanted {
        return plan;
    }
    let exprs = wanted
        .iter()
        .map(|n| {
            let i = have
                .iter()
                .position(|h| h == n)
                .expect("column preserved by rewrite");
            (n.clone(), Expr::col(i))
        })
        .collect();
    LogicalPlan::Project {
        input: Box::new(plan),
        exprs,
    }
}

/// Rule 3: `Aggregate(… IndexScan …)` grouped by the indexed value turns
/// on value-sorted retrieval so the aggregation runs ordered (§4.2.2).
fn rewrite_ordered_retrieval(plan: LogicalPlan, opts: OptimizerOptions) -> LogicalPlan {
    if !opts.ordered_retrieval {
        return plan;
    }
    let LogicalPlan::Aggregate {
        input,
        group_by,
        aggs,
    } = plan
    else {
        return plan;
    };
    let input = *input;
    let rewritten = match input {
        LogicalPlan::IndexScan {
            source,
            inner,
            fetch,
            ..
        } if group_by == vec![0] => LogicalPlan::IndexScan {
            source,
            inner,
            sort_by_value: true,
            fetch,
        },
        // Look through a pure column-reorder projection.
        LogicalPlan::Project {
            input: pinput,
            exprs,
        } if matches!(*pinput, LogicalPlan::IndexScan { .. })
            && exprs.iter().all(|(_, e)| matches!(e, Expr::Col(_))) =>
        {
            // The grouped output column must map back to the index value
            // (inner column 0).
            let maps_to_value = group_by.len() == 1 && matches!(exprs[group_by[0]].1, Expr::Col(0));
            let LogicalPlan::IndexScan {
                source,
                inner,
                fetch,
                sort_by_value,
            } = *pinput
            else {
                unreachable!()
            };
            let node = LogicalPlan::IndexScan {
                source,
                inner,
                sort_by_value: sort_by_value || maps_to_value,
                fetch,
            };
            LogicalPlan::Project {
                input: Box::new(node),
                exprs,
            }
        }
        other => other,
    };
    LogicalPlan::Aggregate {
        input: Box::new(rewritten),
        group_by,
        aggs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::PlanBuilder;
    use std::sync::Arc;
    use tde_encodings::{EncodedStream, BLOCK_SIZE};
    use tde_exec::aggregate::AggSpec;
    use tde_exec::expr::{AggFunc, CmpOp};
    use tde_storage::{convert, Column, ColumnBuilder, EncodingPolicy, Table};
    use tde_types::Width;

    fn dict_compressed_table() -> Arc<Table> {
        let days: Vec<i64> = (0..5000).map(|i| 9000 + (i % 200)).collect();
        let mut stream = EncodedStream::new_dict(Width::W8, true, 8);
        for c in days.chunks(BLOCK_SIZE) {
            stream.append_block(c).unwrap();
        }
        let mut col = Column::scalar("d", DataType::Date, stream);
        convert::dict_encoding_to_compression(&mut col);
        let mut x = ColumnBuilder::new("x", DataType::Integer, EncodingPolicy::default());
        for i in 0..5000i64 {
            x.append_i64(i);
        }
        Arc::new(Table::new("facts", vec![col, x.finish().column]))
    }

    fn rle_table() -> Arc<Table> {
        let mut data = Vec::new();
        for v in 0..100i64 {
            data.extend(std::iter::repeat_n(v, 500));
        }
        let mut s = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W1);
        for c in data.chunks(BLOCK_SIZE) {
            s.append_block(c).unwrap();
        }
        let key = Column::scalar("k", DataType::Integer, s);
        let mut other = ColumnBuilder::new("o", DataType::Integer, EncodingPolicy::default());
        for i in 0..50_000i64 {
            other.append_i64(i % 31);
        }
        Arc::new(Table::new("runs", vec![key, other.finish().column]))
    }

    #[test]
    fn dictionary_filter_becomes_expand_join() {
        let t = dict_compressed_table();
        let plan = PlanBuilder::scan(&t)
            .filter(Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(9100)))
            .build();
        let opt = optimize(plan, OptimizerOptions::default());
        match &opt {
            LogicalPlan::ExpandJoin { column, inner, .. } => {
                assert_eq!(*column, 0);
                let f = inner.filter.as_ref().unwrap();
                // Predicate now references the inner `value` column.
                assert_eq!(f.single_column(), Some(1));
            }
            other => panic!("expected ExpandJoin, got {other:?}"),
        }
        assert_eq!(opt.output_columns(), vec!["d", "x"]);
    }

    #[test]
    fn rle_filter_becomes_index_scan() {
        let t = rle_table();
        let plan = PlanBuilder::scan(&t)
            .filter(Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(80)))
            .build();
        let opt = optimize(plan, OptimizerOptions::default());
        // Reordered to the scan's column order by a projection.
        assert_eq!(opt.output_columns(), vec!["k", "o"]);
        assert!(opt.explain().contains("IndexedScan"));
    }

    #[test]
    fn index_scan_rewrite_keeps_pushed_scan_predicate() {
        // A stacked filter on `o` is first folded into the scan by kernel
        // pushdown; the later filter on RLE column `k` then replaces that
        // scan with an IndexScan, which must re-apply the folded
        // predicate instead of dropping it (found by tde-fuzz seed 193).
        let t = rle_table();
        let plan = PlanBuilder::scan(&t)
            .filter(Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::int(7)))
            .filter(Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(80)))
            .build();
        let opt = optimize(plan, OptimizerOptions::default());
        let text = opt.explain();
        assert!(text.contains("IndexedScan"), "{text}");
        assert!(text.contains("Filter"), "{text}");
    }

    #[test]
    fn aggregate_over_index_scan_goes_ordered() {
        let t = rle_table();
        let plan = PlanBuilder::scan(&t)
            .filter(Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(80)))
            .aggregate(vec![0], vec![AggSpec::new(AggFunc::Max, 1, "mx")])
            .build();
        let opt = optimize(plan, OptimizerOptions::default());
        assert!(opt.explain().contains("ordered"), "{}", opt.explain());
        // And not when the option is off.
        let t2 = rle_table();
        let plan = PlanBuilder::scan(&t2)
            .filter(Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(80)))
            .aggregate(vec![0], vec![AggSpec::new(AggFunc::Max, 1, "mx")])
            .build();
        let opt = optimize(
            plan,
            OptimizerOptions {
                ordered_retrieval: false,
                kernel_pushdown: false,
                ..Default::default()
            },
        );
        assert!(!opt.explain().contains("ordered"));
    }

    #[test]
    fn disabled_rewrites_keep_plan_shape() {
        let t = dict_compressed_table();
        let plan = PlanBuilder::scan(&t)
            .filter(Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(9100)))
            .build();
        let opt = optimize(
            plan,
            OptimizerOptions {
                invisible_joins: false,
                index_tables: false,
                ordered_retrieval: false,
                kernel_pushdown: false,
                parallelism: 1,
            },
        );
        assert!(matches!(opt, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn parallelism_wraps_eligible_pipelines_in_morsel() {
        let t = rle_table();
        let opts = OptimizerOptions {
            parallelism: 4,
            ..Default::default()
        };
        // Aggregate over a kernel-pushed scan: wrapped.
        let plan = PlanBuilder::scan(&t)
            .filter(Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::int(7)))
            .aggregate(vec![1], vec![AggSpec::new(AggFunc::Max, 0, "mx")])
            .build();
        let opt = optimize(plan, opts);
        match &opt {
            LogicalPlan::Morsel { input, degree } => {
                assert_eq!(*degree, 4);
                assert!(matches!(**input, LogicalPlan::Aggregate { .. }));
            }
            other => panic!("expected Morsel wrap, got {other:?}"),
        }
        assert!(
            opt.explain().contains("Morsel [parallel=4]"),
            "{}",
            opt.explain()
        );

        // A bare scan without a predicate is not worth parallelizing.
        let plan = PlanBuilder::scan(&t).build();
        assert!(!optimize(plan, opts).explain().contains("Morsel"));

        // Pipelines the morsel executor cannot run whole (here: the
        // filter becomes an IndexedScan join) stay serial.
        let plan = PlanBuilder::scan(&t)
            .filter(Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(80)))
            .build();
        let opt = optimize(plan, opts);
        assert!(!opt.explain().contains("Morsel"), "{}", opt.explain());

        // parallelism = 1 never wraps.
        let plan = PlanBuilder::scan(&t)
            .filter(Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::int(7)))
            .build();
        let opt = optimize(plan, OptimizerOptions::default());
        assert!(!opt.explain().contains("Morsel"));
    }

    #[test]
    fn multi_column_predicate_is_not_pushed() {
        let t = rle_table();
        let plan = PlanBuilder::scan(&t)
            .filter(Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::col(1)))
            .build();
        let opt = optimize(plan, OptimizerOptions::default());
        assert!(matches!(opt, LogicalPlan::Filter { .. }));
    }
}

//! Logical plans.
//!
//! A deliberately concrete IR: the generic relational nodes (scan, filter,
//! project, aggregate, sort) plus the two decompression-join nodes the
//! strategic optimizer introduces — [`LogicalPlan::ExpandJoin`] for
//! dictionary-compressed columns (§4.1) and [`LogicalPlan::IndexScan`]
//! for run-length columns (§4.2). Expressions reference input columns by
//! index into the child's output schema.

use std::sync::Arc;
use tde_exec::aggregate::AggSpec;
use tde_exec::merged_scan::MergedSource;
use tde_exec::sort::SortOrder;
use tde_exec::Expr;
use tde_pager::PagedTable;
use tde_storage::Table;

/// Operations pushed down onto a decompression join's inner side: a
/// filter and/or a computation over the dictionary *values*.
#[derive(Debug, Clone, Default)]
pub struct InnerOps {
    /// Predicate over the inner schema (dictionary: `token[, value]`;
    /// index: `value, count, start`).
    pub filter: Option<Expr>,
    /// A computed replacement for the value column (e.g. the §4.1.2 file
    /// extension), evaluated over the inner schema.
    pub compute: Option<(String, Expr)>,
}

impl InnerOps {
    /// No pushed-down work.
    pub fn none() -> InnerOps {
        InnerOps::default()
    }
}

/// A logical query plan.
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Scan named columns of a stored table. `expand_dictionaries`
    /// materializes array-compressed columns at the scan — the baseline
    /// that forgoes invisible joins.
    Scan {
        /// The table.
        table: Arc<Table>,
        /// Column names to produce, in order.
        columns: Vec<String>,
        /// Expand array compression inline.
        expand_dictionaries: bool,
        /// A predicate (over the scan's output schema) pushed into the
        /// scan by the strategic optimizer; the scan answers it in the
        /// compressed domain where the column's encoding has a kernel.
        predicate: Option<Expr>,
    },
    /// Scan named columns of a paged (v2) table: each column resolves
    /// through the buffer pool at lowering time, so only the projected
    /// columns' segments are read from disk.
    PagedScan {
        /// The lazy table handle.
        table: PagedTable,
        /// Column names to produce, in order.
        columns: Vec<String>,
        /// Expand array compression inline.
        expand_dictionaries: bool,
        /// A pushed-down predicate, as on [`LogicalPlan::Scan`].
        predicate: Option<Expr>,
    },
    /// Merge-on-read scan over a base table plus its live delta
    /// (crate `tde-delta`): base rows minus tombstones, then delta rows,
    /// presented as one table. The base side keeps compressed-domain
    /// kernels when no tombstones are live; the delta side always
    /// evaluates per block.
    MergedScan {
        /// The merge snapshot.
        source: Arc<MergedSource>,
        /// Column names to produce, in order.
        columns: Vec<String>,
        /// Expand array compression inline.
        expand_dictionaries: bool,
        /// A pushed-down predicate, as on [`LogicalPlan::Scan`].
        predicate: Option<Expr>,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate over the input schema.
        predicate: Expr,
    },
    /// Expression projection.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output columns as (name, expression).
        exprs: Vec<(String, Expr)>,
    },
    /// Grouped aggregation.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group key column indexes.
        group_by: Vec<usize>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
    },
    /// Total sort.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Keys (column, order), most significant first.
        keys: Vec<(usize, SortOrder)>,
    },
    /// Invisible join (§4.1): expand compressed column `column` of the
    /// outer scan through its DictionaryTable, with `inner` work pushed
    /// onto the dictionary. The output schema equals the outer schema
    /// with the column replaced by its (possibly computed) value; rows
    /// whose dictionary entry fails the inner filter are dropped.
    ExpandJoin {
        /// Outer plan: must expose the compressed column's tokens at
        /// `column`.
        outer: Box<LogicalPlan>,
        /// Index of the compressed column in the outer schema.
        column: usize,
        /// The table/column whose dictionary is joined.
        source: (Arc<Table>, usize),
        /// Pushed-down dictionary-side work.
        inner: InnerOps,
    },
    /// Morsel-driven parallel execution (§3.3/§8 generalized): run the
    /// input pipeline — a scan-like leaf with a pushed predicate, a
    /// residual filter over one, or an aggregate over either — as block
    /// ranges claimed by `degree` work-stealing workers, followed by a
    /// deterministic merge. Inserted by the strategic optimizer when
    /// `OptimizerOptions::parallelism >= 2`; lowering makes the final
    /// tactical call and may still fall back to the serial pipeline
    /// (too few morsels, non-merge-safe aggregates).
    Morsel {
        /// The pipeline to parallelize.
        input: Box<LogicalPlan>,
        /// Worker count.
        degree: usize,
    },
    /// Rank join over an IndexTable (§4.2): scan `source`'s run-length
    /// column as (value, count, start) rows, apply the inner ops, then
    /// IndexedScan the qualified ranges fetching `fetch` columns. Output
    /// schema: the (possibly computed) value column, then `fetch`.
    IndexScan {
        /// The table and its RLE column.
        source: (Arc<Table>, usize),
        /// Pushed-down index-side work (filter on `value`).
        inner: InnerOps,
        /// Sort the index by value before scanning — the §4.2.2 ordered
        /// retrieval that enables sandwiched aggregation.
        sort_by_value: bool,
        /// Outer columns to fetch for qualified ranges.
        fetch: Vec<String>,
    },
}

impl LogicalPlan {
    /// The output column names, for rewrites and tests.
    pub fn output_columns(&self) -> Vec<String> {
        match self {
            LogicalPlan::Scan { columns, .. }
            | LogicalPlan::PagedScan { columns, .. }
            | LogicalPlan::MergedScan { columns, .. } => columns.clone(),
            LogicalPlan::Filter { input, .. } | LogicalPlan::Morsel { input, .. } => {
                input.output_columns()
            }
            LogicalPlan::Project { exprs, .. } => exprs.iter().map(|(n, _)| n.clone()).collect(),
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let inputs = input.output_columns();
                group_by
                    .iter()
                    .map(|&g| inputs[g].clone())
                    .chain(aggs.iter().map(|a| a.name.clone()))
                    .collect()
            }
            LogicalPlan::Sort { input, .. } => input.output_columns(),
            LogicalPlan::ExpandJoin {
                outer,
                column,
                inner,
                ..
            } => {
                let mut cols = outer.output_columns();
                if let Some((name, _)) = &inner.compute {
                    cols[*column] = name.clone();
                }
                cols
            }
            LogicalPlan::IndexScan {
                source,
                inner,
                fetch,
                ..
            } => {
                let vname = inner
                    .compute
                    .as_ref()
                    .map(|(n, _)| n.clone())
                    .unwrap_or_else(|| source.0.columns[source.1].name.clone());
                std::iter::once(vname)
                    .chain(fetch.iter().cloned())
                    .collect()
            }
        }
    }

    /// Every stored table the plan references — scan sources plus
    /// decompression-join sources — deduplicated by identity. Used by
    /// EXPLAIN ANALYZE to report compression telemetry per table.
    pub fn referenced_tables(&self) -> Vec<Arc<Table>> {
        fn push(out: &mut Vec<Arc<Table>>, t: &Arc<Table>) {
            if !out.iter().any(|x| Arc::ptr_eq(x, t)) {
                out.push(t.clone());
            }
        }
        fn collect(plan: &LogicalPlan, out: &mut Vec<Arc<Table>>) {
            match plan {
                LogicalPlan::Scan { table, .. } => push(out, table),
                // Paged scans load columns lazily; their cache telemetry
                // is reported from the pool counters, not per-table.
                LogicalPlan::PagedScan { .. } => {}
                // Merged scans report through delta metrics and the
                // merged-scan decision event, not per-table telemetry.
                LogicalPlan::MergedScan { .. } => {}
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Project { input, .. }
                | LogicalPlan::Aggregate { input, .. }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Morsel { input, .. } => collect(input, out),
                LogicalPlan::ExpandJoin { outer, source, .. } => {
                    collect(outer, out);
                    push(out, &source.0);
                }
                LogicalPlan::IndexScan { source, .. } => push(out, &source.0),
            }
        }
        let mut out = Vec::new();
        collect(self, &mut out);
        out
    }

    /// Render the plan tree (explain output).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::Scan {
                table,
                columns,
                expand_dictionaries,
                predicate,
            } => {
                out.push_str(&format!(
                    "{pad}Scan {} [{}]{}{}\n",
                    table.name,
                    columns.join(", "),
                    if *expand_dictionaries {
                        " (expanded)"
                    } else {
                        ""
                    },
                    if predicate.is_some() { " +pred" } else { "" }
                ));
            }
            LogicalPlan::PagedScan {
                table,
                columns,
                expand_dictionaries,
                predicate,
            } => {
                out.push_str(&format!(
                    "{pad}PagedScan {} [{}]{}{}\n",
                    table.name(),
                    columns.join(", "),
                    if *expand_dictionaries {
                        " (expanded)"
                    } else {
                        ""
                    },
                    if predicate.is_some() { " +pred" } else { "" }
                ));
            }
            LogicalPlan::MergedScan {
                source,
                columns,
                expand_dictionaries,
                predicate,
            } => {
                out.push_str(&format!(
                    "{pad}MergedScan {} [{}] (+{} delta, -{} tombstone){}{}\n",
                    source.name(),
                    columns.join(", "),
                    source.delta_rows(),
                    source.tombstone_count(),
                    if *expand_dictionaries {
                        " (expanded)"
                    } else {
                        ""
                    },
                    if predicate.is_some() { " +pred" } else { "" }
                ));
            }
            LogicalPlan::Filter { input, .. } => {
                out.push_str(&format!("{pad}Filter\n"));
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Morsel { input, degree } => {
                out.push_str(&format!("{pad}Morsel [parallel={degree}]\n"));
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Project { input, exprs } => {
                let names: Vec<&str> = exprs.iter().map(|(n, _)| n.as_str()).collect();
                out.push_str(&format!("{pad}Project [{}]\n", names.join(", ")));
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                out.push_str(&format!(
                    "{pad}Aggregate group_by={group_by:?} aggs={}\n",
                    aggs.len()
                ));
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::Sort { input, keys } => {
                out.push_str(&format!("{pad}Sort {keys:?}\n"));
                input.explain_into(depth + 1, out);
            }
            LogicalPlan::ExpandJoin {
                outer,
                column,
                inner,
                source,
            } => {
                out.push_str(&format!(
                    "{pad}ExpandJoin col={column} dict={}.{}{}{}\n",
                    source.0.name,
                    source.0.columns[source.1].name,
                    if inner.filter.is_some() {
                        " +filter"
                    } else {
                        ""
                    },
                    if inner.compute.is_some() {
                        " +compute"
                    } else {
                        ""
                    },
                ));
                outer.explain_into(depth + 1, out);
            }
            LogicalPlan::IndexScan {
                source,
                inner,
                sort_by_value,
                fetch,
            } => {
                out.push_str(&format!(
                    "{pad}IndexedScan {}.{} fetch=[{}]{}{}\n",
                    source.0.name,
                    source.0.columns[source.1].name,
                    fetch.join(", "),
                    if inner.filter.is_some() {
                        " +filter"
                    } else {
                        ""
                    },
                    if *sort_by_value { " ordered" } else { "" },
                ));
            }
        }
    }
}

/// Fluent builder for logical plans.
pub struct PlanBuilder {
    plan: LogicalPlan,
}

impl PlanBuilder {
    /// Start from a full-table scan.
    pub fn scan(table: &Arc<Table>) -> PlanBuilder {
        let columns = table.columns.iter().map(|c| c.name.clone()).collect();
        PlanBuilder {
            plan: LogicalPlan::Scan {
                table: table.clone(),
                columns,
                expand_dictionaries: false,
                predicate: None,
            },
        }
    }

    /// Start from a full paged-table scan (loads every column — prefer
    /// [`PlanBuilder::scan_paged_columns`] with a projection).
    pub fn scan_paged(table: &PagedTable) -> PlanBuilder {
        let columns = table
            .column_names()
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        PlanBuilder {
            plan: LogicalPlan::PagedScan {
                table: table.clone(),
                columns,
                expand_dictionaries: false,
                predicate: None,
            },
        }
    }

    /// Start from a paged projection scan: only the named columns'
    /// segments will be read.
    pub fn scan_paged_columns(table: &PagedTable, columns: &[&str]) -> PlanBuilder {
        PlanBuilder {
            plan: LogicalPlan::PagedScan {
                table: table.clone(),
                columns: columns.iter().map(|s| (*s).to_owned()).collect(),
                expand_dictionaries: false,
                predicate: None,
            },
        }
    }

    /// Start from a full merge-on-read scan over a base + delta snapshot.
    pub fn scan_merged(source: &Arc<MergedSource>) -> PlanBuilder {
        let columns = source
            .column_names()
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        PlanBuilder {
            plan: LogicalPlan::MergedScan {
                source: Arc::clone(source),
                columns,
                expand_dictionaries: false,
                predicate: None,
            },
        }
    }

    /// Start from a merged projection scan.
    pub fn scan_merged_columns(source: &Arc<MergedSource>, columns: &[&str]) -> PlanBuilder {
        PlanBuilder {
            plan: LogicalPlan::MergedScan {
                source: Arc::clone(source),
                columns: columns.iter().map(|s| (*s).to_owned()).collect(),
                expand_dictionaries: false,
                predicate: None,
            },
        }
    }

    /// Start from a projection scan.
    pub fn scan_columns(table: &Arc<Table>, columns: &[&str]) -> PlanBuilder {
        PlanBuilder {
            plan: LogicalPlan::Scan {
                table: table.clone(),
                columns: columns.iter().map(|s| (*s).to_owned()).collect(),
                expand_dictionaries: false,
                predicate: None,
            },
        }
    }

    /// Add a filter.
    pub fn filter(self, predicate: Expr) -> PlanBuilder {
        PlanBuilder {
            plan: LogicalPlan::Filter {
                input: Box::new(self.plan),
                predicate,
            },
        }
    }

    /// Add a projection.
    pub fn project(self, exprs: Vec<(String, Expr)>) -> PlanBuilder {
        PlanBuilder {
            plan: LogicalPlan::Project {
                input: Box::new(self.plan),
                exprs,
            },
        }
    }

    /// Add an aggregation.
    pub fn aggregate(self, group_by: Vec<usize>, aggs: Vec<AggSpec>) -> PlanBuilder {
        PlanBuilder {
            plan: LogicalPlan::Aggregate {
                input: Box::new(self.plan),
                group_by,
                aggs,
            },
        }
    }

    /// Add a sort.
    pub fn sort(self, keys: Vec<(usize, SortOrder)>) -> PlanBuilder {
        PlanBuilder {
            plan: LogicalPlan::Sort {
                input: Box::new(self.plan),
                keys,
            },
        }
    }

    /// Finish.
    pub fn build(self) -> LogicalPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_storage::{ColumnBuilder, EncodingPolicy};
    use tde_types::DataType;

    fn table() -> Arc<Table> {
        let mut a = ColumnBuilder::new("a", DataType::Integer, EncodingPolicy::default());
        let mut b = ColumnBuilder::new("b", DataType::Integer, EncodingPolicy::default());
        for i in 0..10i64 {
            a.append_i64(i);
            b.append_i64(i * 2);
        }
        Arc::new(Table::new("t", vec![a.finish().column, b.finish().column]))
    }

    #[test]
    fn builder_and_columns() {
        use tde_exec::expr::{AggFunc, CmpOp};
        let t = table();
        let plan = PlanBuilder::scan(&t)
            .filter(Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(3)))
            .aggregate(vec![0], vec![AggSpec::new(AggFunc::Max, 1, "mx")])
            .build();
        assert_eq!(plan.output_columns(), vec!["a", "mx"]);
        let text = plan.explain();
        assert!(text.contains("Aggregate"));
        assert!(text.contains("Filter"));
        assert!(text.contains("Scan t"));
    }
}

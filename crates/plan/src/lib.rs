//! Query planning: logical plans, the strategic optimizer, and lowering
//! to physical operators (paper §2.3.1, §4).
//!
//! Optimization happens in two phases. The *strategic* phase fixes the
//! plan shape before execution: it expresses decompression as joins
//! against DictionaryTables and IndexTables ([`strategic`]), pushes
//! single-column filters and computations onto the inner (compressed)
//! side of those joins, restricts encoding choices for hash-join inner
//! FlowTables, and forces order-preserving exchange routing upstream of
//! encoders (§4.3). The *tactical* phase is delayed until run time and
//! lives in `tde_exec::tactical`: the physical lowering ([`physical`])
//! materializes inner sides with FlowTable first, then lets the freshly
//! extracted metadata pick fetch joins, hash strategies and ordered
//! aggregation.

pub mod logical;
pub mod physical;
pub mod strategic;

pub use logical::{LogicalPlan, PlanBuilder};
pub use physical::{execute, try_execute};
pub use strategic::optimize;

//! Mutable delta store over read-optimized extracts.
//!
//! The TDE keeps extracts aggressively read-optimized: columns are
//! dictionary-compressed and the fixed-width streams re-encoded until
//! they are close to entropy (paper §3). That representation is the
//! wrong one to mutate in place — a single insert can invalidate a
//! frame-of-reference dictionary, a sorted heap, or an affine run. The
//! classical answer (C-Store's WS/RS split, MonetDB's pending-update
//! columns) is the one this crate reproduces:
//!
//! * [`DeltaTable`] buffers mutations *next to* an immutable base
//!   table: appended rows live in uncompressed per-column vectors,
//!   deletes become a sorted tombstone set over base row ids, and
//!   updates are delete + append. The buffer is schema-validated,
//!   NULL-sentinel aware and bounded by a [`DeltaConfig`] memory
//!   budget.
//! * Queries **merge on read**: [`DeltaTable::snapshot`] freezes the
//!   buffer into a [`tde_exec::merged_scan::MergedSource`] whose merged
//!   dictionaries/heaps extend the base's (base tokens stay valid —
//!   both are append-only), with every compression-derived metadata
//!   claim widened so the optimizer never acts on a fact the delta
//!   falsified.
//! * A **compactor** ([`DeltaTable::compact`], or the background
//!   [`Compactor`] thread) drains the merged stream back through the
//!   dynamic encoder into a fresh read-optimized table, restoring every
//!   claim the delta suspended.
//!
//! Persistence rides on the v2 paged format: [`DeltaExtract`] stores
//! the buffer as opaque delta/tombstone aux sections in the footer
//! directory (crate `tde-pager`), rewritten atomically on save, and
//! restores them — with the same corrupt-input hardening as the rest of
//! the format — on open.

pub mod compact;
pub mod store;
pub mod wire;

pub use compact::{Compactor, CompactorConfig, DeltaExtract, ScanSource};
pub use store::{BaseTable, DeltaConfig, DeltaTable};

//! The write-optimized delta buffer and its merge-on-read snapshots.

use std::collections::{BTreeSet, HashMap};
use std::io;
use std::sync::Arc;
use tde_encodings::metadata::Knowledge;
use tde_exec::block::Block;
use tde_exec::handle::ColumnHandle;
use tde_exec::merged_scan::MergedSource;
use tde_exec::{Field, Repr, BLOCK_ROWS};
use tde_pager::PagedTable;
use tde_storage::{StringHeap, Table};
use tde_types::sentinel::{null_real, NULL_I64, NULL_TOKEN};
use tde_types::{DataType, Value, Width};

/// Delta-store configuration.
#[derive(Debug, Clone)]
pub struct DeltaConfig {
    /// Upper bound on bytes the delta buffer may hold; appends that
    /// would exceed it fail with [`io::ErrorKind::OutOfMemory`] — the
    /// caller's cue to compact.
    pub max_bytes: usize,
}

impl Default for DeltaConfig {
    fn default() -> DeltaConfig {
        DeltaConfig {
            max_bytes: 64 << 20,
        }
    }
}

/// The immutable base a [`DeltaTable`] buffers mutations against.
#[derive(Debug, Clone)]
pub enum BaseTable {
    /// An in-memory table.
    Eager(Arc<Table>),
    /// A lazy handle into a v2 paged file.
    Paged(PagedTable),
}

impl BaseTable {
    /// Table name.
    pub fn name(&self) -> &str {
        match self {
            BaseTable::Eager(t) => &t.name,
            BaseTable::Paged(t) => t.name(),
        }
    }

    /// Base row count (no segment I/O on the paged path).
    pub fn row_count(&self) -> u64 {
        match self {
            BaseTable::Eager(t) => t.row_count(),
            BaseTable::Paged(t) => t.row_count(),
        }
    }

    /// `(name, dtype)` pairs in schema order (directory-only on the
    /// paged path).
    pub fn schema(&self) -> Vec<(String, DataType)> {
        match self {
            BaseTable::Eager(t) => t
                .columns
                .iter()
                .map(|c| (c.name.clone(), c.dtype))
                .collect(),
            BaseTable::Paged(t) => t
                .column_names()
                .iter()
                .map(|n| {
                    let d = t.column_dir(n).expect("directory lists the column");
                    (d.name.clone(), d.dtype)
                })
                .collect(),
        }
    }

    /// Full-width column handles for a merge snapshot. The paged path
    /// materializes every column through the buffer pool — the price of
    /// a live delta; compaction (which rebuilds and re-saves the base)
    /// restores projection laziness.
    fn handles(&self) -> io::Result<Vec<ColumnHandle>> {
        match self {
            BaseTable::Eager(t) => Ok(ColumnHandle::all(t)),
            BaseTable::Paged(t) => (0..t.column_names().len())
                .map(|i| t.column_at(i).map(ColumnHandle::Owned))
                .collect(),
        }
    }
}

/// One delta column's buffered values.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum DeltaVals {
    /// Raw widened integers (`Real` travels as `f64` bit patterns),
    /// NULLs as the engine-wide in-band sentinels.
    Ints(Vec<i64>),
    /// Owned strings; `None` is NULL.
    Strs(Vec<Option<String>>),
}

impl DeltaVals {
    pub(crate) fn empty_for(dtype: DataType) -> DeltaVals {
        match dtype {
            DataType::Str => DeltaVals::Strs(Vec::new()),
            _ => DeltaVals::Ints(Vec::new()),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            DeltaVals::Ints(v) => v.len(),
            DeltaVals::Strs(v) => v.len(),
        }
    }
}

/// A validated raw value ready to enter the buffer.
enum Raw {
    Int(i64),
    Str(Option<String>),
}

impl Raw {
    fn byte_cost(&self) -> usize {
        match self {
            Raw::Int(_) => 8,
            Raw::Str(None) => 8,
            Raw::Str(Some(s)) => 24 + s.len(),
        }
    }
}

fn type_err(col: &str, dtype: DataType, v: &Value) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("column {col:?} holds {dtype}, got incompatible value {v}"),
    )
}

/// Widen `v` to the column's raw storage form, validating its type.
/// NULL binds to any column as that column's sentinel; integers widen
/// into `Real` columns (the only implicit coercion the engine allows).
fn raw_for(col: &str, dtype: DataType, v: &Value) -> io::Result<Raw> {
    if matches!(v, Value::Null) {
        return Ok(match dtype {
            DataType::Str => Raw::Str(None),
            DataType::Real => Raw::Int(null_real().to_bits() as i64),
            _ => Raw::Int(NULL_I64),
        });
    }
    Ok(match (dtype, v) {
        (DataType::Str, Value::Str(s)) => Raw::Str(Some(s.clone())),
        (DataType::Real, Value::Real(f)) => Raw::Int(f.to_bits() as i64),
        (DataType::Real, Value::Int(i)) => Raw::Int((*i as f64).to_bits() as i64),
        (DataType::Bool, Value::Bool(b)) => Raw::Int(i64::from(*b)),
        (DataType::Integer, Value::Int(i)) => Raw::Int(*i),
        (DataType::Date, Value::Date(d)) => Raw::Int(*d),
        (DataType::Timestamp, Value::Timestamp(t)) => Raw::Int(*t),
        _ => return Err(type_err(col, dtype, v)),
    })
}

/// An append-friendly row/column hybrid buffer over one base table.
///
/// Row-id space: ids `0..base_rows` address base rows; id
/// `base_rows + i` addresses the `i`-th appended delta row (ids stay
/// stable across deletions — a deleted delta row keeps its slot until
/// compaction renumbers everything).
#[derive(Debug)]
pub struct DeltaTable {
    pub(crate) base: BaseTable,
    pub(crate) schema: Vec<(String, DataType)>,
    pub(crate) base_rows: u64,
    pub(crate) cols: Vec<DeltaVals>,
    /// Liveness per delta row; `false` marks a deleted append.
    pub(crate) live: Vec<bool>,
    dead_rows: usize,
    pub(crate) tombstones: BTreeSet<u64>,
    bytes: usize,
    config: DeltaConfig,
}

impl DeltaTable {
    /// A fresh, empty delta over `base`.
    pub fn new(base: BaseTable) -> DeltaTable {
        DeltaTable::with_config(base, DeltaConfig::default())
    }

    /// As [`DeltaTable::new`] with an explicit memory budget.
    pub fn with_config(base: BaseTable, config: DeltaConfig) -> DeltaTable {
        let schema = base.schema();
        let base_rows = base.row_count();
        let cols = schema
            .iter()
            .map(|&(_, dtype)| DeltaVals::empty_for(dtype))
            .collect();
        DeltaTable {
            base,
            schema,
            base_rows,
            cols,
            live: Vec::new(),
            dead_rows: 0,
            tombstones: BTreeSet::new(),
            bytes: 0,
            config,
        }
    }

    /// Convenience: a delta over an in-memory table.
    pub fn from_eager(table: Arc<Table>) -> DeltaTable {
        DeltaTable::new(BaseTable::Eager(table))
    }

    /// Convenience: a delta over a paged table.
    pub fn from_paged(table: PagedTable) -> DeltaTable {
        DeltaTable::new(BaseTable::Paged(table))
    }

    /// Table name.
    pub fn name(&self) -> &str {
        self.base.name()
    }

    /// The base this delta buffers against.
    pub fn base(&self) -> &BaseTable {
        &self.base
    }

    /// `(name, dtype)` pairs in schema order.
    pub fn schema(&self) -> &[(String, DataType)] {
        &self.schema
    }

    /// Base row count.
    pub fn base_rows(&self) -> u64 {
        self.base_rows
    }

    /// Live (not-deleted) appended rows.
    pub fn delta_rows(&self) -> u64 {
        (self.live.len() - self.dead_rows) as u64
    }

    /// Tombstoned base rows.
    pub fn tombstone_count(&self) -> u64 {
        self.tombstones.len() as u64
    }

    /// Logical row count a merged scan produces.
    pub fn merged_rows(&self) -> u64 {
        self.base_rows - self.tombstone_count() + self.delta_rows()
    }

    /// Approximate bytes the buffer holds.
    pub fn buffered_bytes(&self) -> usize {
        self.bytes
    }

    /// Whether a merged scan would be identical to a base scan.
    pub fn is_clean(&self) -> bool {
        self.delta_rows() == 0 && self.tombstones.is_empty()
    }

    /// Shift the process-wide delta gauges by the given amounts.
    fn meter(&self, rows: i64, bytes: i64, tombstones: i64) {
        let m = tde_obs::metrics::delta_metrics();
        m.rows.add(rows);
        m.bytes.add(bytes);
        m.tombstones.add(tombstones);
    }

    /// Append `rows` (one `Vec<Value>` per row, schema order). The whole
    /// batch is validated — width, per-column type, NULL widening — and
    /// checked against the memory budget before anything mutates, so a
    /// failed append leaves the buffer untouched.
    pub fn append_rows(&mut self, rows: &[Vec<Value>]) -> io::Result<()> {
        let ncols = self.schema.len();
        let mut staged: Vec<Vec<Raw>> = Vec::with_capacity(rows.len());
        let mut add_bytes = 0usize;
        for row in rows {
            if row.len() != ncols {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "row has {} value(s), table {:?} has {ncols} column(s)",
                        row.len(),
                        self.name()
                    ),
                ));
            }
            let raws = row
                .iter()
                .zip(&self.schema)
                .map(|(v, (name, dtype))| raw_for(name, *dtype, v))
                .collect::<io::Result<Vec<Raw>>>()?;
            add_bytes += raws.iter().map(Raw::byte_cost).sum::<usize>() + 1;
            staged.push(raws);
        }
        if self.bytes + add_bytes > self.config.max_bytes {
            return Err(io::Error::new(
                io::ErrorKind::OutOfMemory,
                format!(
                    "delta buffer for {:?} would exceed its {} byte budget \
                     ({} held, {add_bytes} incoming) — compact first",
                    self.name(),
                    self.config.max_bytes,
                    self.bytes
                ),
            ));
        }
        for raws in staged {
            for (col, raw) in self.cols.iter_mut().zip(raws) {
                match (col, raw) {
                    (DeltaVals::Ints(v), Raw::Int(x)) => v.push(x),
                    (DeltaVals::Strs(v), Raw::Str(s)) => v.push(s),
                    _ => unreachable!("raw_for matched the column type"),
                }
            }
            self.live.push(true);
        }
        self.bytes += add_bytes;
        let n = rows.len() as i64;
        self.meter(n, add_bytes as i64, 0);
        tde_obs::metrics::delta_metrics().appends.add(n as u64);
        Ok(())
    }

    /// Delete rows by id (base or delta row-id space). Deleting an
    /// already-deleted row is a no-op; an out-of-range id fails the
    /// whole call before anything mutates. Returns the number of rows
    /// newly deleted.
    pub fn delete(&mut self, row_ids: &[u64]) -> io::Result<u64> {
        let upper = self.base_rows + self.live.len() as u64;
        if let Some(&bad) = row_ids.iter().find(|&&id| id >= upper) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "row id {bad} out of range for {:?} ({upper} addressable row(s))",
                    self.name()
                ),
            ));
        }
        let mut new_tombstones = 0i64;
        let mut dead_delta = 0i64;
        for &id in row_ids {
            if id < self.base_rows {
                if self.tombstones.insert(id) {
                    new_tombstones += 1;
                }
            } else {
                let slot = (id - self.base_rows) as usize;
                if std::mem::replace(&mut self.live[slot], false) {
                    self.dead_rows += 1;
                    dead_delta += 1;
                }
            }
        }
        self.meter(-dead_delta, 0, new_tombstones);
        let deleted = (new_tombstones + dead_delta) as u64;
        tde_obs::metrics::delta_metrics().deletes.add(deleted);
        Ok(deleted)
    }

    /// Update = delete the old rows, append the new images. `row_ids`
    /// and `rows` must pair up.
    pub fn update(&mut self, row_ids: &[u64], rows: &[Vec<Value>]) -> io::Result<()> {
        if row_ids.len() != rows.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "update pairs {} row id(s) with {} replacement row(s)",
                    row_ids.len(),
                    rows.len()
                ),
            ));
        }
        // Validate the appends first so a bad replacement image does
        // not leave the old rows half-deleted.
        let ncols = self.schema.len();
        for row in rows {
            if row.len() != ncols {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("row has {} value(s), expected {ncols}", row.len()),
                ));
            }
            for (v, (name, dtype)) in row.iter().zip(&self.schema) {
                raw_for(name, *dtype, v)?;
            }
        }
        self.delete(row_ids)?;
        self.append_rows(rows)
    }

    /// Restore persisted tombstones (wire decode already validated
    /// range and order).
    pub(crate) fn restore_tombstones(&mut self, ts: BTreeSet<u64>) {
        let n = ts.len() as i64;
        self.tombstones = ts;
        self.meter(0, 0, n);
    }

    /// Restore persisted delta columns (all rows live — the wire format
    /// only persists live rows).
    pub(crate) fn restore_delta(&mut self, cols: Vec<DeltaVals>) {
        let rows = cols.first().map_or(0, DeltaVals::len);
        let bytes: usize = cols
            .iter()
            .map(|c| match c {
                DeltaVals::Ints(v) => v.len() * 8,
                DeltaVals::Strs(v) => v
                    .iter()
                    .map(|s| s.as_ref().map_or(8, |s| 24 + s.len()))
                    .sum(),
            })
            .sum::<usize>()
            + rows;
        self.cols = cols;
        self.live = vec![true; rows];
        self.dead_rows = 0;
        self.bytes = bytes;
        self.meter(rows as i64, bytes as i64, 0);
    }

    /// Swap in a new base (after an atomic re-save). The replacement
    /// must describe the same logical table.
    pub(crate) fn rebind(&mut self, base: BaseTable) {
        assert_eq!(base.row_count(), self.base_rows, "rebind changed rows");
        assert_eq!(base.schema(), self.schema, "rebind changed schema");
        self.base = base;
    }

    /// Materialize the *base* table eagerly (save path — the delta is
    /// persisted separately, as aux payloads).
    pub(crate) fn materialize_base(&self) -> io::Result<Table> {
        match &self.base {
            BaseTable::Eager(t) => Ok((**t).clone()),
            BaseTable::Paged(t) => t.load_all(),
        }
    }

    /// Reset the buffer after a compaction drained it into `base`.
    pub(crate) fn reset_onto(&mut self, base: BaseTable) {
        self.meter(
            -(self.delta_rows() as i64),
            -(self.bytes as i64),
            -(self.tombstones.len() as i64),
        );
        self.schema = base.schema();
        self.base_rows = base.row_count();
        self.base = base;
        self.cols = self
            .schema
            .iter()
            .map(|&(_, dtype)| DeltaVals::empty_for(dtype))
            .collect();
        self.live.clear();
        self.dead_rows = 0;
        self.tombstones.clear();
        self.bytes = 0;
    }

    /// Freeze the buffer into an immutable merge snapshot for
    /// [`tde_exec::merged_scan::MergedScan`].
    ///
    /// Per column this (a) translates buffered values into the base's
    /// stored representation — heap tokens or dictionary codes —
    /// extending a *clone* of the heap/dictionary only when the delta
    /// introduces values the base never saw (base tokens/codes stay
    /// valid: both structures are append-only), and (b) widens every
    /// metadata claim the delta may have falsified, so the optimizer
    /// never fetch-joins or run-folds through a lie.
    pub fn snapshot(&self) -> io::Result<Arc<MergedSource>> {
        let handles = self.base.handles()?;
        let mut fields: Vec<Field> = handles.iter().map(|h| h.field(false)).collect();
        let live_rows = self.delta_rows() as usize;
        let mut delta_cols: Vec<Vec<i64>> = Vec::with_capacity(fields.len());
        for (col, field) in self.cols.iter().zip(fields.iter_mut()) {
            let raws = self.project_column(col, field)?;
            self.widen_metadata(field, &raws);
            delta_cols.push(raws);
        }
        let mut blocks = Vec::new();
        let mut at = 0usize;
        while at < live_rows {
            let end = (at + BLOCK_ROWS).min(live_rows);
            blocks.push(Block::new(
                delta_cols.iter().map(|c| c[at..end].to_vec()).collect(),
            ));
            at = end;
        }
        Ok(Arc::new(MergedSource::new(
            self.name().to_owned(),
            handles,
            fields,
            self.base_rows,
            Arc::new(self.tombstones.iter().copied().collect()),
            blocks,
        )))
    }

    /// Translate one buffered column's live rows into the merged
    /// representation, extending `field.repr`'s heap/dictionary if the
    /// delta holds values the base domain lacks.
    fn project_column(&self, col: &DeltaVals, field: &mut Field) -> io::Result<Vec<i64>> {
        let live = |i: usize| self.live[i];
        match (col, &field.repr) {
            (DeltaVals::Ints(vals), Repr::Scalar) => Ok(vals
                .iter()
                .enumerate()
                .filter(|&(i, _)| live(i))
                .map(|(_, &v)| v)
                .collect()),
            (DeltaVals::Ints(vals), Repr::DictIndex(dict)) => {
                let mut code_of: HashMap<i64, i64> = dict
                    .iter()
                    .enumerate()
                    .map(|(c, &v)| (v, c as i64))
                    .collect();
                let mut merged: Option<Vec<i64>> = None;
                let raws = vals
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| live(i))
                    .map(|(_, &v)| {
                        *code_of.entry(v).or_insert_with(|| {
                            let m = merged.get_or_insert_with(|| dict.as_ref().clone());
                            m.push(v);
                            (m.len() - 1) as i64
                        })
                    })
                    .collect();
                if let Some(m) = merged {
                    field.repr = Repr::DictIndex(Arc::new(m));
                }
                Ok(raws)
            }
            (DeltaVals::Strs(vals), Repr::Token(heap)) => {
                let heap = Arc::clone(heap);
                // Heaps do not deduplicate, so several tokens may map to
                // one string; any of them is a valid representative.
                let token_of: HashMap<&str, i64> =
                    heap.iter().map(|(t, s)| (s, t as i64)).collect();
                let mut overlay: Option<StringHeap> = None;
                let mut fresh: Vec<(String, i64)> = Vec::new();
                let mut raws = Vec::new();
                for (i, s) in vals.iter().enumerate() {
                    if !live(i) {
                        continue;
                    }
                    let Some(s) = s else {
                        raws.push(NULL_TOKEN as i64);
                        continue;
                    };
                    if let Some(&t) = token_of.get(s.as_str()) {
                        raws.push(t);
                    } else if let Some((_, t)) = fresh.iter().find(|(f, _)| f == s) {
                        raws.push(*t);
                    } else {
                        let h = overlay.get_or_insert_with(|| {
                            StringHeap::from_bytes(heap.as_bytes().to_vec())
                        });
                        let t = h.append(s) as i64;
                        fresh.push((s.clone(), t));
                        raws.push(t);
                    }
                }
                drop(token_of);
                if let Some(h) = overlay {
                    field.repr = Repr::Token(Arc::new(h));
                    // The appended entries land at the end in insertion
                    // order — a sorted heap is almost certainly sorted
                    // no longer.
                    field.metadata.sorted_heap_tokens = Knowledge::Unknown;
                }
                Ok(raws)
            }
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "column {:?}: buffered kind does not match base representation",
                    field.name
                ),
            )),
        }
    }

    /// Widen `field.metadata` for the live delta rows `raws` (already
    /// in the stored domain) and the tombstone set. Claims are only ever
    /// *weakened* to `Unknown` — never flipped to `False`, which would
    /// itself be a new claim the fuzzer's claim-verification oracle
    /// could catch lying.
    fn widen_metadata(&self, field: &mut Field, raws: &[i64]) {
        let md = &mut field.metadata;
        if !raws.is_empty() {
            md.sorted_asc = Knowledge::Unknown;
            md.dense = Knowledge::Unknown;
            md.unique = Knowledge::Unknown;
            md.cardinality = None;
            md.width = Width::W8;
            // min/max claims bound every stored raw, NULL sentinels
            // included — the builder's load statistics do the same, and
            // the hash-strategy key packing banks on the envelope being
            // total (an out-of-envelope sentinel would index a direct
            // table out of bounds). Dictionary claims live in the
            // *value* domain: resolve codes through the (possibly
            // merged) dictionary before widening.
            let null_raw = match (&field.repr, field.dtype) {
                (Repr::Token(_), _) => NULL_TOKEN as i64,
                (_, DataType::Real) => null_real().to_bits() as i64,
                _ => NULL_I64,
            };
            let dict = match &field.repr {
                Repr::DictIndex(d) => Some(Arc::clone(d)),
                _ => None,
            };
            for &r in raws {
                let v = match &dict {
                    Some(d) => d[r as usize],
                    None => r,
                };
                if v == null_raw {
                    md.has_nulls = Knowledge::True;
                }
                md.min = md.min.map(|m| m.min(v));
                md.max = md.max.map(|m| m.max(v));
            }
        }
        if !self.tombstones.is_empty() {
            // Deletion preserves sortedness and uniqueness and can only
            // shrink the value envelope (min/max stay valid bounds) —
            // but a dense range with holes is dense no more.
            md.dense = Knowledge::Unknown;
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use tde_exec::merged_scan::MergedScan;
    use tde_exec::{count_rows, drain, Operator};
    use tde_storage::{ColumnBuilder, EncodingPolicy};

    pub(crate) fn people(rows: i64) -> Arc<Table> {
        let mut id = ColumnBuilder::new("id", DataType::Integer, EncodingPolicy::default());
        let mut name = ColumnBuilder::new("name", DataType::Str, EncodingPolicy::default());
        let mut score = ColumnBuilder::new("score", DataType::Real, EncodingPolicy::default());
        for i in 0..rows {
            id.append_i64(i);
            name.append_str(Some(["ann", "bob", "cat"][i as usize % 3]));
            score.append_f64(i as f64 / 2.0);
        }
        Arc::new(Table::new(
            "people",
            vec![
                id.finish().column,
                name.finish().column,
                score.finish().column,
            ],
        ))
    }

    fn row(id: i64, name: Option<&str>, score: Option<f64>) -> Vec<Value> {
        vec![
            Value::Int(id),
            name.map_or(Value::Null, |s| Value::Str(s.into())),
            score.map_or(Value::Null, Value::Real),
        ]
    }

    #[test]
    fn append_delete_update_roundtrip() {
        let mut dt = DeltaTable::from_eager(people(100));
        assert!(dt.is_clean());
        dt.append_rows(&[row(100, Some("dee"), Some(1.5)), row(101, None, None)])
            .unwrap();
        assert_eq!(dt.delta_rows(), 2);
        assert_eq!(dt.delete(&[0, 5, 100]).unwrap(), 3); // 2 base + delta row 100
        assert_eq!(dt.tombstone_count(), 2);
        assert_eq!(dt.delta_rows(), 1);
        assert_eq!(dt.delete(&[5]).unwrap(), 0); // idempotent
        assert_eq!(dt.merged_rows(), 100 - 2 + 1);
        dt.update(&[3], &[row(300, Some("eve"), Some(9.0))])
            .unwrap();
        assert_eq!(dt.tombstone_count(), 3);
        assert_eq!(dt.delta_rows(), 2);
    }

    #[test]
    fn validation_rejects_bad_rows() {
        let mut dt = DeltaTable::from_eager(people(10));
        // Wrong width.
        assert!(dt.append_rows(&[vec![Value::Int(1)]]).is_err());
        // Wrong type.
        let bad = vec![Value::Str("x".into()), Value::Int(2), Value::Real(0.0)];
        assert!(dt.append_rows(&[bad]).is_err());
        // A failed batch leaves nothing behind.
        assert_eq!(dt.delta_rows(), 0);
        assert_eq!(dt.buffered_bytes(), 0);
        // Out-of-range delete fails whole.
        assert!(dt.delete(&[3, 10_000]).is_err());
        assert_eq!(dt.tombstone_count(), 0);
    }

    #[test]
    fn memory_budget_bounds_appends() {
        let mut dt =
            DeltaTable::with_config(BaseTable::Eager(people(10)), DeltaConfig { max_bytes: 200 });
        let r = row(1, Some("a-long-enough-string"), Some(2.0));
        dt.append_rows(std::slice::from_ref(&r)).unwrap();
        let err = loop {
            match dt.append_rows(std::slice::from_ref(&r)) {
                Ok(()) => {}
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::OutOfMemory);
        assert!(dt.buffered_bytes() <= 200);
    }

    #[test]
    fn snapshot_merges_and_extends_domains() {
        let mut dt = DeltaTable::from_eager(people(50));
        dt.append_rows(&[
            row(50, Some("zed"), Some(4.5)), // "zed" is new to the heap
            row(51, Some("ann"), None),      // "ann" reuses a base token
        ])
        .unwrap();
        dt.delete(&[0, 49]).unwrap();
        let src = dt.snapshot().unwrap();
        assert_eq!(src.merged_rows(), 50 - 2 + 2);
        // The merged heap must resolve both old and new strings.
        let scan = MergedScan::all(Arc::clone(&src), false);
        let schema = scan.schema().clone();
        let blocks = drain(Box::new(scan));
        let names: Vec<Value> = blocks
            .iter()
            .flat_map(|b| b.columns[1].iter().map(|&t| schema.fields[1].value_of(t)))
            .collect();
        assert_eq!(names.len(), 50);
        assert_eq!(names[0], Value::Str("bob".into())); // row 0 tombstoned
        assert_eq!(names[48], Value::Str("zed".into()));
        assert_eq!(names[49], Value::Str("ann".into()));
        // Claims the delta falsified are widened, never asserted.
        for f in &schema.fields {
            assert_ne!(f.metadata.dense, Knowledge::True);
        }
    }

    #[test]
    fn snapshot_of_clean_delta_is_base_scan() {
        let t = people(500);
        let dt = DeltaTable::from_eager(Arc::clone(&t));
        let src = dt.snapshot().unwrap();
        assert_eq!(
            count_rows(Box::new(MergedScan::all(src, false))),
            t.row_count()
        );
    }

    #[test]
    fn dictionary_column_extends_on_new_value() {
        let codes: Vec<i64> = (0..400i64).map(|i| i % 2).collect();
        let r = tde_encodings::dynamic::encode_all(&codes, Width::W8, false);
        let col = tde_storage::Column {
            name: "d".into(),
            dtype: DataType::Integer,
            data: r.stream,
            compression: tde_storage::Compression::Array {
                dictionary: vec![10, 20],
                sorted: true,
            },
            metadata: tde_encodings::ColumnMetadata::unknown(),
        };
        let mut dt = DeltaTable::from_eager(Arc::new(Table::new("t", vec![col])));
        dt.append_rows(&[
            vec![Value::Int(20)],
            vec![Value::Int(77)],
            vec![Value::Null],
        ])
        .unwrap();
        let src = dt.snapshot().unwrap();
        let scan = MergedScan::all(src, true); // expand to scalars
        let blocks = drain(Box::new(scan));
        let all: Vec<i64> = blocks.iter().flat_map(|b| b.columns[0].clone()).collect();
        assert_eq!(all.len(), 403);
        assert_eq!(&all[400..], &[20, 77, NULL_I64]);
    }
}

//! Compaction: drain the delta back into read-optimized storage.
//!
//! A merge-on-read snapshot answers queries correctly but at a cost —
//! widened metadata claims suspend the tactical optimizations, a live
//! delta forces full-width base materialization on the paged path, and
//! the buffer itself holds uncompressed rows. [`DeltaTable::compact`]
//! pays that debt: it streams the merged table through
//! [`tde_exec::flow_table`]'s dynamic per-column encoder (MorphStore
//! would call this re-morphing), producing a fresh table whose every
//! column was re-encoded against the *post-mutation* value
//! distribution. Shared heaps survive by reference: the merged snapshot
//! extends the base heap append-only and FlowTable's frozen-token path
//! re-uses that same `Arc`, so no string bytes are copied per
//! compaction.
//!
//! [`DeltaExtract`] ties the store to the v2 paged file: deltas persist
//! as opaque aux payloads in the footer directory, every save goes
//! through `tde-pager`'s temp-file + atomic-rename writer, and
//! [`DeltaExtract::source`] hands queries either a lazy clean table or
//! a merge snapshot. [`Compactor`] drives compaction from a background
//! thread once a threshold trips.

use crate::store::{BaseTable, DeltaConfig, DeltaTable};
use crate::wire;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tde_exec::flow_table::{flow_table, FlowTableOptions};
use tde_exec::merged_scan::{MergedScan, MergedSource};
use tde_io::StorageIo;
use tde_pager::{save_v2_with_aux_atomic_io, PagedDatabase, PagedTable, PoolConfig, TableAux};
use tde_storage::{Database, EncodingPolicy, Table};

impl DeltaTable {
    /// Compact with the default encoding policy.
    pub fn compact(&mut self) -> io::Result<Arc<Table>> {
        self.compact_with(EncodingPolicy::default())
    }

    /// Drain the buffer through the dynamic encoder: the merged stream
    /// (base − tombstones ∪ delta) is rebuilt into a fresh table that
    /// becomes the new (eager) base, and the buffer empties. Returns
    /// the rebuilt table.
    pub fn compact_with(&mut self, policy: EncodingPolicy) -> io::Result<Arc<Table>> {
        let t0 = Instant::now();
        let delta_rows = self.delta_rows();
        let tombstones = self.tombstone_count();
        let name = self.name().to_owned();
        let src = self.snapshot()?;
        let scan = MergedScan::all(src, false);
        let built = flow_table(
            Box::new(scan),
            &name,
            FlowTableOptions {
                policy,
                parallel: true,
            },
        );
        let table = built.table;
        for c in &table.columns {
            tde_obs::metrics::compaction_rows_reencoded(
                &format!("{:?}", c.data.algorithm()),
                c.len(),
            );
        }
        let nanos = t0.elapsed().as_nanos() as u64;
        tde_obs::metrics::compaction(nanos);
        tde_obs::timeline::compaction(&name, delta_rows, tombstones, table.row_count(), nanos);
        tde_obs::emit(|| tde_obs::Event::Compaction {
            table: name.clone(),
            delta_rows,
            tombstones,
            rows_out: table.row_count(),
            nanos,
        });
        self.reset_onto(BaseTable::Eager(Arc::clone(&table)));
        Ok(table)
    }
}

/// What a query should scan for a table of a [`DeltaExtract`].
#[derive(Debug, Clone)]
pub enum ScanSource {
    /// No live mutations: scan the paged table directly — projections
    /// stay lazy, kernels stay pushed.
    Clean(PagedTable),
    /// Live mutations: scan this merge snapshot.
    Merged(Arc<MergedSource>),
}

/// A v2 paged extract plus the delta buffers of its mutated tables.
#[derive(Debug)]
pub struct DeltaExtract {
    path: PathBuf,
    db: PagedDatabase,
    deltas: HashMap<String, DeltaTable>,
    config: DeltaConfig,
    /// Backend for every read and (re)save of this extract; persists
    /// across [`DeltaExtract::save`] reopens so fault-injection tests
    /// cover the whole lifecycle.
    storage: Arc<dyn StorageIo>,
}

impl DeltaExtract {
    /// Open a v2 file, restoring any persisted delta/tombstone aux
    /// payloads into live buffers.
    pub fn open(path: impl AsRef<Path>) -> io::Result<DeltaExtract> {
        DeltaExtract::open_with(path, DeltaConfig::default())
    }

    /// As [`DeltaExtract::open`] with an explicit buffer budget.
    pub fn open_with(path: impl AsRef<Path>, config: DeltaConfig) -> io::Result<DeltaExtract> {
        DeltaExtract::open_with_io(path, config, Arc::new(tde_io::RealIo))
    }

    /// As [`DeltaExtract::open_with`], with every filesystem operation —
    /// the open itself, demand loads, atomic saves and their reopens —
    /// routed through the given [`StorageIo`] backend.
    pub fn open_with_io(
        path: impl AsRef<Path>,
        config: DeltaConfig,
        storage: Arc<dyn StorageIo>,
    ) -> io::Result<DeltaExtract> {
        let path = path.as_ref().to_path_buf();
        let db = PagedDatabase::open_with_io(&path, PoolConfig::default(), &*storage)?;
        let mut deltas = HashMap::new();
        let names: Vec<String> = db.table_names().iter().map(|s| s.to_string()).collect();
        for name in names {
            let pt = db.table(&name).expect("listed table resolves");
            if !pt.has_delta() && !pt.has_tombstone() {
                continue;
            }
            let mut dt = DeltaTable::with_config(BaseTable::Paged(pt.clone()), config.clone());
            if let Some(bytes) = pt.tombstone_bytes()? {
                dt.restore_tombstones(wire::decode_tombstones(&bytes, dt.base_rows())?);
            }
            if let Some(bytes) = pt.delta_bytes()? {
                let cols = wire::decode_delta(&bytes, dt.schema())?;
                dt.restore_delta(cols);
            }
            deltas.insert(name, dt);
        }
        Ok(DeltaExtract {
            path,
            db,
            deltas,
            config,
            storage,
        })
    }

    /// The file backing this extract.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The underlying paged database.
    pub fn database(&self) -> &PagedDatabase {
        &self.db
    }

    /// Table names in directory order.
    pub fn table_names(&self) -> Vec<String> {
        self.db
            .table_names()
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    /// The delta buffer of a table, if one is live.
    pub fn delta(&self, name: &str) -> Option<&DeltaTable> {
        self.deltas.get(name)
    }

    /// The delta buffer of a table, created on first mutation.
    pub fn delta_mut(&mut self, name: &str) -> io::Result<&mut DeltaTable> {
        if !self.deltas.contains_key(name) {
            let pt = self.db.table(name).ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("no table {name:?}"))
            })?;
            self.deltas.insert(
                name.to_owned(),
                DeltaTable::with_config(BaseTable::Paged(pt), self.config.clone()),
            );
        }
        Ok(self.deltas.get_mut(name).expect("just inserted"))
    }

    /// What a query over `name` should scan: the lazy paged table when
    /// the delta is clean, a merge snapshot otherwise.
    pub fn source(&self, name: &str) -> io::Result<ScanSource> {
        let pt = self
            .db
            .table(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no table {name:?}")))?;
        match self.deltas.get(name) {
            Some(dt) if !dt.is_clean() => Ok(ScanSource::Merged(dt.snapshot()?)),
            _ => Ok(ScanSource::Clean(pt)),
        }
    }

    /// Persist: rewrite the file atomically (temp file + rename) with
    /// every table's current base and the live buffers as aux payloads,
    /// then reopen and rebind the buffers onto the fresh handles.
    pub fn save(&mut self) -> io::Result<()> {
        let mut out = Database::new();
        for name in self.table_names() {
            let table = match self.deltas.get(&name) {
                Some(dt) => dt.materialize_base()?,
                None => self
                    .db
                    .table(&name)
                    .expect("listed table resolves")
                    .load_all()?,
            };
            out.add_table(table);
        }
        let mut aux = HashMap::new();
        for (name, dt) in &self.deltas {
            if dt.is_clean() {
                continue;
            }
            aux.insert(
                name.clone(),
                TableAux {
                    delta: (dt.delta_rows() > 0)
                        .then(|| wire::encode_delta(dt.schema(), &dt.cols, &dt.live)),
                    tombstone: (dt.tombstone_count() > 0)
                        .then(|| wire::encode_tombstones(&dt.tombstones)),
                },
            );
        }
        save_v2_with_aux_atomic_io(&out, &aux, &self.path, &*self.storage)?;
        self.db = PagedDatabase::open_with_io(&self.path, PoolConfig::default(), &*self.storage)?;
        self.deltas.retain(|_, dt| !dt.is_clean());
        for (name, dt) in &mut self.deltas {
            let pt = self.db.table(name).expect("saved table resolves");
            dt.rebind(BaseTable::Paged(pt));
        }
        Ok(())
    }

    /// Compact one table and persist the result.
    pub fn compact(&mut self, name: &str) -> io::Result<()> {
        if let Some(dt) = self.deltas.get_mut(name) {
            dt.compact()?;
        }
        self.save()
    }
}

/// When the background [`Compactor`] fires.
#[derive(Debug, Clone, Copy)]
pub struct CompactorConfig {
    /// Compact once the live delta reaches this many rows.
    pub max_delta_rows: u64,
    /// ... or this many tombstones.
    pub max_tombstones: u64,
    /// ... or this many buffered bytes.
    pub max_delta_bytes: usize,
    /// How often the thread re-checks the thresholds.
    pub poll: Duration,
}

impl Default for CompactorConfig {
    fn default() -> CompactorConfig {
        CompactorConfig {
            max_delta_rows: 100_000,
            max_tombstones: 100_000,
            max_delta_bytes: 16 << 20,
            poll: Duration::from_millis(100),
        }
    }
}

/// A background thread that compacts a shared [`DeltaTable`] whenever
/// a [`CompactorConfig`] threshold trips. Dropping (or
/// [`Compactor::stop`]ping) joins the thread.
#[derive(Debug)]
pub struct Compactor {
    handle: Option<JoinHandle<()>>,
    shutdown: mpsc::Sender<()>,
}

impl Compactor {
    /// Spawn the driver over `store`.
    pub fn spawn(store: Arc<parking_lot::Mutex<DeltaTable>>, cfg: CompactorConfig) -> Compactor {
        let (shutdown, rx) = mpsc::channel();
        let handle = std::thread::Builder::new()
            .name("tde-compactor".into())
            .spawn(move || loop {
                match rx.recv_timeout(cfg.poll) {
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => return,
                }
                let mut dt = store.lock();
                if dt.delta_rows() >= cfg.max_delta_rows
                    || dt.tombstone_count() >= cfg.max_tombstones
                    || dt.buffered_bytes() >= cfg.max_delta_bytes
                {
                    // A failed background compaction (e.g. paged I/O
                    // error) leaves the buffer intact; the next poll
                    // retries.
                    let _ = dt.compact();
                }
            })
            .expect("spawn compactor thread");
        Compactor {
            handle: Some(handle),
            shutdown,
        }
    }

    /// Stop and join the driver.
    pub fn stop(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        let _ = self.shutdown.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::tests::people;
    use std::sync::Arc;
    use tde_exec::{drain, Operator};
    use tde_types::Value;

    fn row(id: i64, name: &str, score: f64) -> Vec<Value> {
        vec![Value::Int(id), Value::Str(name.into()), Value::Real(score)]
    }

    /// Materialize every row of a source as display strings — the
    /// comparison key for differential checks.
    fn rows_of(src: &Arc<MergedSource>) -> Vec<Vec<String>> {
        let scan = MergedScan::all(Arc::clone(src), false);
        let schema = scan.schema().clone();
        let blocks = drain(Box::new(scan));
        let mut out = Vec::new();
        for b in blocks {
            for r in 0..b.len {
                out.push(
                    (0..b.columns.len())
                        .map(|c| schema.fields[c].value_of(b.columns[c][r]).to_string())
                        .collect(),
                );
            }
        }
        out
    }

    #[test]
    fn compaction_drains_and_preserves_rows() {
        let mut dt = DeltaTable::from_eager(people(1000));
        dt.append_rows(&[row(1000, "zed", 7.5), row(1001, "ann", -1.0)])
            .unwrap();
        dt.delete(&[0, 500, 999]).unwrap();
        let before = rows_of(&dt.snapshot().unwrap());
        let table = dt.compact().unwrap();
        assert!(dt.is_clean());
        assert_eq!(table.row_count(), 1000 - 3 + 2);
        let after = rows_of(&dt.snapshot().unwrap());
        assert_eq!(before, after, "compaction changed query results");
    }

    #[test]
    fn compaction_shares_the_heap() {
        let base = people(300);
        let base_heap = Arc::clone(base.column("name").unwrap().heap().unwrap());
        let mut dt = DeltaTable::from_eager(base);
        // No new strings: the rebuilt column must reference the very
        // same heap allocation.
        dt.append_rows(&[row(300, "ann", 0.0)]).unwrap();
        let table = dt.compact().unwrap();
        let new_heap = table.column("name").unwrap().heap().unwrap();
        assert!(Arc::ptr_eq(&base_heap, new_heap), "heap was copied");
    }

    #[test]
    fn extract_saves_restores_and_compacts() {
        let dir = std::env::temp_dir().join(format!("tde-delta-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("extract.tde2");
        let mut db = Database::new();
        db.add_table((*people(200)).clone());
        tde_pager::save_v2_atomic(&db, &path).unwrap();

        // Mutate and persist.
        let mut ex = DeltaExtract::open(&path).unwrap();
        {
            let dt = ex.delta_mut("people").unwrap();
            dt.append_rows(&[row(200, "new-name", 3.25)]).unwrap();
            dt.delete(&[7]).unwrap();
        }
        let live = rows_of(&ex.delta("people").unwrap().snapshot().unwrap());
        ex.save().unwrap();
        drop(ex);

        // Reopen: the buffer is restored from the aux payloads.
        let ex2 = DeltaExtract::open(&path).unwrap();
        let dt = ex2.delta("people").expect("delta restored");
        assert_eq!(dt.delta_rows(), 1);
        assert_eq!(dt.tombstone_count(), 1);
        let restored = rows_of(&dt.snapshot().unwrap());
        assert_eq!(live, restored, "persistence changed query results");
        assert!(matches!(
            ex2.source("people").unwrap(),
            ScanSource::Merged(_)
        ));
        drop(ex2);

        // Compact: the aux sections disappear and the source is clean.
        let mut ex3 = DeltaExtract::open(&path).unwrap();
        ex3.compact("people").unwrap();
        assert!(matches!(
            ex3.source("people").unwrap(),
            ScanSource::Clean(_)
        ));
        let pt = ex3.database().table("people").unwrap();
        assert!(!pt.has_delta() && !pt.has_tombstone());
        assert_eq!(pt.row_count(), 200);
        drop(ex3);

        let ex4 = DeltaExtract::open(&path).unwrap();
        assert!(ex4.delta("people").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn background_compactor_fires_on_threshold() {
        let store = Arc::new(parking_lot::Mutex::new(DeltaTable::from_eager(people(50))));
        let compactor = Compactor::spawn(
            Arc::clone(&store),
            CompactorConfig {
                max_delta_rows: 10,
                poll: Duration::from_millis(5),
                ..CompactorConfig::default()
            },
        );
        {
            let mut dt = store.lock();
            let rows: Vec<Vec<Value>> = (0..25).map(|i| row(50 + i, "bulk", i as f64)).collect();
            dt.append_rows(&rows).unwrap();
        }
        // Wait for the driver to notice.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            {
                let dt = store.lock();
                if dt.is_clean() {
                    assert_eq!(dt.base_rows(), 75);
                    break;
                }
            }
            assert!(Instant::now() < deadline, "compactor never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        compactor.stop();
        // Below-threshold mutations stay buffered.
        let compactor = Compactor::spawn(
            Arc::clone(&store),
            CompactorConfig {
                max_delta_rows: 1000,
                poll: Duration::from_millis(5),
                ..CompactorConfig::default()
            },
        );
        store.lock().append_rows(&[row(999, "x", 0.0)]).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(store.lock().delta_rows(), 1);
        drop(compactor);
    }
}

//! Wire format for the delta/tombstone aux payloads.
//!
//! The v2 paged format (crate `tde-pager`) stores these as opaque byte
//! extents in the footer directory; this module owns their contents.
//! Readers apply the same discipline as `tde_storage::wire`: every
//! length prefix is a bounded read, every tag is validated, counts must
//! reconcile, and trailing bytes are an error — a truncated or
//! bit-flipped payload yields a clean [`io::Error`], never a panic or
//! an over-allocation.
//!
//! Delta payload (all little-endian):
//!
//! ```text
//! u8  version (= 1)
//! u64 rows                      -- live rows only; tombstoned appends
//! u32 ncols                        are dropped at save time
//! per column:
//!   str  name                   -- must match the base schema
//!   u8   dtype tag (0..=5)
//!   rows values:
//!     Str:    u8 presence, then str when present
//!     others: i64 raw (Real as f64 bits)
//! ```
//!
//! Tombstone payload:
//!
//! ```text
//! u8  version (= 1)
//! u64 count
//! count u64 row ids             -- strictly increasing, < base rows
//! ```

use crate::store::DeltaVals;
use std::collections::BTreeSet;
use std::io::{self, Read};
use tde_storage::wire::{corrupt, read_str, read_u32, read_u64, write_str};
use tde_types::DataType;

const DELTA_VERSION: u8 = 1;
const TOMBSTONE_VERSION: u8 = 1;

fn dtype_tag(dtype: DataType) -> u8 {
    match dtype {
        DataType::Bool => 0,
        DataType::Integer => 1,
        DataType::Real => 2,
        DataType::Date => 3,
        DataType::Timestamp => 4,
        DataType::Str => 5,
    }
}

fn dtype_from_tag(tag: u8) -> io::Result<DataType> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Integer,
        2 => DataType::Real,
        3 => DataType::Date,
        4 => DataType::Timestamp,
        5 => DataType::Str,
        _ => return Err(corrupt("bad delta column dtype tag")),
    })
}

fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_i64(r: &mut impl Read) -> io::Result<i64> {
    Ok(read_u64(r)? as i64)
}

/// Reject unconsumed input — a payload with trailing bytes is corrupt
/// even if its prefix parses.
fn expect_drained(r: &mut &[u8], what: &str) -> io::Result<()> {
    if r.is_empty() {
        Ok(())
    } else {
        Err(corrupt(what))
    }
}

/// Serialize the live delta rows of `cols` (schema order; `live[i]`
/// gates row `i`).
pub(crate) fn encode_delta(
    schema: &[(String, DataType)],
    cols: &[DeltaVals],
    live: &[bool],
) -> Vec<u8> {
    let rows = live.iter().filter(|&&l| l).count() as u64;
    let mut out = vec![DELTA_VERSION];
    out.extend_from_slice(&rows.to_le_bytes());
    out.extend_from_slice(&(schema.len() as u32).to_le_bytes());
    for ((name, dtype), col) in schema.iter().zip(cols) {
        write_str(&mut out, name).expect("vec write");
        out.push(dtype_tag(*dtype));
        match col {
            DeltaVals::Ints(vals) => {
                for (i, v) in vals.iter().enumerate() {
                    if live[i] {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            DeltaVals::Strs(vals) => {
                for (i, v) in vals.iter().enumerate() {
                    if !live[i] {
                        continue;
                    }
                    match v {
                        None => out.push(0),
                        Some(s) => {
                            out.push(1);
                            write_str(&mut out, s).expect("vec write");
                        }
                    }
                }
            }
        }
    }
    out
}

/// Decode a delta payload, validating it against the base table's
/// schema: column count, names and types must all agree — a payload
/// saved against a different schema is corruption, not data.
pub(crate) fn decode_delta(
    bytes: &[u8],
    schema: &[(String, DataType)],
) -> io::Result<Vec<DeltaVals>> {
    let mut r = bytes;
    if read_u8(&mut r)? != DELTA_VERSION {
        return Err(corrupt("unsupported delta payload version"));
    }
    let rows = read_u64(&mut r)?;
    if rows > bytes.len() as u64 {
        // Each row costs at least one byte; an absurd count cannot fit.
        return Err(corrupt("delta payload row count exceeds payload size"));
    }
    let ncols = read_u32(&mut r)? as usize;
    if ncols != schema.len() {
        return Err(corrupt("delta payload column count mismatch"));
    }
    let mut cols = Vec::with_capacity(ncols);
    for (name, dtype) in schema {
        let got = read_str(&mut r)?;
        if got != *name {
            return Err(corrupt("delta payload column name mismatch"));
        }
        let got_dtype = dtype_from_tag(read_u8(&mut r)?)?;
        if got_dtype != *dtype {
            return Err(corrupt("delta payload column type mismatch"));
        }
        cols.push(match dtype {
            DataType::Str => {
                let mut vals = Vec::with_capacity(rows as usize);
                for _ in 0..rows {
                    vals.push(match read_u8(&mut r)? {
                        0 => None,
                        1 => Some(read_str(&mut r)?),
                        _ => return Err(corrupt("bad delta string presence byte")),
                    });
                }
                DeltaVals::Strs(vals)
            }
            _ => {
                let mut vals = Vec::with_capacity(rows as usize);
                for _ in 0..rows {
                    vals.push(read_i64(&mut r)?);
                }
                DeltaVals::Ints(vals)
            }
        });
    }
    expect_drained(&mut r, "trailing bytes after delta payload")?;
    Ok(cols)
}

/// Serialize a tombstone set (already sorted — it is a `BTreeSet`).
pub(crate) fn encode_tombstones(ts: &BTreeSet<u64>) -> Vec<u8> {
    let mut out = vec![TOMBSTONE_VERSION];
    out.extend_from_slice(&(ts.len() as u64).to_le_bytes());
    for &t in ts {
        out.extend_from_slice(&t.to_le_bytes());
    }
    out
}

/// Decode a tombstone payload; ids must be strictly increasing and
/// inside `0..base_rows`.
pub(crate) fn decode_tombstones(bytes: &[u8], base_rows: u64) -> io::Result<BTreeSet<u64>> {
    let mut r = bytes;
    if read_u8(&mut r)? != TOMBSTONE_VERSION {
        return Err(corrupt("unsupported tombstone payload version"));
    }
    let count = read_u64(&mut r)?;
    if count.checked_mul(8).is_none_or(|b| b > r.len() as u64) {
        return Err(corrupt("tombstone count exceeds payload size"));
    }
    let mut ts = BTreeSet::new();
    let mut prev: Option<u64> = None;
    for _ in 0..count {
        let id = read_u64(&mut r)?;
        if prev.is_some_and(|p| p >= id) {
            return Err(corrupt("tombstone ids not strictly increasing"));
        }
        if id >= base_rows {
            return Err(corrupt("tombstone id beyond base rows"));
        }
        prev = Some(id);
        ts.insert(id);
    }
    expect_drained(&mut r, "trailing bytes after tombstone payload")?;
    Ok(ts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Vec<(String, DataType)> {
        vec![
            ("id".to_owned(), DataType::Integer),
            ("name".to_owned(), DataType::Str),
            ("score".to_owned(), DataType::Real),
        ]
    }

    fn sample_cols() -> Vec<DeltaVals> {
        vec![
            DeltaVals::Ints(vec![1, 2, 3]),
            DeltaVals::Strs(vec![Some("a".into()), None, Some("ccc".into())]),
            DeltaVals::Ints(vec![
                1.5f64.to_bits() as i64,
                tde_types::sentinel::null_real().to_bits() as i64,
                0,
            ]),
        ]
    }

    #[test]
    fn delta_roundtrip_drops_dead_rows() {
        let cols = sample_cols();
        let bytes = encode_delta(&schema(), &cols, &[true, false, true]);
        let back = decode_delta(&bytes, &schema()).unwrap();
        assert_eq!(back[0], DeltaVals::Ints(vec![1, 3]));
        assert_eq!(
            back[1],
            DeltaVals::Strs(vec![Some("a".into()), Some("ccc".into())])
        );
    }

    #[test]
    fn delta_corruption_matrix() {
        let cols = sample_cols();
        let good = encode_delta(&schema(), &cols, &[true, true, true]);
        assert!(decode_delta(&good, &schema()).is_ok());
        // Truncations at every prefix length fail cleanly.
        for cut in 0..good.len() {
            assert!(
                decode_delta(&good[..cut], &schema()).is_err(),
                "truncation at {cut} accepted"
            );
        }
        // Bad version.
        let mut b = good.clone();
        b[0] = 9;
        assert!(decode_delta(&b, &schema()).is_err());
        // Absurd row count (u64::MAX) errors rather than allocating.
        let mut b = good.clone();
        b[1..9].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_delta(&b, &schema()).is_err());
        // Column count mismatch.
        let mut b = good.clone();
        b[9..13].copy_from_slice(&7u32.to_le_bytes());
        assert!(decode_delta(&b, &schema()).is_err());
        // Schema drift: same payload, different expected schema.
        let mut drifted = schema();
        drifted[0].0 = "renamed".into();
        assert!(decode_delta(&good, &drifted).is_err());
        let mut drifted = schema();
        drifted[0].1 = DataType::Date;
        assert!(decode_delta(&good, &drifted).is_err());
        // Trailing garbage.
        let mut b = good.clone();
        b.push(0);
        assert!(decode_delta(&b, &schema()).is_err());
        // Bad string presence byte: find the first one (after the
        // second column's header) and poke it.
        let bad_presence = good.len() - sample_cols_tail_len();
        let mut b = good.clone();
        b[bad_presence] = 7;
        assert!(decode_delta(&b, &schema()).is_err());
    }

    /// Bytes from the first string-presence byte to the payload end:
    /// the string column's data (3 presence bytes + "a" (8+1) + "ccc"
    /// (8+3)), then the `score` column's header (name 8+5, tag 1) and
    /// its 3 raw i64s.
    fn sample_cols_tail_len() -> usize {
        (3 + (8 + 1) + (8 + 3)) + (8 + 5 + 1) + 3 * 8
    }

    #[test]
    fn empty_delta_roundtrip() {
        let cols = vec![
            DeltaVals::Ints(vec![]),
            DeltaVals::Strs(vec![]),
            DeltaVals::Ints(vec![]),
        ];
        let bytes = encode_delta(&schema(), &cols, &[]);
        let back = decode_delta(&bytes, &schema()).unwrap();
        assert!(back.iter().all(|c| c.len() == 0));
    }

    #[test]
    fn tombstone_roundtrip_and_corruption() {
        let ts: BTreeSet<u64> = [3u64, 17, 999].into_iter().collect();
        let bytes = encode_tombstones(&ts);
        assert_eq!(decode_tombstones(&bytes, 1000).unwrap(), ts);
        // Truncations.
        for cut in 0..bytes.len() {
            assert!(decode_tombstones(&bytes[..cut], 1000).is_err());
        }
        // Out of range for a smaller base.
        assert!(decode_tombstones(&bytes, 999).is_err());
        // Absurd count.
        let mut b = bytes.clone();
        b[1..9].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_tombstones(&b, 1000).is_err());
        // Not strictly increasing: duplicate the first id into the second.
        let mut b = bytes.clone();
        let first: [u8; 8] = b[9..17].try_into().unwrap();
        b[17..25].copy_from_slice(&first);
        assert!(decode_tombstones(&b, 1000).is_err());
        // Trailing garbage.
        let mut b = bytes.clone();
        b.extend_from_slice(&[1, 2, 3]);
        assert!(decode_tombstones(&b, 1000).is_err());
        // Bad version.
        let mut b = bytes;
        b[0] = 0;
        assert!(decode_tombstones(&b, 1000).is_err());
    }
}

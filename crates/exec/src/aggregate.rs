//! Aggregation: hash-based (with tactically chosen hash strategy) and
//! ordered ("sandwiched", paper §4.2.2).
//!
//! The hash aggregate picks direct/perfect/collision hashing from the key
//! columns' metadata (§2.3.4); the ordered aggregate exploits grouped
//! input — a sorted primary key, or the value-sorted IndexedScan output of
//! §4.2.2 — to aggregate in a single pass with no table at all.

use crate::block::{Block, Field, Repr, Schema};
use crate::expr::AggFunc;
use crate::hash::GroupMap;
use crate::tactical;
use crate::{BoxOp, Operator, BLOCK_ROWS};
use tde_types::sentinel::{is_null_real, null_real, NULL_I64, NULL_TOKEN};
use tde_types::DataType;

/// One aggregate to compute.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Input column index (ignored for `Count`).
    pub col: usize,
    /// Output column name.
    pub name: String,
}

impl AggSpec {
    /// Convenience constructor.
    pub fn new(func: AggFunc, col: usize, name: impl Into<String>) -> AggSpec {
        AggSpec {
            func,
            col,
            name: name.into(),
        }
    }
}

#[derive(Clone, PartialEq)]
pub(crate) enum Domain {
    Int,
    Real,
    Token,
    /// Dictionary-coded input: stored values are positions into the
    /// dictionary, not scalars — they must be translated before folding
    /// (a sum of codes is meaningless, and extrema of codes follow
    /// dictionary order, not value order).
    Dict(std::sync::Arc<Vec<i64>>),
}

pub(crate) fn domain_of(f: &Field) -> Domain {
    match (&f.repr, f.dtype) {
        (Repr::Token(_) | Repr::TokenCell(_), _) => Domain::Token,
        (Repr::DictIndex(dict), _) => Domain::Dict(dict.clone()),
        (_, DataType::Real) => Domain::Real,
        _ => Domain::Int,
    }
}

/// Accumulator state for one (group, agg) cell.
#[derive(Clone, Copy)]
pub(crate) struct Acc {
    pub(crate) value: i64,
    pub(crate) count: u64,
}

pub(crate) fn init_acc() -> Acc {
    Acc { value: 0, count: 0 }
}

#[inline]
pub(crate) fn fold(acc: &mut Acc, func: AggFunc, domain: &Domain, raw: i64) {
    // NULL inputs are skipped (except COUNT counts rows).
    if func == AggFunc::Count {
        acc.count += 1;
        return;
    }
    // Translate dictionary codes to the scalars they stand for; joins can
    // inject the scalar sentinel directly, so it passes through.
    let raw = match domain {
        Domain::Dict(dict) if raw != NULL_I64 => dict[raw as usize],
        _ => raw,
    };
    let is_null = match domain {
        Domain::Int | Domain::Dict(_) => raw == NULL_I64,
        Domain::Real => is_null_real(f64::from_bits(raw as u64)),
        Domain::Token => raw as u64 == NULL_TOKEN,
    };
    if is_null {
        return;
    }
    if acc.count == 0 {
        acc.value = raw;
        acc.count = 1;
        return;
    }
    acc.count += 1;
    match (func, domain) {
        (AggFunc::Sum, Domain::Real) => {
            let s = f64::from_bits(acc.value as u64) + f64::from_bits(raw as u64);
            acc.value = s.to_bits() as i64;
        }
        (AggFunc::Sum, _) => acc.value = acc.value.wrapping_add(raw),
        (AggFunc::Min, Domain::Real) => {
            if f64::from_bits(raw as u64) < f64::from_bits(acc.value as u64) {
                acc.value = raw;
            }
        }
        (AggFunc::Max, Domain::Real) => {
            if f64::from_bits(raw as u64) > f64::from_bits(acc.value as u64) {
                acc.value = raw;
            }
        }
        // Token min/max compares tokens: correct when the heap is sorted —
        // the §3.4.3 payoff; otherwise it is heap order.
        (AggFunc::Min, _) => acc.value = acc.value.min(raw),
        (AggFunc::Max, _) => acc.value = acc.value.max(raw),
        (AggFunc::Count, _) => unreachable!(),
    }
}

/// Merge accumulator `b` (a partial computed over a later slice of the
/// input) into `a`. Exact for every merge-safe function: counts add,
/// wrapping integer sums add, extrema compare — the same results the
/// serial fold produces in any split, because those folds are
/// associative and commutative over the non-NULL inputs. Real sums are
/// NOT merge-safe (f64 addition is order-dependent); the morsel planner
/// declines parallelism for them rather than merge here.
pub(crate) fn merge_acc(a: &mut Acc, b: &Acc, func: AggFunc, domain: &Domain) {
    if func == AggFunc::Count {
        a.count += b.count;
        return;
    }
    if b.count == 0 {
        return;
    }
    if a.count == 0 {
        *a = *b;
        return;
    }
    a.count += b.count;
    match (func, domain) {
        (AggFunc::Sum, Domain::Real) => {
            let s = f64::from_bits(a.value as u64) + f64::from_bits(b.value as u64);
            a.value = s.to_bits() as i64;
        }
        (AggFunc::Sum, _) => a.value = a.value.wrapping_add(b.value),
        (AggFunc::Min, Domain::Real) => {
            if f64::from_bits(b.value as u64) < f64::from_bits(a.value as u64) {
                a.value = b.value;
            }
        }
        (AggFunc::Max, Domain::Real) => {
            if f64::from_bits(b.value as u64) > f64::from_bits(a.value as u64) {
                a.value = b.value;
            }
        }
        (AggFunc::Min, _) => a.value = a.value.min(b.value),
        (AggFunc::Max, _) => a.value = a.value.max(b.value),
        (AggFunc::Count, _) => unreachable!(),
    }
}

pub(crate) fn final_value(acc: &Acc, func: AggFunc, domain: &Domain) -> i64 {
    match func {
        AggFunc::Count => acc.count as i64,
        _ if acc.count == 0 => match domain {
            Domain::Real => null_real().to_bits() as i64,
            Domain::Token => NULL_TOKEN as i64,
            Domain::Int | Domain::Dict(_) => NULL_I64,
        },
        _ => acc.value,
    }
}

pub(crate) fn output_schema(input: &Schema, group_cols: &[usize], aggs: &[AggSpec]) -> Schema {
    let mut fields: Vec<Field> = group_cols
        .iter()
        .map(|&c| input.fields[c].clone())
        .collect();
    for a in aggs {
        let mut f = match a.func {
            AggFunc::Count => Field::scalar(a.name.clone(), DataType::Integer),
            _ => {
                let mut f = input.fields[a.col].clone();
                // Folding translated dictionary codes to scalars, so the
                // aggregate value is no longer a dictionary position.
                if matches!(f.repr, Repr::DictIndex(_)) {
                    f.repr = Repr::Scalar;
                }
                f.metadata = tde_encodings::ColumnMetadata::unknown();
                f
            }
        };
        f.name = a.name.clone();
        fields.push(f);
    }
    Schema::new(fields)
}

pub(crate) fn emit_blocks(rows: Vec<Vec<i64>>, ncols: usize) -> Vec<Block> {
    // rows is column-major already.
    let nrows = rows.first().map_or(0, Vec::len);
    let mut blocks = Vec::new();
    let mut at = 0;
    while at < nrows {
        let take = BLOCK_ROWS.min(nrows - at);
        let columns: Vec<Vec<i64>> = (0..ncols)
            .map(|c| rows[c][at..at + take].to_vec())
            .collect();
        blocks.push(Block { columns, len: take });
        at += take;
    }
    blocks
}

/// Hash aggregation with a tactically chosen strategy.
pub struct HashAggregate {
    input: Option<BoxOp>,
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    schema: Schema,
    domains: Vec<Domain>,
    output: Vec<Block>,
    next: usize,
    /// The strategy that was chosen (visible for tests and explain).
    pub strategy: crate::hash::HashStrategy,
    packing: Option<crate::hash::KeyPacking>,
}

impl HashAggregate {
    /// Aggregate `input` grouped by `group_cols`.
    pub fn new(input: BoxOp, group_cols: Vec<usize>, aggs: Vec<AggSpec>) -> HashAggregate {
        let in_schema = input.schema();
        let keys: Vec<&Field> = group_cols.iter().map(|&c| &in_schema.fields[c]).collect();
        let (strategy, packing) = tactical::choose_hash_strategy(&keys);
        let domains = aggs
            .iter()
            .map(|a| domain_of(&in_schema.fields[a.col]))
            .collect();
        let schema = output_schema(in_schema, &group_cols, &aggs);
        HashAggregate {
            input: Some(input),
            group_cols,
            aggs,
            schema,
            domains,
            output: Vec::new(),
            next: 0,
            strategy,
            packing,
        }
    }

    fn run(&mut self) {
        let mut input = self.input.take().expect("aggregate already ran");
        let mut groups = GroupMap::new(self.strategy, self.packing.clone());
        let mut accs: Vec<Vec<Acc>> = Vec::new(); // [group][agg]
        let mut key = vec![0i64; self.group_cols.len()];
        while let Some(block) = input.next_block() {
            for r in 0..block.len {
                for (k, &c) in self.group_cols.iter().enumerate() {
                    key[k] = block.columns[c][r];
                }
                let g = groups.get_or_insert(&key);
                if g == accs.len() {
                    accs.push(vec![init_acc(); self.aggs.len()]);
                }
                for (a, spec) in self.aggs.iter().enumerate() {
                    fold(
                        &mut accs[g][a],
                        spec.func,
                        &self.domains[a],
                        block.columns[spec.col][r],
                    );
                }
            }
        }
        // A global aggregate (no group keys) over empty input still
        // produces one row of empty aggregates, SQL-style.
        if self.group_cols.is_empty() && groups.is_empty() {
            groups.get_or_insert(&[]);
            accs.push(vec![init_acc(); self.aggs.len()]);
        }
        // Assemble column-major output: group keys then aggregates.
        let ng = groups.len();
        let ncols = self.group_cols.len() + self.aggs.len();
        let mut cols: Vec<Vec<i64>> = vec![Vec::with_capacity(ng); ncols];
        for (g, gk) in groups.keys().iter().enumerate() {
            for (k, &v) in gk.iter().enumerate() {
                cols[k].push(v);
            }
            for (a, spec) in self.aggs.iter().enumerate() {
                cols[self.group_cols.len() + a].push(final_value(
                    &accs[g][a],
                    spec.func,
                    &self.domains[a],
                ));
            }
        }
        self.output = emit_blocks(cols, ncols);
    }
}

impl Operator for HashAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_block(&mut self) -> Option<Block> {
        if self.input.is_some() {
            self.run();
        }
        let b = self.output.get(self.next).cloned();
        self.next += 1;
        b
    }
}

/// Ordered (sandwiched) aggregation over grouped input: groups must arrive
/// contiguously. One pass, no hash table (paper §4.2.2).
pub struct OrderedAggregate {
    input: BoxOp,
    group_cols: Vec<usize>,
    aggs: Vec<AggSpec>,
    schema: Schema,
    domains: Vec<Domain>,
    current_key: Option<Vec<i64>>,
    current: Vec<Acc>,
    key_scratch: Vec<i64>,
    pending: Vec<Vec<i64>>, // column-major finished groups
    done: bool,
}

impl OrderedAggregate {
    /// Aggregate grouped `input` by `group_cols`.
    pub fn new(input: BoxOp, group_cols: Vec<usize>, aggs: Vec<AggSpec>) -> OrderedAggregate {
        let in_schema = input.schema();
        let domains = aggs
            .iter()
            .map(|a| domain_of(&in_schema.fields[a.col]))
            .collect();
        let schema = output_schema(in_schema, &group_cols, &aggs);
        let ncols = group_cols.len() + aggs.len();
        OrderedAggregate {
            input,
            group_cols,
            aggs,
            schema,
            domains,
            current_key: None,
            current: Vec::new(),
            key_scratch: Vec::new(),
            pending: vec![Vec::new(); ncols],
            done: false,
        }
    }

    fn flush_group(&mut self) {
        if let Some(key) = self.current_key.take() {
            for (k, v) in key.into_iter().enumerate() {
                self.pending[k].push(v);
            }
            for (a, spec) in self.aggs.iter().enumerate() {
                self.pending[self.group_cols.len() + a].push(final_value(
                    &self.current[a],
                    spec.func,
                    &self.domains[a],
                ));
            }
        }
    }

    fn pending_rows(&self) -> usize {
        self.pending.first().map_or(0, Vec::len)
    }

    fn take_pending(&mut self, n: usize) -> Block {
        let columns: Vec<Vec<i64>> = self
            .pending
            .iter_mut()
            .map(|c| {
                let rest = c.split_off(n.min(c.len()));
                std::mem::replace(c, rest)
            })
            .collect();
        Block::new(columns)
    }
}

impl Operator for OrderedAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_block(&mut self) -> Option<Block> {
        while !self.done && self.pending_rows() < BLOCK_ROWS {
            let Some(block) = self.input.next_block() else {
                self.flush_group();
                self.done = true;
                break;
            };
            for r in 0..block.len {
                self.key_scratch.clear();
                for &c in &self.group_cols {
                    self.key_scratch.push(block.columns[c][r]);
                }
                if self.current_key.as_deref() != Some(&self.key_scratch[..]) {
                    self.flush_group();
                    self.current_key = Some(self.key_scratch.clone());
                    self.current = vec![init_acc(); self.aggs.len()];
                }
                for (a, spec) in self.aggs.iter().enumerate() {
                    fold(
                        &mut self.current[a],
                        spec.func,
                        &self.domains[a],
                        block.columns[spec.col][r],
                    );
                }
            }
        }
        let n = self.pending_rows().min(BLOCK_ROWS);
        if n == 0 {
            return None;
        }
        Some(self.take_pending(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::TableScan;
    use std::collections::HashMap;
    use std::sync::Arc;
    use tde_storage::{ColumnBuilder, EncodingPolicy, Table};
    use tde_types::{DataType, Value};

    fn table(n: i64, groups: i64) -> Arc<Table> {
        let mut g = ColumnBuilder::new("g", DataType::Integer, EncodingPolicy::default());
        let mut v = ColumnBuilder::new("v", DataType::Integer, EncodingPolicy::default());
        for i in 0..n {
            g.append_i64((i * groups) / n); // sorted groups
            v.append_i64(i % 97);
        }
        Arc::new(Table::new("t", vec![g.finish().column, v.finish().column]))
    }

    fn collect(mut op: BoxOp) -> HashMap<i64, (i64, i64, i64)> {
        let mut out = HashMap::new();
        while let Some(b) = op.next_block() {
            for r in 0..b.len {
                out.insert(
                    b.columns[0][r],
                    (b.columns[1][r], b.columns[2][r], b.columns[3][r]),
                );
            }
        }
        out
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::new(AggFunc::Count, 1, "n"),
            AggSpec::new(AggFunc::Min, 1, "lo"),
            AggSpec::new(AggFunc::Max, 1, "hi"),
        ]
    }

    #[test]
    fn hash_and_ordered_agree() {
        let t = table(50_000, 20);
        let hash = collect(Box::new(HashAggregate::new(
            Box::new(TableScan::new(t.clone())),
            vec![0],
            specs(),
        )));
        let ordered = collect(Box::new(OrderedAggregate::new(
            Box::new(TableScan::new(t)),
            vec![0],
            specs(),
        )));
        assert_eq!(hash.len(), 20);
        assert_eq!(hash, ordered);
        let (n, lo, hi) = hash[&0];
        assert_eq!(n, 2500);
        assert_eq!(lo, 0);
        assert_eq!(hi, 96);
    }

    #[test]
    fn direct_strategy_chosen_for_narrow_keys() {
        // The group column was built through FlowTable, so min/max are in
        // its metadata; 0..19 fits in one byte → direct hashing.
        let t = table(10_000, 20);
        let agg = HashAggregate::new(Box::new(TableScan::new(t)), vec![0], specs());
        assert_eq!(agg.strategy, crate::hash::HashStrategy::Direct64K);
    }

    #[test]
    fn nulls_are_skipped() {
        let mut g = ColumnBuilder::new("g", DataType::Integer, EncodingPolicy::default());
        let mut v = ColumnBuilder::new("v", DataType::Integer, EncodingPolicy::default());
        for (gi, vi) in [(1, 5), (1, NULL_I64), (2, NULL_I64)] {
            g.append_i64(gi);
            v.append_i64(vi);
        }
        let t = Arc::new(Table::new("t", vec![g.finish().column, v.finish().column]));
        let mut agg = HashAggregate::new(Box::new(TableScan::new(t)), vec![0], specs());
        let schema = agg.schema().clone();
        let b = agg.next_block().unwrap();
        // Group 1: count 2 rows, min/max skip the NULL.
        let row1 = (0..b.len).find(|&r| b.columns[0][r] == 1).unwrap();
        assert_eq!(b.columns[1][row1], 2);
        assert_eq!(b.columns[2][row1], 5);
        // Group 2: all-NULL min is NULL.
        let row2 = (0..b.len).find(|&r| b.columns[0][r] == 2).unwrap();
        assert_eq!(schema.fields[2].value_of(b.columns[2][row2]), Value::Null);
    }

    #[test]
    fn real_aggregation() {
        let mut g = ColumnBuilder::new("g", DataType::Integer, EncodingPolicy::default());
        let mut v = ColumnBuilder::new("v", DataType::Real, EncodingPolicy::default());
        for x in [1.5f64, 2.5, -3.0] {
            g.append_i64(0);
            v.append_f64(x);
        }
        let t = Arc::new(Table::new("t", vec![g.finish().column, v.finish().column]));
        let mut agg = HashAggregate::new(
            Box::new(TableScan::new(t)),
            vec![0],
            vec![
                AggSpec::new(AggFunc::Sum, 1, "s"),
                AggSpec::new(AggFunc::Min, 1, "lo"),
            ],
        );
        let b = agg.next_block().unwrap();
        assert_eq!(f64::from_bits(b.columns[1][0] as u64), 1.0);
        assert_eq!(f64::from_bits(b.columns[2][0] as u64), -3.0);
    }

    #[test]
    fn global_aggregate_no_groups() {
        let t = table(1000, 4);
        let mut agg = HashAggregate::new(
            Box::new(TableScan::new(t)),
            vec![],
            vec![AggSpec::new(AggFunc::Count, 0, "n")],
        );
        let b = agg.next_block().unwrap();
        assert_eq!(b.len, 1);
        assert_eq!(b.columns[0][0], 1000);
    }
}

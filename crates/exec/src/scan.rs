//! Table scan: decode stored columns block-at-a-time, optionally
//! answering a pushed-down predicate in the compressed domain first.

use crate::block::{Block, Repr, Schema};
use crate::cursor::StreamCursor;
use crate::expr::{eval, ComputeHeap, Expr};
use crate::handle::ColumnHandle;
use crate::pushdown::{compile_value_set, gather_ranges};
use crate::{Operator, BLOCK_ROWS};
use std::io;
use std::sync::Arc;
use tde_encodings::kernel::{
    metadata_selection, selection_from_ranges, BlockSelection, PredicateKernel,
};
use tde_pager::PagedTable;
use tde_storage::{Compression, Table};
use tde_types::DataType;

/// Scans stored columns, emitting one execution block per decompression
/// block. Compressed columns flow through in their stored representation
/// (tokens/indexes) unless `expand_dictionaries` is set — keeping them
/// compressed is what enables the invisible-join plans of §4.1.
///
/// The scan is storage-agnostic: it reads [`ColumnHandle`]s, which may
/// share an eager [`Table`] or own pager-resolved columns
/// ([`TableScan::paged`]) — the latter demand-loads only the projected
/// columns' segments through the buffer pool.
pub struct TableScan {
    handles: Vec<ColumnHandle>,
    schema: Schema,
    cursors: Vec<StreamCursor>,
    expand: bool,
    done: bool,
    total_rows: u64,
    rows_done: u64,
    block_idx: usize,
    pushed: Option<PushedState>,
}

/// How a pushed predicate is answered, chosen once at scan build
/// (the tactical decision the optimizer's strategic rewrite defers).
enum PushKind {
    /// A per-encoding compressed-domain kernel over the stored stream.
    Stream(PredicateKernel),
    /// Array compression: the predicate evaluated once over the
    /// dictionary values; packed codes are tested against the result.
    Codes { keep: Vec<bool> },
    /// Metadata or the dictionary proves every row matches.
    AllRows,
    /// Metadata or the dictionary proves no row matches.
    NoRows,
    /// Decode-then-eval per block — semantically the Filter operator
    /// fused into the scan.
    Fallback,
}

struct PushedState {
    col: usize,
    expr: Expr,
    kind: PushKind,
    kind_name: &'static str,
    column_name: String,
    heap: Option<ComputeHeap>,
    rows_in: u64,
    rows_out: u64,
    rows_skipped: u64,
    reported: bool,
}

impl TableScan {
    /// Scan every column of `table`.
    pub fn new(table: Arc<Table>) -> TableScan {
        let handles = ColumnHandle::all(&table);
        TableScan::from_handles(handles, false)
    }

    /// Scan a projection of `table`. `expand_dictionaries` materializes
    /// array-compressed columns to scalars at the scan (the baseline that
    /// forgoes invisible joins).
    pub fn with_columns(
        table: Arc<Table>,
        cols: Vec<usize>,
        expand_dictionaries: bool,
    ) -> TableScan {
        let handles = cols
            .into_iter()
            .map(|idx| ColumnHandle::Shared {
                table: Arc::clone(&table),
                idx,
            })
            .collect();
        TableScan::from_handles(handles, expand_dictionaries)
    }

    /// Scan named columns.
    pub fn project(table: Arc<Table>, names: &[&str], expand_dictionaries: bool) -> TableScan {
        let cols = names
            .iter()
            .map(|n| {
                table
                    .column_index(n)
                    .unwrap_or_else(|| panic!("no column {n}"))
            })
            .collect();
        TableScan::with_columns(table, cols, expand_dictionaries)
    }

    /// Scan named columns of a paged table, resolving each through the
    /// buffer pool. Only the named columns' segments are read; columns
    /// outside the projection never leave the disk.
    pub fn paged(
        table: &PagedTable,
        names: &[&str],
        expand_dictionaries: bool,
    ) -> io::Result<TableScan> {
        let handles = names
            .iter()
            .map(|n| table.column(n).map(ColumnHandle::Owned))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(TableScan::from_handles(handles, expand_dictionaries))
    }

    /// Scan every column of a paged table (loads all segments — prefer
    /// [`TableScan::paged`] with a projection).
    pub fn paged_all(table: &PagedTable, expand_dictionaries: bool) -> io::Result<TableScan> {
        let names = table.column_names();
        TableScan::paged(table, &names, expand_dictionaries)
    }

    /// Scan pre-resolved column handles.
    pub fn from_handles(handles: Vec<ColumnHandle>, expand_dictionaries: bool) -> TableScan {
        let fields = handles
            .iter()
            .map(|h| h.field(expand_dictionaries))
            .collect();
        let cursors = handles
            .iter()
            .map(|h| StreamCursor::new(&h.col().data))
            .collect();
        let total_rows = handles.iter().map(|h| h.col().len()).min().unwrap_or(0);
        TableScan {
            handles,
            schema: Schema::new(fields),
            cursors,
            expand: expand_dictionaries,
            done: false,
            total_rows,
            rows_done: 0,
            block_idx: 0,
            pushed: None,
        }
    }

    /// Apply `predicate` (over the scan's output schema) inside the
    /// scan. Where the predicate compiles to a value set and the
    /// column's encoding has a kernel, rows are selected in the
    /// compressed domain; otherwise the scan decodes and evaluates per
    /// block, exactly like a Filter above it. `force_fallback` pins the
    /// decode-then-eval path — the differential oracle's control arm.
    pub fn with_pushed(self, predicate: Expr, force_fallback: bool) -> TableScan {
        self.push_predicate(predicate, force_fallback, false)
    }

    /// As [`TableScan::with_pushed`], but without the per-scan pushdown
    /// telemetry. Morsel workers build one ranged scan per morsel; the
    /// decision and row accounting for the query is emitted once by the
    /// morsel operator, not multiplied by the morsel count.
    pub fn with_pushed_quiet(self, predicate: Expr, force_fallback: bool) -> TableScan {
        self.push_predicate(predicate, force_fallback, true)
    }

    fn push_predicate(mut self, predicate: Expr, force_fallback: bool, quiet: bool) -> TableScan {
        let col = predicate.single_column();
        let column_name = col
            .and_then(|c| self.schema.fields.get(c).map(|f| f.name.clone()))
            .unwrap_or_default();
        let (kind, kind_name) = if force_fallback {
            (PushKind::Fallback, "forced-fallback")
        } else {
            match col {
                Some(c) if c < self.handles.len() => self.choose_kind(c, &predicate),
                _ => (PushKind::Fallback, "fallback"),
            }
        };
        let detail = col.map_or_else(
            || "multi-column predicate".to_string(),
            |c| {
                let stored = self.handles[c].col();
                format!(
                    "column '{}' ({}, {})",
                    column_name,
                    stored.data.algorithm().name(),
                    match &stored.compression {
                        Compression::None => "plain",
                        Compression::Heap { .. } => "heap",
                        Compression::Array { .. } => "array",
                    }
                )
            },
        );
        let encoding = col.map_or("none", |c| self.handles[c].col().data.algorithm().name());
        if !quiet {
            tde_obs::metrics::kernel_pushdown(encoding, kind_name);
            tde_obs::emit(|| tde_obs::Event::Decision {
                point: "kernel-pushdown",
                choice: kind_name.to_string(),
                reason: detail,
            });
        }
        self.pushed = Some(PushedState {
            col: col.unwrap_or(0),
            expr: predicate,
            kind,
            kind_name,
            column_name,
            heap: Some(ComputeHeap::new()),
            rows_in: 0,
            rows_out: 0,
            rows_skipped: 0,
            reported: quiet,
        });
        self
    }

    /// Restrict the scan to decompression blocks `[start, end)` of the
    /// stream: every cursor (and the pushed kernel, if any) is positioned
    /// at block `start` in one step and the scan ends after block
    /// `end - 1`. Must be applied after any pushed predicate and before
    /// the first read — this is how morsel workers turn one logical scan
    /// into disjoint ranged scans.
    pub fn with_block_range(mut self, start: usize, end: usize) -> TableScan {
        debug_assert!(start <= end, "inverted block range");
        debug_assert_eq!(self.rows_done, 0, "ranged after reads began");
        let start_row = (start as u64 * BLOCK_ROWS as u64).min(self.total_rows);
        let end_row = (end as u64 * BLOCK_ROWS as u64).min(self.total_rows);
        for (slot, h) in self.handles.iter().enumerate() {
            self.cursors[slot].skip_blocks(&h.col().data, start);
        }
        if let Some(p) = &mut self.pushed {
            if let PushKind::Stream(k) = &mut p.kind {
                k.seek(&self.handles[p.col].col().data, start_row);
            }
        }
        self.block_idx = start;
        self.rows_done = start_row;
        self.total_rows = end_row;
        self
    }

    /// Rows the scan covers (before any pushed predicate filters them).
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// The kernel kind a pushed predicate resolved to, if any — used by
    /// the physical plan to label the scan node.
    pub fn pushed_kernel(&self) -> Option<&'static str> {
        self.pushed.as_ref().map(|p| p.kind_name)
    }

    /// Tactical kernel choice for predicate column `c`.
    fn choose_kind(&self, c: usize, predicate: &Expr) -> (PushKind, &'static str) {
        let field = &self.schema.fields[c];
        // Token and real comparisons have heap / f64 semantics that the
        // integer value set cannot express.
        if matches!(field.repr, Repr::Token(_) | Repr::TokenCell(_))
            || field.dtype == DataType::Real
        {
            return (PushKind::Fallback, "fallback");
        }
        let Some(set) = compile_value_set(predicate) else {
            return (PushKind::Fallback, "fallback");
        };
        let stored = self.handles[c].col();
        match &stored.compression {
            Compression::Heap { .. } => (PushKind::Fallback, "fallback"),
            Compression::Array { dictionary, .. } => {
                let keep: Vec<bool> = dictionary.iter().map(|&v| set.contains(v)).collect();
                if keep.iter().all(|&k| !k) {
                    (PushKind::NoRows, "dict-domain")
                } else if keep.iter().all(|&k| k) {
                    (PushKind::AllRows, "dict-domain")
                } else {
                    (PushKind::Codes { keep }, "dict-domain")
                }
            }
            Compression::None => match metadata_selection(&stored.metadata, &set) {
                Some(false) => (PushKind::NoRows, "metadata-minmax"),
                Some(true) => (PushKind::AllRows, "metadata-minmax"),
                None => match PredicateKernel::build(&stored.data, &set) {
                    Some(k) => {
                        let kind = k.kind();
                        (PushKind::Stream(k), kind)
                    }
                    None => (PushKind::Fallback, "fallback"),
                },
            },
        }
    }

    /// Emit the once-per-scan kernel telemetry (end of stream).
    fn report_kernel(&mut self) {
        if let Some(p) = &mut self.pushed {
            if p.reported {
                return;
            }
            p.reported = true;
            let (column, kernel) = (p.column_name.clone(), p.kind_name.to_string());
            let (rows_in, rows_out, rows_skipped) = (p.rows_in, p.rows_out, p.rows_skipped);
            tde_obs::metrics::kernel_scan_rows(rows_in, rows_out, rows_skipped);
            tde_obs::emit(|| tde_obs::Event::KernelScan {
                column,
                kernel,
                rows_in,
                rows_out,
                rows_skipped,
            });
        }
    }
}

impl Operator for TableScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_block(&mut self) -> Option<Block> {
        if self.done {
            return None;
        }
        loop {
            if self.handles.is_empty() || self.rows_done >= self.total_rows {
                self.done = true;
                self.report_kernel();
                return None;
            }
            let blen = ((self.total_rows - self.rows_done) as usize).min(BLOCK_ROWS);
            let block_idx = self.block_idx;
            self.block_idx += 1;
            self.rows_done += blen as u64;
            let pcol = self.pushed.as_ref().map(|p| p.col);

            // Resolve the kernel's selection before decoding anything.
            // The dict-codes path decodes the predicate column's packed
            // codes (and only those) to test them; the decoded codes are
            // reused below so the column is not read twice.
            let mut pred_data: Option<Vec<i64>> = None;
            let sel = match &mut self.pushed {
                None => BlockSelection::All,
                Some(p) => {
                    p.rows_in += blen as u64;
                    match &mut p.kind {
                        PushKind::Fallback | PushKind::AllRows => BlockSelection::All,
                        PushKind::NoRows => BlockSelection::Skip,
                        PushKind::Stream(k) => {
                            k.eval_block(&self.handles[p.col].col().data, block_idx, blen)
                        }
                        PushKind::Codes { keep } => {
                            let mut codes = Vec::with_capacity(BLOCK_ROWS);
                            self.cursors[p.col].next(
                                &self.handles[p.col].col().data,
                                BLOCK_ROWS,
                                &mut codes,
                            );
                            codes.truncate(blen);
                            let mut ranges: Vec<(usize, usize)> = Vec::new();
                            for (i, &code) in codes.iter().enumerate() {
                                if keep[code as usize] {
                                    match ranges.last_mut() {
                                        Some(last) if last.1 == i => last.1 = i + 1,
                                        _ => ranges.push((i, i + 1)),
                                    }
                                }
                            }
                            pred_data = Some(codes);
                            selection_from_ranges(ranges, blen)
                        }
                    }
                }
            };

            if matches!(sel, BlockSelection::Skip) {
                // Nothing in this block can match: advance every cursor
                // without decoding (the predicate column's cursor has
                // already moved if its codes were read).
                for (slot, h) in self.handles.iter().enumerate() {
                    if pred_data.is_some() && Some(slot) == pcol {
                        continue;
                    }
                    self.cursors[slot].skip(&h.col().data, BLOCK_ROWS);
                }
                if let Some(p) = &mut self.pushed {
                    p.rows_skipped += blen as u64;
                }
                continue;
            }

            let ranges = match &sel {
                BlockSelection::Ranges(rs) => Some(rs.as_slice()),
                _ => None,
            };
            let mut columns = Vec::with_capacity(self.handles.len());
            for (slot, h) in self.handles.iter().enumerate() {
                let col = h.col();
                let mut out = if Some(slot) == pcol && pred_data.is_some() {
                    pred_data.take().unwrap()
                } else {
                    let mut v = Vec::with_capacity(BLOCK_ROWS);
                    self.cursors[slot].next(&col.data, BLOCK_ROWS, &mut v);
                    v.truncate(blen);
                    v
                };
                // Select first, expand after: dictionary expansion runs
                // only over the surviving rows.
                if let Some(rs) = ranges {
                    gather_ranges(&mut out, rs);
                }
                if self.expand {
                    if let Compression::Array { dictionary, .. } = &col.compression {
                        for v in &mut out {
                            *v = dictionary[*v as usize];
                        }
                    }
                }
                columns.push(out);
            }
            let len = columns.first().map_or(0, Vec::len);
            let mut block = Block { columns, len };

            if let Some(p) = &mut self.pushed {
                if matches!(p.kind, PushKind::Fallback) {
                    // Decode-then-eval, block-for-block identical to the
                    // Filter operator.
                    let mut heap = p.heap.as_mut();
                    let mask = eval(&p.expr, &self.schema, &block, &mut heap);
                    let keep: Vec<bool> = mask.data.iter().map(|&b| b != 0).collect();
                    block.filter(&keep);
                } else {
                    p.rows_skipped += (blen - block.len) as u64;
                }
                p.rows_out += block.len as u64;
            }
            if block.len == 0 {
                continue;
            }
            return Some(block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_rows;
    use tde_storage::{ColumnBuilder, EncodingPolicy};
    use tde_types::{DataType, Value};

    fn table() -> Arc<Table> {
        let mut a = ColumnBuilder::new("a", DataType::Integer, EncodingPolicy::default());
        let mut s = ColumnBuilder::new("s", DataType::Str, EncodingPolicy::default());
        for i in 0..3000i64 {
            a.append_i64(i);
            s.append_str(Some(["x", "y"][i as usize % 2]));
        }
        Arc::new(Table::new("t", vec![a.finish().column, s.finish().column]))
    }

    #[test]
    fn scans_all_rows_in_blocks() {
        let t = table();
        let mut scan = TableScan::new(t);
        let mut total = 0;
        let mut expected_next = 0i64;
        while let Some(b) = scan.next_block() {
            assert!(b.len <= BLOCK_ROWS);
            for &v in &b.columns[0][..b.len] {
                assert_eq!(v, expected_next);
                expected_next += 1;
            }
            total += b.len;
        }
        assert_eq!(total, 3000);
    }

    #[test]
    fn projection_and_values() {
        let t = table();
        let mut scan = TableScan::project(t, &["s"], false);
        let b = scan.next_block().unwrap();
        assert_eq!(scan.schema().fields.len(), 1);
        assert_eq!(
            scan.schema().fields[0].value_of(b.columns[0][0]),
            Value::Str("x".into())
        );
        assert_eq!(
            scan.schema().fields[0].value_of(b.columns[0][1]),
            Value::Str("y".into())
        );
    }

    #[test]
    fn empty_table_scan() {
        let t = Arc::new(Table::new("e", vec![]));
        assert_eq!(count_rows(Box::new(TableScan::new(t))), 0);
    }

    #[test]
    fn block_ranges_partition_the_scan() {
        use crate::expr::CmpOp;
        // An RLE-shaped column so a pushed predicate takes the stateful
        // rle-run-skip kernel, plus a bit-packed payload.
        let mut a = ColumnBuilder::new("a", DataType::Integer, EncodingPolicy::default());
        let mut b = ColumnBuilder::new("b", DataType::Integer, EncodingPolicy::default());
        for i in 0..5000i64 {
            a.append_i64(i / 300);
            b.append_i64(i % 977);
        }
        let t = Arc::new(Table::new("t", vec![a.finish().column, b.finish().column]));
        let pred = Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(5));
        let drain = |mut s: TableScan| {
            let mut blocks = Vec::new();
            while let Some(b) = s.next_block() {
                blocks.push(b);
            }
            blocks
        };
        let nblocks = 5000usize.div_ceil(BLOCK_ROWS);
        for pushed in [false, true] {
            let build = |range: Option<(usize, usize)>| {
                let mut s = TableScan::new(Arc::clone(&t));
                if pushed {
                    s = s.with_pushed_quiet(pred.clone(), false);
                }
                if let Some((lo, hi)) = range {
                    s = s.with_block_range(lo, hi);
                }
                s
            };
            let whole = drain(build(None));
            for split in [1usize, 2, 3, nblocks] {
                let mut pieces = Vec::new();
                let mut at = 0usize;
                while at < nblocks {
                    let hi = (at + split).min(nblocks);
                    pieces.extend(drain(build(Some((at, hi)))));
                    at = hi;
                }
                // Ranges align on decompression-block boundaries, so
                // the concatenated ranged scans must emit the *same
                // blocks* as the whole scan — the property the morsel
                // executor's byte-identity guarantee rests on.
                assert_eq!(pieces.len(), whole.len(), "pushed={pushed} split={split}");
                for (i, (p, w)) in pieces.iter().zip(&whole).enumerate() {
                    assert_eq!(p.len, w.len, "pushed={pushed} split={split} block={i}");
                    assert_eq!(
                        p.columns, w.columns,
                        "pushed={pushed} split={split} block={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn paged_scan_matches_eager_scan() {
        let t = table();
        let mut db = tde_storage::Database::new();
        db.add_table((*t).clone());
        let dir = std::env::temp_dir().join("tde_exec_paged_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scan.tde2");
        tde_pager::save_v2(&db, &path).unwrap();
        let paged = tde_pager::PagedDatabase::open(&path).unwrap();
        let pt = paged.table("t").unwrap();

        let mut eager = TableScan::project(Arc::clone(&t), &["s", "a"], false);
        let mut lazy = TableScan::paged(&pt, &["s", "a"], false).unwrap();
        loop {
            match (eager.next_block(), lazy.next_block()) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!(a.len, b.len);
                    assert_eq!(a.columns, b.columns);
                }
                (a, b) => panic!(
                    "block count mismatch: eager={:?} lazy={:?}",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

//! Table scan: decode stored columns block-at-a-time.

use crate::block::{Block, Field, Repr, Schema};
use crate::cursor::StreamCursor;
use crate::{Operator, BLOCK_ROWS};
use std::sync::Arc;
use tde_storage::{Compression, Table};

/// Scans a stored table, emitting one execution block per decompression
/// block. Compressed columns flow through in their stored representation
/// (tokens/indexes) unless `expand_dictionaries` is set — keeping them
/// compressed is what enables the invisible-join plans of §4.1.
pub struct TableScan {
    table: Arc<Table>,
    cols: Vec<usize>,
    schema: Schema,
    cursors: Vec<StreamCursor>,
    expand: bool,
    done: bool,
}

impl TableScan {
    /// Scan every column of `table`.
    pub fn new(table: Arc<Table>) -> TableScan {
        let cols = (0..table.columns.len()).collect();
        TableScan::with_columns(table, cols, false)
    }

    /// Scan a projection of `table`. `expand_dictionaries` materializes
    /// array-compressed columns to scalars at the scan (the baseline that
    /// forgoes invisible joins).
    pub fn with_columns(
        table: Arc<Table>,
        cols: Vec<usize>,
        expand_dictionaries: bool,
    ) -> TableScan {
        let fields = cols
            .iter()
            .map(|&i| {
                let c = &table.columns[i];
                let repr = match &c.compression {
                    Compression::None => Repr::Scalar,
                    Compression::Heap { heap, .. } => Repr::Token(heap.clone()),
                    Compression::Array { dictionary, .. } => {
                        if expand_dictionaries {
                            Repr::Scalar
                        } else {
                            Repr::DictIndex(Arc::new(dictionary.clone()))
                        }
                    }
                };
                Field {
                    name: c.name.clone(),
                    dtype: c.dtype,
                    repr,
                    metadata: c.metadata.clone(),
                }
            })
            .collect();
        let cursors = cols
            .iter()
            .map(|&i| StreamCursor::new(&table.columns[i].data))
            .collect();
        TableScan {
            table,
            cols,
            schema: Schema::new(fields),
            cursors,
            expand: expand_dictionaries,
            done: false,
        }
    }

    /// Scan named columns.
    pub fn project(table: Arc<Table>, names: &[&str], expand_dictionaries: bool) -> TableScan {
        let cols = names
            .iter()
            .map(|n| {
                table
                    .column_index(n)
                    .unwrap_or_else(|| panic!("no column {n}"))
            })
            .collect();
        TableScan::with_columns(table, cols, expand_dictionaries)
    }
}

impl Operator for TableScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_block(&mut self) -> Option<Block> {
        if self.done {
            return None;
        }
        let mut columns = Vec::with_capacity(self.cols.len());
        let mut len = usize::MAX;
        for (slot, &i) in self.cols.iter().enumerate() {
            let col = &self.table.columns[i];
            let mut out = Vec::with_capacity(BLOCK_ROWS);
            let n = self.cursors[slot].next(&col.data, BLOCK_ROWS, &mut out);
            if self.expand {
                if let Compression::Array { dictionary, .. } = &col.compression {
                    for v in &mut out {
                        *v = dictionary[*v as usize];
                    }
                }
            }
            len = len.min(n);
            columns.push(out);
        }
        if len == 0 || len == usize::MAX {
            self.done = true;
            return None;
        }
        Some(Block { columns, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_rows;
    use tde_storage::{ColumnBuilder, EncodingPolicy};
    use tde_types::{DataType, Value};

    fn table() -> Arc<Table> {
        let mut a = ColumnBuilder::new("a", DataType::Integer, EncodingPolicy::default());
        let mut s = ColumnBuilder::new("s", DataType::Str, EncodingPolicy::default());
        for i in 0..3000i64 {
            a.append_i64(i);
            s.append_str(Some(["x", "y"][i as usize % 2]));
        }
        Arc::new(Table::new("t", vec![a.finish().column, s.finish().column]))
    }

    #[test]
    fn scans_all_rows_in_blocks() {
        let t = table();
        let mut scan = TableScan::new(t);
        let mut total = 0;
        let mut expected_next = 0i64;
        while let Some(b) = scan.next_block() {
            assert!(b.len <= BLOCK_ROWS);
            for &v in &b.columns[0][..b.len] {
                assert_eq!(v, expected_next);
                expected_next += 1;
            }
            total += b.len;
        }
        assert_eq!(total, 3000);
    }

    #[test]
    fn projection_and_values() {
        let t = table();
        let mut scan = TableScan::project(t, &["s"], false);
        let b = scan.next_block().unwrap();
        assert_eq!(scan.schema().fields.len(), 1);
        assert_eq!(
            scan.schema().fields[0].value_of(b.columns[0][0]),
            Value::Str("x".into())
        );
        assert_eq!(
            scan.schema().fields[0].value_of(b.columns[0][1]),
            Value::Str("y".into())
        );
    }

    #[test]
    fn empty_table_scan() {
        let t = Arc::new(Table::new("e", vec![]));
        assert_eq!(count_rows(Box::new(TableScan::new(t))), 0);
    }
}

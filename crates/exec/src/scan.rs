//! Table scan: decode stored columns block-at-a-time.

use crate::block::{Block, Schema};
use crate::cursor::StreamCursor;
use crate::handle::ColumnHandle;
use crate::{Operator, BLOCK_ROWS};
use std::io;
use std::sync::Arc;
use tde_pager::PagedTable;
use tde_storage::{Compression, Table};

/// Scans stored columns, emitting one execution block per decompression
/// block. Compressed columns flow through in their stored representation
/// (tokens/indexes) unless `expand_dictionaries` is set — keeping them
/// compressed is what enables the invisible-join plans of §4.1.
///
/// The scan is storage-agnostic: it reads [`ColumnHandle`]s, which may
/// share an eager [`Table`] or own pager-resolved columns
/// ([`TableScan::paged`]) — the latter demand-loads only the projected
/// columns' segments through the buffer pool.
pub struct TableScan {
    handles: Vec<ColumnHandle>,
    schema: Schema,
    cursors: Vec<StreamCursor>,
    expand: bool,
    done: bool,
}

impl TableScan {
    /// Scan every column of `table`.
    pub fn new(table: Arc<Table>) -> TableScan {
        let handles = ColumnHandle::all(&table);
        TableScan::from_handles(handles, false)
    }

    /// Scan a projection of `table`. `expand_dictionaries` materializes
    /// array-compressed columns to scalars at the scan (the baseline that
    /// forgoes invisible joins).
    pub fn with_columns(
        table: Arc<Table>,
        cols: Vec<usize>,
        expand_dictionaries: bool,
    ) -> TableScan {
        let handles = cols
            .into_iter()
            .map(|idx| ColumnHandle::Shared {
                table: Arc::clone(&table),
                idx,
            })
            .collect();
        TableScan::from_handles(handles, expand_dictionaries)
    }

    /// Scan named columns.
    pub fn project(table: Arc<Table>, names: &[&str], expand_dictionaries: bool) -> TableScan {
        let cols = names
            .iter()
            .map(|n| {
                table
                    .column_index(n)
                    .unwrap_or_else(|| panic!("no column {n}"))
            })
            .collect();
        TableScan::with_columns(table, cols, expand_dictionaries)
    }

    /// Scan named columns of a paged table, resolving each through the
    /// buffer pool. Only the named columns' segments are read; columns
    /// outside the projection never leave the disk.
    pub fn paged(
        table: &PagedTable,
        names: &[&str],
        expand_dictionaries: bool,
    ) -> io::Result<TableScan> {
        let handles = names
            .iter()
            .map(|n| table.column(n).map(ColumnHandle::Owned))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(TableScan::from_handles(handles, expand_dictionaries))
    }

    /// Scan every column of a paged table (loads all segments — prefer
    /// [`TableScan::paged`] with a projection).
    pub fn paged_all(table: &PagedTable, expand_dictionaries: bool) -> io::Result<TableScan> {
        let names = table.column_names();
        TableScan::paged(table, &names, expand_dictionaries)
    }

    /// Scan pre-resolved column handles.
    pub fn from_handles(handles: Vec<ColumnHandle>, expand_dictionaries: bool) -> TableScan {
        let fields = handles
            .iter()
            .map(|h| h.field(expand_dictionaries))
            .collect();
        let cursors = handles
            .iter()
            .map(|h| StreamCursor::new(&h.col().data))
            .collect();
        TableScan {
            handles,
            schema: Schema::new(fields),
            cursors,
            expand: expand_dictionaries,
            done: false,
        }
    }
}

impl Operator for TableScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_block(&mut self) -> Option<Block> {
        if self.done {
            return None;
        }
        let mut columns = Vec::with_capacity(self.handles.len());
        let mut len = usize::MAX;
        for (slot, h) in self.handles.iter().enumerate() {
            let col = h.col();
            let mut out = Vec::with_capacity(BLOCK_ROWS);
            let n = self.cursors[slot].next(&col.data, BLOCK_ROWS, &mut out);
            if self.expand {
                if let Compression::Array { dictionary, .. } = &col.compression {
                    for v in &mut out {
                        *v = dictionary[*v as usize];
                    }
                }
            }
            len = len.min(n);
            columns.push(out);
        }
        if len == 0 || len == usize::MAX {
            self.done = true;
            return None;
        }
        Some(Block { columns, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_rows;
    use tde_storage::{ColumnBuilder, EncodingPolicy};
    use tde_types::{DataType, Value};

    fn table() -> Arc<Table> {
        let mut a = ColumnBuilder::new("a", DataType::Integer, EncodingPolicy::default());
        let mut s = ColumnBuilder::new("s", DataType::Str, EncodingPolicy::default());
        for i in 0..3000i64 {
            a.append_i64(i);
            s.append_str(Some(["x", "y"][i as usize % 2]));
        }
        Arc::new(Table::new("t", vec![a.finish().column, s.finish().column]))
    }

    #[test]
    fn scans_all_rows_in_blocks() {
        let t = table();
        let mut scan = TableScan::new(t);
        let mut total = 0;
        let mut expected_next = 0i64;
        while let Some(b) = scan.next_block() {
            assert!(b.len <= BLOCK_ROWS);
            for &v in &b.columns[0][..b.len] {
                assert_eq!(v, expected_next);
                expected_next += 1;
            }
            total += b.len;
        }
        assert_eq!(total, 3000);
    }

    #[test]
    fn projection_and_values() {
        let t = table();
        let mut scan = TableScan::project(t, &["s"], false);
        let b = scan.next_block().unwrap();
        assert_eq!(scan.schema().fields.len(), 1);
        assert_eq!(
            scan.schema().fields[0].value_of(b.columns[0][0]),
            Value::Str("x".into())
        );
        assert_eq!(
            scan.schema().fields[0].value_of(b.columns[0][1]),
            Value::Str("y".into())
        );
    }

    #[test]
    fn empty_table_scan() {
        let t = Arc::new(Table::new("e", vec![]));
        assert_eq!(count_rows(Box::new(TableScan::new(t))), 0);
    }

    #[test]
    fn paged_scan_matches_eager_scan() {
        let t = table();
        let mut db = tde_storage::Database::new();
        db.add_table((*t).clone());
        let dir = std::env::temp_dir().join("tde_exec_paged_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scan.tde2");
        tde_pager::save_v2(&db, &path).unwrap();
        let paged = tde_pager::PagedDatabase::open(&path).unwrap();
        let pt = paged.table("t").unwrap();

        let mut eager = TableScan::project(Arc::clone(&t), &["s", "a"], false);
        let mut lazy = TableScan::paged(&pt, &["s", "a"], false).unwrap();
        loop {
            match (eager.next_block(), lazy.next_block()) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!(a.len, b.len);
                    assert_eq!(a.columns, b.columns);
                }
                (a, b) => panic!(
                    "block count mismatch: eager={:?} lazy={:?}",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

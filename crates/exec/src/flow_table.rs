//! FlowTable: turn a stream of row blocks into a table (paper §3.3).
//!
//! The stop-and-go operator at the heart of the paper's import and
//! decompression-join machinery. Each column is encoded *independently*
//! with the dynamic encoder, so the per-column work is distributed across
//! the available cores — substituting processing power for memory and I/O
//! bandwidth. The build step finishes with the §3.4 post-processing
//! manipulations (optimal conversion, heap sorting, narrowing, metadata
//! extraction), which is how a FlowTable on the inner side of an expansion
//! join hands the tactical optimizer the metadata it needs (§4.1.2): a
//! filtered dense token range re-asserts the *dense* property, a computed
//! string column gets a sorted minimal-width heap, and so on.

use crate::block::{Block, Field, Repr, Schema};
use crate::expr::token_str;
use crate::{BoxOp, Operator};
use std::sync::Arc;
use tde_storage::{BuiltColumn, ColumnBuilder, Compression, EncodingPolicy, Table};
use tde_types::DataType;

/// FlowTable configuration.
#[derive(Debug, Clone, Copy)]
pub struct FlowTableOptions {
    /// Column build policy (the strategic optimizer passes
    /// [`EncodingPolicy::inner_side`] for hash-join inners, §4.3).
    pub policy: EncodingPolicy,
    /// Encode columns on separate threads.
    pub parallel: bool,
}

impl Default for FlowTableOptions {
    fn default() -> FlowTableOptions {
        FlowTableOptions {
            policy: EncodingPolicy::default(),
            parallel: true,
        }
    }
}

/// The built table plus per-column build diagnostics.
#[derive(Debug)]
pub struct BuiltTable {
    /// The materialized table.
    pub table: Arc<Table>,
    /// Mid-load re-encoding count per column.
    pub reencodings: Vec<u32>,
}

/// Consume `input` entirely and build a table named `name`.
pub fn flow_table(input: BoxOp, name: &str, opts: FlowTableOptions) -> BuiltTable {
    let schema = input.schema().clone();
    let blocks = crate::drain(input);
    build_from_blocks(&schema, &blocks, name, opts)
}

/// Build a table from already-drained blocks.
pub fn build_from_blocks(
    schema: &Schema,
    blocks: &[Block],
    name: &str,
    opts: FlowTableOptions,
) -> BuiltTable {
    let ncols = schema.len();
    let build_one = |i: usize| -> BuiltColumn {
        let field = &schema.fields[i];
        build_column(field, blocks, i, opts.policy)
    };
    let built: Vec<BuiltColumn> = if opts.parallel && ncols > 1 {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..ncols).map(|i| s.spawn(move || build_one(i))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("column build panicked"))
                .collect()
        })
    } else {
        (0..ncols).map(build_one).collect()
    };
    let mut reencodings = Vec::with_capacity(ncols);
    let mut columns = Vec::with_capacity(ncols);
    for b in built {
        tde_obs::metrics::column_built(b.column.data.len());
        tde_obs::emit(|| tde_obs::Event::ColumnBuilt {
            table: name.to_owned(),
            column: b.column.name.clone(),
            algorithm: format!("{:?}", b.column.data.algorithm()),
            rows: b.column.data.len(),
            reencodings: b.reencodings,
            final_converted: b.final_converted,
        });
        reencodings.push(b.reencodings);
        columns.push(b.column);
    }
    BuiltTable {
        table: Arc::new(Table::new(name, columns)),
        reencodings,
    }
}

fn build_column(field: &Field, blocks: &[Block], i: usize, policy: EncodingPolicy) -> BuiltColumn {
    match &field.repr {
        Repr::Scalar => {
            let mut b = ColumnBuilder::new(field.name.clone(), field.dtype, policy);
            for block in blocks {
                b.append_raw(&block.columns[i]);
            }
            b.finish()
        }
        Repr::Token(heap) => {
            // Frozen heap: tokens must be *preserved* so they stay
            // join-compatible with the outer table's tokens (the invisible
            // join equates token values). The token stream is re-encoded
            // and narrowed; the heap is shared as-is.
            let mut b = ColumnBuilder::new(field.name.clone(), DataType::Str, policy);
            for block in blocks {
                b.append_raw(&block.columns[i]);
            }
            let mut built = b.finish();
            let sorted = field.metadata.sorted_heap_tokens.is_true();
            built.column.compression = Compression::Heap {
                heap: heap.clone(),
                sorted,
            };
            if sorted {
                built.column.metadata.sorted_heap_tokens = tde_encodings::metadata::Knowledge::True;
            }
            built
        }
        Repr::TokenCell(_) => {
            // Growing compute heap (§4.1.2): freeze it by re-interning into
            // a fresh heap, which the builder then sorts and narrows — the
            // computed string column ends up with a minimal sorted domain.
            let mut b = ColumnBuilder::new(field.name.clone(), DataType::Str, policy);
            for block in blocks {
                for &t in &block.columns[i] {
                    b.append_str(token_str(&field.repr, t).as_deref());
                }
            }
            b.finish()
        }
        Repr::DictIndex(dict) => {
            // Keep array compression: encode the index stream, clone the
            // dictionary.
            let mut b = ColumnBuilder::new(field.name.clone(), field.dtype, policy);
            for block in blocks {
                b.append_raw(&block.columns[i]);
            }
            let mut built = b.finish();
            let sorted = dict.windows(2).all(|w| w[0] <= w[1]);
            built.column.compression = Compression::Array {
                dictionary: dict.as_ref().clone(),
                sorted,
            };
            built
        }
    }
}

/// Operator wrapper: builds on first pull, then scans the result.
pub struct FlowTable {
    built: Option<BuiltTable>,
    scan: Option<crate::scan::TableScan>,
    schema: Schema,
    input: Option<BoxOp>,
    name: String,
    opts: FlowTableOptions,
}

impl FlowTable {
    /// A FlowTable over `input`.
    pub fn new(input: BoxOp, name: &str, opts: FlowTableOptions) -> FlowTable {
        let schema = input.schema().clone();
        FlowTable {
            built: None,
            scan: None,
            schema,
            input: Some(input),
            name: name.to_owned(),
            opts,
        }
    }

    /// Force the build and return the table.
    pub fn materialize(&mut self) -> Arc<Table> {
        if self.built.is_none() {
            let input = self.input.take().expect("FlowTable already built");
            let built = flow_table(input, &self.name, self.opts);
            // The scan exposes the *built* columns (with their extracted
            // metadata), not the input schema.
            let scan = crate::scan::TableScan::new(built.table.clone());
            self.schema = scan.schema().clone();
            self.scan = Some(scan);
            self.built = Some(built);
        }
        self.built.as_ref().unwrap().table.clone()
    }
}

impl Operator for FlowTable {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_block(&mut self) -> Option<Block> {
        self.materialize();
        self.scan.as_mut().unwrap().next_block()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Expr, Func};
    use crate::filter::Filter;
    use crate::project::Project;
    use crate::scan::TableScan;
    use tde_types::Value;

    fn strings_table() -> Arc<Table> {
        let mut url = ColumnBuilder::new("url", DataType::Str, EncodingPolicy::default());
        let mut hits = ColumnBuilder::new("hits", DataType::Integer, EncodingPolicy::default());
        for i in 0..5000usize {
            url.append_str(Some(&format!(
                "/p{}/f{}.{}",
                i % 7,
                i % 23,
                ["html", "css", "js", "png"][i % 4]
            )));
            hits.append_i64((i % 13) as i64);
        }
        Arc::new(Table::new(
            "requests",
            vec![url.finish().column, hits.finish().column],
        ))
    }

    #[test]
    fn rebuild_roundtrips_values() {
        let t = strings_table();
        let built = flow_table(
            Box::new(TableScan::new(t.clone())),
            "copy",
            FlowTableOptions::default(),
        );
        assert_eq!(built.table.row_count(), 5000);
        for row in (0..5000).step_by(613) {
            assert_eq!(built.table.columns[0].value(row), t.columns[0].value(row));
            assert_eq!(built.table.columns[1].value(row), t.columns[1].value(row));
        }
    }

    #[test]
    fn computed_string_column_gets_sorted_minimal_heap() {
        // The §4.1.2 scenario: extract the file extension; FlowTable must
        // produce a sorted small heap with narrowed tokens.
        let t = strings_table();
        let p = Project::new(
            Box::new(TableScan::project(t, &["url"], false)),
            vec![(
                "ext".into(),
                Expr::Func(Func::FileExtension, Box::new(Expr::col(0))),
            )],
        );
        let built = flow_table(Box::new(p), "exts", FlowTableOptions::default());
        let col = &built.table.columns[0];
        match &col.compression {
            Compression::Heap { heap, sorted } => {
                assert!(*sorted, "small computed heap must be sorted");
                assert_eq!(heap.len(), 4);
            }
            other => panic!("expected heap compression, got {other:?}"),
        }
        assert!(
            col.metadata.width < tde_types::Width::W8,
            "tokens must narrow"
        );
        assert_eq!(col.value(0), Value::Str("html".into()));
        assert_eq!(col.value(1), Value::Str("css".into()));
    }

    #[test]
    fn filtered_dense_range_reasserts_dense() {
        // A dense id column filtered to a contiguous range must come out
        // of FlowTable with the dense property re-asserted (§3.4.2).
        let mut id = ColumnBuilder::new("id", DataType::Integer, EncodingPolicy::default());
        for i in 0..10_000i64 {
            id.append_i64(i);
        }
        let t = Arc::new(Table::new("t", vec![id.finish().column]));
        let f = Filter::new(
            Box::new(TableScan::new(t)),
            Expr::And(
                Box::new(Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(2000))),
                Box::new(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(3000))),
            ),
        );
        let built = flow_table(Box::new(f), "sub", FlowTableOptions::default());
        let md = &built.table.columns[0].metadata;
        assert!(md.dense.is_true());
        assert!(md.unique.is_true());
        assert_eq!(md.min, Some(2000));
        assert_eq!(md.max, Some(2999));
    }

    #[test]
    fn parallel_and_serial_builds_agree() {
        let t = strings_table();
        let a = flow_table(
            Box::new(TableScan::new(t.clone())),
            "a",
            FlowTableOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let b = flow_table(
            Box::new(TableScan::new(t)),
            "b",
            FlowTableOptions::default(),
        );
        for row in (0..5000).step_by(777) {
            assert_eq!(a.table.columns[0].value(row), b.table.columns[0].value(row));
        }
    }

    #[test]
    fn operator_wrapper_scans_built_table() {
        let t = strings_table();
        let mut ft = FlowTable::new(
            Box::new(TableScan::new(t)),
            "w",
            FlowTableOptions::default(),
        );
        let mut rows = 0;
        while let Some(b) = ft.next_block() {
            rows += b.len;
        }
        assert_eq!(rows, 5000);
    }
}

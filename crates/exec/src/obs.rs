//! Operator instrumentation for EXPLAIN ANALYZE and always-on metrics.
//!
//! [`Instrumented`] wraps any operator and bumps a shared [`OpStats`] on
//! every `next_block` call: blocks and rows produced, plus the wall time
//! spent inside the call (which, Volcano-style, includes the time spent
//! pulling from children — the renderer reports inclusive times, like
//! PostgreSQL's EXPLAIN ANALYZE). The adapter is only inserted by the
//! traced lowering path; plain `execute` never pays for it.
//!
//! [`Metered`] is the always-on counterpart: it bumps the process-wide
//! per-operator-kind counters (`tde_operator_{blocks,rows}_total{op=…}`)
//! through handles pre-resolved at lowering time. No clock reads — the
//! per-block cost is two relaxed `fetch_add`s — and lowering only
//! inserts it when the metrics registry is enabled, so disabled runs pay
//! nothing at all.
//!
//! `Metered` optionally carries a [`TimelineOp`] too, feeding the
//! always-on timeline layer: per-block cost is counter arithmetic (the
//! clock is read only at the operator's first block and at
//! end-of-stream), and one `OperatorSpan` event is emitted when the
//! operator is exhausted — or dropped early, via `TimelineOp`'s drop
//! flush.

use crate::block::{Block, Schema};
use crate::{BoxOp, Operator};
use std::sync::Arc;
use std::time::Instant;
use tde_obs::metrics::OperatorCounters;
use tde_obs::timeline::TimelineOp;
use tde_obs::OpStats;

/// An operator adapter recording blocks/rows/wall-time into [`OpStats`].
pub struct Instrumented {
    inner: BoxOp,
    stats: Arc<OpStats>,
}

impl Instrumented {
    /// Wrap `inner`, recording into `stats`.
    pub fn new(inner: BoxOp, stats: Arc<OpStats>) -> Instrumented {
        Instrumented { inner, stats }
    }
}

impl Operator for Instrumented {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next_block(&mut self) -> Option<Block> {
        let t0 = Instant::now();
        let block = self.inner.next_block();
        let nanos = t0.elapsed().as_nanos() as u64;
        match &block {
            Some(b) => self.stats.record_block(b.len as u64, nanos),
            None => self.stats.record_eos(nanos),
        }
        block
    }
}

/// An operator adapter bumping the process-wide per-operator-kind
/// counters on every produced block.
pub struct Metered {
    inner: BoxOp,
    counters: Option<OperatorCounters>,
    timeline: Option<TimelineOp>,
}

impl Metered {
    /// Wrap `inner`, recording into `counters`.
    pub fn new(inner: BoxOp, counters: OperatorCounters) -> Metered {
        Metered::with_observers(inner, Some(counters), None)
    }

    /// Wrap `inner` with any combination of metrics counters and a
    /// timeline operator span. Lowering passes whichever layers are
    /// enabled; callers must pass at least one (wrapping with neither
    /// is pure overhead).
    pub fn with_observers(
        inner: BoxOp,
        counters: Option<OperatorCounters>,
        timeline: Option<TimelineOp>,
    ) -> Metered {
        Metered {
            inner,
            counters,
            timeline,
        }
    }
}

impl Operator for Metered {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next_block(&mut self) -> Option<Block> {
        let block = self.inner.next_block();
        match &block {
            Some(b) => {
                if let Some(counters) = &self.counters {
                    counters.blocks.inc();
                    counters.rows.add(b.len as u64);
                }
                if let Some(tl) = &mut self.timeline {
                    tl.on_block(b.len as u64);
                }
            }
            None => {
                if let Some(tl) = &mut self.timeline {
                    tl.finish();
                }
            }
        }
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::TableScan;
    use std::sync::Arc as StdArc;
    use tde_storage::{ColumnBuilder, EncodingPolicy, Table};
    use tde_types::DataType;

    #[test]
    fn counts_blocks_and_rows() {
        let mut b = ColumnBuilder::new("x", DataType::Integer, EncodingPolicy::default());
        for i in 0..2500i64 {
            b.append_i64(i);
        }
        let t = StdArc::new(Table::new("t", vec![b.finish().column]));
        let stats = OpStats::new();
        let mut op = Instrumented::new(Box::new(TableScan::new(t)), stats.clone());
        let mut rows = 0u64;
        while let Some(b) = op.next_block() {
            rows += b.len as u64;
        }
        let (blocks, srows, elapsed) = stats.snapshot();
        assert_eq!(srows, rows);
        assert_eq!(srows, 2500);
        assert!(blocks >= 2); // 2500 rows span multiple 1024-row blocks
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn metered_bumps_operator_counters() {
        use tde_obs::metrics::Counter;
        let mut b = ColumnBuilder::new("x", DataType::Integer, EncodingPolicy::default());
        for i in 0..2500i64 {
            b.append_i64(i);
        }
        let t = StdArc::new(Table::new("t", vec![b.finish().column]));
        let counters = OperatorCounters {
            blocks: Counter::new(),
            rows: Counter::new(),
        };
        let mut op = Metered::new(Box::new(TableScan::new(t)), counters.clone());
        while op.next_block().is_some() {}
        assert_eq!(counters.rows.get(), 2500);
        assert!(counters.blocks.get() >= 2);
    }
}

//! Expressions over blocks.
//!
//! Evaluation is block-at-a-time over the `i64` domain with sentinel NULL
//! propagation. String-producing functions (the §4.1.2 URL-extension
//! example) intern their results into a growing compute heap; the column
//! they produce has wide tokens and an unsorted heap, exactly the shape
//! FlowTable's post-processing then fixes.

use crate::block::{Block, Field, Repr, Schema};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use tde_encodings::ColumnMetadata;
use tde_storage::{HeapAccelerator, StringHeap};
use tde_types::sentinel::{is_null_real, null_real, NULL_I64, NULL_TOKEN};
use tde_types::{Collation, DataType, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator with its operands swapped: `a op b == b op.flip() a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }

    fn apply(self, o: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, o),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// Year of a date.
    Year,
    /// Month (1–12) of a date.
    Month,
    /// Day of month of a date.
    Day,
    /// Truncate a date to the first of its month (order-preserving).
    TruncMonth,
    /// Truncate a date to the first of its year (order-preserving).
    TruncYear,
    /// String length in bytes.
    StrLen,
    /// The file extension of a path/URL (the §4.1.2 example) — a
    /// string-producing function with a small output domain.
    FileExtension,
    /// Uppercase a string (string-producing).
    Upper,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count.
    Count,
    /// Sum (integer domain).
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// An expression tree.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Input column by index.
    Col(usize),
    /// Constant.
    Lit(Value),
    /// Comparison; yields Bool.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical and.
    And(Box<Expr>, Box<Expr>),
    /// Logical or.
    Or(Box<Expr>, Box<Expr>),
    /// Logical not.
    Not(Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Scalar function application.
    Func(Func, Box<Expr>),
    /// NULL test; yields Bool.
    IsNull(Box<Expr>),
}

impl Expr {
    /// Convenience: column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Convenience: integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Value::Int(v))
    }

    /// Convenience: comparison with a literal.
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp(op, Box::new(lhs), Box::new(rhs))
    }

    /// The set of input columns the expression references.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Col(i) = e {
                cols.push(*i);
            }
        });
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Whether the expression references exactly one column — the
    /// single-column-argument condition for pushdown (§4.1.1, §4.2.1).
    pub fn single_column(&self) -> Option<usize> {
        let cols = self.referenced_columns();
        (cols.len() == 1).then(|| cols[0])
    }

    /// Rewrite column references through `map` (old index → new index).
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(map(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.remap_columns(map)),
                Box::new(b.remap_columns(map)),
            ),
            Expr::And(a, b) => Expr::And(
                Box::new(a.remap_columns(map)),
                Box::new(b.remap_columns(map)),
            ),
            Expr::Or(a, b) => Expr::Or(
                Box::new(a.remap_columns(map)),
                Box::new(b.remap_columns(map)),
            ),
            Expr::Not(a) => Expr::Not(Box::new(a.remap_columns(map))),
            Expr::Arith(op, a, b) => Expr::Arith(
                *op,
                Box::new(a.remap_columns(map)),
                Box::new(b.remap_columns(map)),
            ),
            Expr::Func(f, a) => Expr::Func(*f, Box::new(a.remap_columns(map))),
            Expr::IsNull(a) => Expr::IsNull(Box::new(a.remap_columns(map))),
        }
    }

    fn walk(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Col(_) | Expr::Lit(_) => {}
            Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) | Expr::Arith(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::Not(a) | Expr::Func(_, a) | Expr::IsNull(a) => a.walk(f),
        }
    }
}

/// A growing heap for computed string columns, shared between the
/// producing Project and any downstream reader.
#[derive(Debug)]
pub struct ComputeHeap {
    /// The heap behind a lock (it grows while downstream may read).
    pub heap: Arc<RwLock<StringHeap>>,
    accel: HeapAccelerator,
}

impl Default for ComputeHeap {
    fn default() -> Self {
        ComputeHeap::new()
    }
}

impl ComputeHeap {
    /// An empty compute heap with an accelerator (so computed columns get
    /// distinct tokens when their domain is small).
    pub fn new() -> ComputeHeap {
        ComputeHeap {
            heap: Arc::new(RwLock::new(StringHeap::new())),
            accel: HeapAccelerator::new(Collation::Binary),
        }
    }

    /// Intern a string.
    pub fn intern(&mut self, s: &str) -> u64 {
        self.accel.intern(&mut self.heap.write(), s)
    }
}

/// Resolve a token through either heap representation.
pub fn token_str(repr: &Repr, token: i64) -> Option<String> {
    if token as u64 == NULL_TOKEN {
        return None;
    }
    match repr {
        Repr::Token(heap) => Some(heap.get_raw(token as u64).to_owned()),
        Repr::TokenCell(cell) => Some(cell.read().get_raw(token as u64).to_owned()),
        _ => panic!("token_str on non-token repr"),
    }
}

/// Result of evaluating an expression over a block.
pub struct EvalOutput {
    /// One value per input row.
    pub data: Vec<i64>,
    /// Shape of the produced column.
    pub field: Field,
}

/// Evaluate `expr` over `block`. String-producing functions intern into
/// `compute_heap` (required only when such functions are present).
pub fn eval(
    expr: &Expr,
    schema: &Schema,
    block: &Block,
    compute_heap: &mut Option<&mut ComputeHeap>,
) -> EvalOutput {
    match expr {
        Expr::Col(i) => {
            let f = &schema.fields[*i];
            if let Repr::DictIndex(dict) = &f.repr {
                // Expressions see *values*, not dictionary indexes. This
                // inline expansion is exactly the per-row cost the
                // invisible-join rewrite avoids by pushing the expression
                // onto the dictionary side (§4.1.1).
                return EvalOutput {
                    data: block.columns[*i]
                        .iter()
                        .map(|&ix| dict[ix as usize])
                        .collect(),
                    field: Field {
                        name: f.name.clone(),
                        dtype: f.dtype,
                        repr: Repr::Scalar,
                        metadata: ColumnMetadata::unknown(),
                    },
                };
            }
            EvalOutput {
                data: block.columns[*i].clone(),
                field: f.clone(),
            }
        }
        Expr::Lit(v) => {
            let (raw, dtype) = match v {
                Value::Null => (NULL_I64, DataType::Integer),
                Value::Real(r) => (r.to_bits() as i64, DataType::Real),
                Value::Str(s) => {
                    let heap = compute_heap
                        .as_deref_mut()
                        .expect("string literal needs a compute heap");
                    let t = heap.intern(s) as i64;
                    let cell = heap.heap.clone();
                    return EvalOutput {
                        data: vec![t; block.len],
                        field: Field {
                            name: "lit".into(),
                            dtype: DataType::Str,
                            repr: Repr::TokenCell(cell),
                            metadata: ColumnMetadata::unknown(),
                        },
                    };
                }
                other => (other.as_i64().expect("literal"), other.data_type().unwrap()),
            };
            EvalOutput {
                data: vec![raw; block.len],
                field: Field::scalar("lit", dtype),
            }
        }
        Expr::Cmp(op, a, b) => eval_cmp(*op, a, b, schema, block, compute_heap),
        Expr::And(a, b) => {
            let x = eval(a, schema, block, compute_heap);
            let y = eval(b, schema, block, compute_heap);
            bool_out(
                x.data
                    .iter()
                    .zip(&y.data)
                    .map(|(&p, &q)| p != 0 && q != 0)
                    .collect(),
            )
        }
        Expr::Or(a, b) => {
            let x = eval(a, schema, block, compute_heap);
            let y = eval(b, schema, block, compute_heap);
            bool_out(
                x.data
                    .iter()
                    .zip(&y.data)
                    .map(|(&p, &q)| p != 0 || q != 0)
                    .collect(),
            )
        }
        Expr::Not(a) => {
            let x = eval(a, schema, block, compute_heap);
            bool_out(x.data.iter().map(|&p| p == 0).collect())
        }
        Expr::IsNull(a) => {
            let x = eval(a, schema, block, compute_heap);
            let nulls: Vec<bool> = match (&x.field.repr, x.field.dtype) {
                (Repr::Token(_) | Repr::TokenCell(_), _) => {
                    x.data.iter().map(|&t| t as u64 == NULL_TOKEN).collect()
                }
                (_, DataType::Real) => x
                    .data
                    .iter()
                    .map(|&v| is_null_real(f64::from_bits(v as u64)))
                    .collect(),
                _ => x.data.iter().map(|&v| v == NULL_I64).collect(),
            };
            bool_out(nulls)
        }
        Expr::Arith(op, a, b) => {
            let x = eval(a, schema, block, compute_heap);
            let y = eval(b, schema, block, compute_heap);
            let real = x.field.dtype == DataType::Real || y.field.dtype == DataType::Real;
            let data: Vec<i64> = if real {
                x.data
                    .iter()
                    .zip(&y.data)
                    .map(|(&p, &q)| {
                        let (p, q) = (as_f64(p, x.field.dtype), as_f64(q, y.field.dtype));
                        if is_null_real(p) || is_null_real(q) {
                            return null_real().to_bits() as i64;
                        }
                        let r = match op {
                            ArithOp::Add => p + q,
                            ArithOp::Sub => p - q,
                            ArithOp::Mul => p * q,
                            ArithOp::Div => p / q,
                        };
                        r.to_bits() as i64
                    })
                    .collect()
            } else {
                x.data
                    .iter()
                    .zip(&y.data)
                    .map(|(&p, &q)| {
                        if p == NULL_I64 || q == NULL_I64 {
                            return NULL_I64;
                        }
                        match op {
                            ArithOp::Add => p.wrapping_add(q),
                            ArithOp::Sub => p.wrapping_sub(q),
                            ArithOp::Mul => p.wrapping_mul(q),
                            ArithOp::Div => {
                                if q == 0 {
                                    NULL_I64
                                } else {
                                    p / q
                                }
                            }
                        }
                    })
                    .collect()
            };
            EvalOutput {
                data,
                field: Field::scalar(
                    "arith",
                    if real {
                        DataType::Real
                    } else {
                        DataType::Integer
                    },
                ),
            }
        }
        Expr::Func(f, a) => eval_func(*f, a, schema, block, compute_heap),
    }
}

fn as_f64(raw: i64, dtype: DataType) -> f64 {
    match dtype {
        DataType::Real => f64::from_bits(raw as u64),
        _ => {
            if raw == NULL_I64 {
                null_real()
            } else {
                raw as f64
            }
        }
    }
}

fn bool_out(bits: Vec<bool>) -> EvalOutput {
    EvalOutput {
        data: bits.into_iter().map(i64::from).collect(),
        field: Field::scalar("bool", DataType::Bool),
    }
}

fn eval_cmp(
    op: CmpOp,
    a: &Expr,
    b: &Expr,
    schema: &Schema,
    block: &Block,
    compute_heap: &mut Option<&mut ComputeHeap>,
) -> EvalOutput {
    let x = eval(a, schema, block, compute_heap);
    let y = eval(b, schema, block, compute_heap);
    let x_tok = matches!(x.field.repr, Repr::Token(_) | Repr::TokenCell(_));
    let y_tok = matches!(y.field.repr, Repr::Token(_) | Repr::TokenCell(_));
    let bits: Vec<bool> = if x_tok || y_tok {
        // String comparison. Sorted heaps would allow raw token compares
        // within one heap; across heaps (column vs literal) we memoize the
        // string comparison per distinct token pair — cheap for the small
        // domains dictionary-encoded columns have.
        let mut memo: HashMap<(i64, i64), bool> = HashMap::new();
        x.data
            .iter()
            .zip(&y.data)
            .map(|(&p, &q)| {
                *memo.entry((p, q)).or_insert_with(|| {
                    let (sp, sq) = (token_like(&x, p), token_like(&y, q));
                    match (sp, sq) {
                        (Some(sp), Some(sq)) => op.apply(sp.cmp(&sq)),
                        _ => false, // NULL compares false
                    }
                })
            })
            .collect()
    } else if x.field.dtype == DataType::Real || y.field.dtype == DataType::Real {
        x.data
            .iter()
            .zip(&y.data)
            .map(|(&p, &q)| {
                let (p, q) = (as_f64(p, x.field.dtype), as_f64(q, y.field.dtype));
                if is_null_real(p) || is_null_real(q) {
                    return false;
                }
                p.partial_cmp(&q).is_some_and(|o| op.apply(o))
            })
            .collect()
    } else {
        x.data
            .iter()
            .zip(&y.data)
            .map(|(&p, &q)| p != NULL_I64 && q != NULL_I64 && op.apply(p.cmp(&q)))
            .collect()
    };
    bool_out(bits)
}

fn token_like(out: &EvalOutput, raw: i64) -> Option<String> {
    match &out.field.repr {
        Repr::Token(_) | Repr::TokenCell(_) => token_str(&out.field.repr, raw),
        _ => Some(Value::from_i64(out.field.dtype, raw).to_string()),
    }
}

fn eval_func(
    f: Func,
    a: &Expr,
    schema: &Schema,
    block: &Block,
    compute_heap: &mut Option<&mut ComputeHeap>,
) -> EvalOutput {
    let x = eval(a, schema, block, compute_heap);
    use tde_types::datetime;
    let int_fn = |g: fn(i64) -> i64, x: &EvalOutput, dtype: DataType| -> EvalOutput {
        EvalOutput {
            data: x
                .data
                .iter()
                .map(|&v| if v == NULL_I64 { NULL_I64 } else { g(v) })
                .collect(),
            field: Field::scalar("func", dtype),
        }
    };
    match f {
        Func::Year => int_fn(datetime::year_of, &x, DataType::Integer),
        Func::Month => int_fn(datetime::month_of, &x, DataType::Integer),
        Func::Day => int_fn(datetime::day_of, &x, DataType::Integer),
        Func::TruncMonth => int_fn(datetime::trunc_to_month, &x, DataType::Date),
        Func::TruncYear => int_fn(datetime::trunc_to_year, &x, DataType::Date),
        Func::StrLen => EvalOutput {
            data: x
                .data
                .iter()
                .map(|&t| token_str(&x.field.repr, t).map_or(NULL_I64, |s| s.len() as i64))
                .collect(),
            field: Field::scalar("strlen", DataType::Integer),
        },
        Func::FileExtension | Func::Upper => {
            let heap = compute_heap
                .as_deref_mut()
                .expect("string-producing function needs a compute heap");
            let data: Vec<i64> = x
                .data
                .iter()
                .map(|&t| match token_str(&x.field.repr, t) {
                    None => NULL_TOKEN as i64,
                    Some(s) => {
                        let produced = match f {
                            Func::FileExtension => s
                                .rsplit_once('.')
                                .map(|(_, ext)| {
                                    ext.split(['?', '#']).next().unwrap_or("").to_owned()
                                })
                                .unwrap_or_default(),
                            Func::Upper => s.to_uppercase(),
                            _ => unreachable!(),
                        };
                        heap.intern(&produced) as i64
                    }
                })
                .collect();
            EvalOutput {
                data,
                field: Field {
                    name: "func".into(),
                    dtype: DataType::Str,
                    repr: Repr::TokenCell(heap.heap.clone()),
                    metadata: ColumnMetadata::unknown(),
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_block(vals: &[i64]) -> (Schema, Block) {
        (
            Schema::new(vec![Field::scalar("x", DataType::Integer)]),
            Block::new(vec![vals.to_vec()]),
        )
    }

    #[test]
    fn comparisons_and_logic() {
        let (s, b) = int_block(&[1, 5, 10, NULL_I64]);
        let e = Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(4));
        let r = eval(&e, &s, &b, &mut None);
        assert_eq!(r.data, vec![0, 1, 1, 0]); // NULL > 4 is false
        let e = Expr::And(
            Box::new(Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(0))),
            Box::new(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(10))),
        );
        assert_eq!(eval(&e, &s, &b, &mut None).data, vec![1, 1, 0, 0]);
    }

    #[test]
    fn null_detection_and_arith() {
        let (s, b) = int_block(&[2, NULL_I64]);
        let r = eval(&Expr::IsNull(Box::new(Expr::col(0))), &s, &b, &mut None);
        assert_eq!(r.data, vec![0, 1]);
        let e = Expr::Arith(ArithOp::Mul, Box::new(Expr::col(0)), Box::new(Expr::int(3)));
        assert_eq!(eval(&e, &s, &b, &mut None).data, vec![6, NULL_I64]);
        // Division by zero yields NULL, not a panic.
        let e = Expr::Arith(ArithOp::Div, Box::new(Expr::col(0)), Box::new(Expr::int(0)));
        assert_eq!(eval(&e, &s, &b, &mut None).data[0], NULL_I64);
    }

    #[test]
    fn date_functions() {
        let d = Value::date(1995, 7, 14).as_i64().unwrap();
        let (s, b) = int_block(&[d]);
        let schema = Schema::new(vec![Field::scalar("d", DataType::Date)]);
        let _ = s;
        let r = eval(
            &Expr::Func(Func::Month, Box::new(Expr::col(0))),
            &schema,
            &b,
            &mut None,
        );
        assert_eq!(r.data, vec![7]);
        let r = eval(
            &Expr::Func(Func::TruncMonth, Box::new(Expr::col(0))),
            &schema,
            &b,
            &mut None,
        );
        assert_eq!(r.data, vec![Value::date(1995, 7, 1).as_i64().unwrap()]);
        assert_eq!(r.field.dtype, DataType::Date);
    }

    #[test]
    fn string_comparison_with_literal() {
        let mut heap = StringHeap::new();
        let ta = heap.append("apple") as i64;
        let tb = heap.append("zebra") as i64;
        let schema = Schema::new(vec![Field {
            name: "s".into(),
            dtype: DataType::Str,
            repr: Repr::Token(Arc::new(heap)),
            metadata: ColumnMetadata::unknown(),
        }]);
        let b = Block::new(vec![vec![ta, tb, NULL_TOKEN as i64]]);
        let e = Expr::cmp(
            CmpOp::Eq,
            Expr::col(0),
            Expr::Lit(Value::Str("apple".into())),
        );
        let mut ch = ComputeHeap::new();
        let r = eval(&e, &schema, &b, &mut Some(&mut ch));
        assert_eq!(r.data, vec![1, 0, 0]);
    }

    #[test]
    fn file_extension_produces_small_domain() {
        let mut heap = StringHeap::new();
        let urls = ["/a/x.html", "/b/y.css", "/c/z.html", "/d/w.js?q=1"];
        let tokens: Vec<i64> = urls.iter().map(|u| heap.append(u) as i64).collect();
        let schema = Schema::new(vec![Field {
            name: "url".into(),
            dtype: DataType::Str,
            repr: Repr::Token(Arc::new(heap)),
            metadata: ColumnMetadata::unknown(),
        }]);
        let b = Block::new(vec![tokens]);
        let mut ch = ComputeHeap::new();
        let r = eval(
            &Expr::Func(Func::FileExtension, Box::new(Expr::col(0))),
            &schema,
            &b,
            &mut Some(&mut ch),
        );
        let exts: Vec<Option<String>> = r
            .data
            .iter()
            .map(|&t| token_str(&r.field.repr, t))
            .collect();
        assert_eq!(
            exts,
            vec![
                Some("html".into()),
                Some("css".into()),
                Some("html".into()),
                Some("js".into())
            ]
        );
        // The compute heap deduplicated: 3 distinct extensions.
        assert_eq!(ch.heap.read().len(), 3);
    }

    #[test]
    fn single_column_detection() {
        let e = Expr::cmp(CmpOp::Gt, Expr::col(2), Expr::int(5));
        assert_eq!(e.single_column(), Some(2));
        let e = Expr::cmp(CmpOp::Gt, Expr::col(1), Expr::col(2));
        assert_eq!(e.single_column(), None);
        let remapped = Expr::col(3).remap_columns(&|i| i - 3);
        assert_eq!(remapped.single_column(), Some(0));
    }
}
